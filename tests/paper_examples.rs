//! End-to-end reproduction of the paper's worked examples (Figures 2-4 and
//! the Family.Show abstract-type example) through the facade crate.

use pex::corpus::builtin;
use pex::prelude::*;

#[test]
fn figure2_resize_document_is_the_top_result() {
    let db = builtin::paint_dot_net();
    let (ctx, site) = builtin::paint_query_site(&db);
    let abs = AbsTypes::for_query(&db, site, usize::MAX);
    let index = MethodIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), Some(&abs));
    let query = parse_partial(&db, &ctx, "?({img, size})").unwrap();

    let top = engine.complete(&query, 10);
    assert!(engine
        .render(&top[0])
        .contains("PaintDotNet.Actions.CanvasSizeAction.ResizeDocument(img, size, 0, 0)"));

    // The distractor set of Figure 2 appears in the list.
    let rendered: Vec<String> = top.iter().map(|c| engine.render(c)).collect();
    let all = rendered.join("\n");
    for expected in ["Pair.Create", "OnDeserialization", "Size.Equals"] {
        assert!(all.contains(expected), "missing {expected} in:\n{all}");
    }
    // Scores never decrease; all results derive from the query.
    for w in top.windows(2) {
        assert!(w[0].score <= w[1].score);
    }
    for c in &top {
        assert!(derives(&db, &ctx, &query, &c.expr), "{}", engine.render(c));
    }
}

#[test]
fn figure3_point_fillers_in_paper_order() {
    let db = builtin::dynamic_geometry();
    let ctx = builtin::geometry_fig3_context(&db);
    let index = MethodIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
    let query = parse_partial(&db, &ctx, "Distance(point, ?)").unwrap();
    let top = engine.complete(&query, 10);
    let fillers: Vec<String> = top
        .iter()
        .map(|c| match &c.expr {
            Expr::Call(_, args) => {
                pex::model::render_expr(&db, &ctx, args.last().unwrap(), CallStyle::Receiver)
            }
            _ => unreachable!("known-call completions are calls"),
        })
        .collect();
    // The single local of type Point is first (it is the only zero-cost
    // completion); one-lookup chains come before two-lookup chains.
    assert_eq!(fillers[0], "point");
    let one_lookup = ["this.BeginLocation", "this.Center", "this.EndLocation"];
    for name in one_lookup {
        let pos = fillers.iter().position(|f| f == name).unwrap_or(usize::MAX);
        let deep = fillers
            .iter()
            .position(|f| f == "this.ArcShape.Point")
            .unwrap_or(usize::MAX);
        assert!(
            pos < deep,
            "{name} must rank above two-lookup chains: {fillers:?}"
        );
    }
    assert!(fillers.contains(&"DynamicGeometry.Math.InfinitePoint".to_string()));
    assert!(fillers.contains(&"shapeStyle.GetSampleGlyph().RenderTransformOrigin".to_string()));
}

#[test]
fn figure4_exact_top_ten() {
    let db = builtin::dynamic_geometry();
    let ctx = builtin::geometry_fig4_context(&db);
    let index = MethodIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
    let query = parse_partial(&db, &ctx, "point.?*m >= this.?*m").unwrap();
    let rendered: Vec<String> = engine
        .complete(&query, 10)
        .iter()
        .map(|c| engine.render(c))
        .collect();
    // The paper's Figure 4 list, as a set split by score class: the eight
    // same-name completions (score 7) precede the two Length ones (8).
    let expected_first_eight = [
        "point.X >= this.P1.X",
        "point.X >= this.P2.X",
        "point.X >= this.Midpoint.X",
        "point.X >= this.FirstValidValue().X",
        "point.Y >= this.P1.Y",
        "point.Y >= this.P2.Y",
        "point.Y >= this.Midpoint.Y",
        "point.Y >= this.FirstValidValue().Y",
    ];
    for e in expected_first_eight {
        let pos = rendered.iter().position(|r| r == e);
        assert!(
            pos.is_some_and(|p| p < 8),
            "{e} should be in the top 8: {rendered:?}"
        );
    }
    assert!(
        rendered[8..].iter().all(|r| r.contains("this.Length")),
        "{rendered:?}"
    );
}

#[test]
fn family_show_abstract_types_separate_paths_from_names() {
    let db = builtin::family_show();
    let get_data_path = db
        .methods()
        .find(|m| db.method(*m).name() == "GetDataPath")
        .expect("corpus has GetDataPath");
    let abs = AbsTypes::for_query(&db, get_data_path, usize::MAX);
    let combine = db
        .methods()
        .find(|m| db.method(*m).name() == "Combine")
        .unwrap();
    let exists = db
        .methods()
        .find(|m| db.method(*m).name() == "Exists")
        .unwrap();
    assert!(AbsTypes::matches(
        abs.param_class(combine, 0),
        abs.param_class(exists, 0)
    ));
    assert!(!AbsTypes::matches(
        abs.param_class(combine, 0),
        abs.param_class(combine, 1)
    ));
}
