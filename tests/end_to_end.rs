//! Cross-crate integration: mini-C# source → code model → abstract types →
//! queries of every kind, with the engine's outputs checked against the
//! reference semantics and the specification scorer.

use pex::prelude::*;

const SOURCE: &str = r#"
namespace Media {
    enum Codec { Mp3, Ogg, Flac }
    [Comparable] struct Timestamp { }
    class Track {
        string Title;
        double Duration;
        Media.Timestamp AddedAt;
        Media.Album Album;
        Media.Codec GetCodec();
    }
    class Album {
        string Title;
        double Duration;
        Media.Track Best();
    }
    class Player {
        static Media.Player Instance;
        void Play(Media.Track track);
        void Enqueue(Media.Track track, int position);
        static double CrossFade(Media.Track from, Media.Track to);
    }
}
namespace Media.Library {
    class Catalog {
        static Media.Track Lookup(string title);
        static void Register(Media.Track track, Media.Codec codec);
    }
}
namespace App {
    class Ui {
        Media.Track Current;
        void OnClick(Media.Track next) {
            var fade = Media.Player.CrossFade(this.Current, next);
            Media.Player.Instance.Play(next);
            this.Current.Duration >= next.Duration;
            this.Current = next;
        }
    }
}
"#;

fn setup() -> (Database, Context, pex::model::MethodId) {
    let db = pex::model::minics::compile(SOURCE).expect("source compiles");
    let on_click = db
        .methods()
        .find(|m| db.method(*m).name() == "OnClick")
        .unwrap();
    let body = db.method(on_click).body().unwrap();
    let ctx = Context::at_statement(&db, on_click, body, body.stmts.len());
    (db, ctx, on_click)
}

/// Every completion must: derive from the query (Figure 6), type-check,
/// appear in non-decreasing score order, and carry exactly the score the
/// specification ranker assigns.
fn check_invariants(db: &Database, ctx: &Context, engine: &Completer<'_>, query: &PartialExpr) {
    let completions: Vec<Completion> = engine.completions(query).take(40).collect();
    let ranker = engine.ranker();
    let mut last = 0;
    for c in &completions {
        assert!(
            derives(db, ctx, query, &c.expr),
            "not derivable: {}",
            engine.render(c)
        );
        assert!(
            db.expr_ty(&c.expr, ctx).is_ok(),
            "ill-typed: {}",
            engine.render(c)
        );
        assert!(c.score >= last, "scores must be non-decreasing");
        last = c.score;
        assert_eq!(
            ranker.score(&c.expr),
            Some(c.score),
            "score mismatch: {}",
            engine.render(c)
        );
    }
    // No duplicates.
    let mut keys: Vec<String> = completions
        .iter()
        .map(|c| format!("{:?}", c.expr))
        .collect();
    let n = keys.len();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), n, "duplicated completions");
}

#[test]
fn every_query_kind_satisfies_engine_invariants() {
    let (db, ctx, on_click) = setup();
    let abs = AbsTypes::for_query(&db, on_click, usize::MAX);
    let index = MethodIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), Some(&abs));
    for query_text in [
        "?",
        "?({next})",
        "?({this.Current, next})",
        "Play(?)",
        "Media.Player.CrossFade(next, ?)",
        "next.?f",
        "next.?*m",
        "this.?m.?m",
        "this.Current.?f := next.?f",
        "next.?*m >= this.?*m",
        "?({fade, 0})",
    ] {
        let query = parse_partial(&db, &ctx, query_text)
            .unwrap_or_else(|e| panic!("query `{query_text}` failed to parse: {e}"));
        check_invariants(&db, &ctx, &engine, &query);
    }
}

#[test]
fn cross_fade_found_from_two_tracks() {
    let (db, ctx, _) = setup();
    let index = MethodIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
    let query = parse_partial(&db, &ctx, "?({this.Current, next})").unwrap();
    let rendered: Vec<String> = engine
        .complete(&query, 10)
        .iter()
        .map(|c| engine.render(c))
        .collect();
    assert!(
        rendered.iter().any(|r| r.contains("CrossFade")),
        "CrossFade takes two tracks: {rendered:?}"
    );
    // Enqueue(track, int) cannot absorb *two* tracks (placement is
    // injective and it has one Track slot), but it can absorb one:
    let one = parse_partial(&db, &ctx, "?({next})").unwrap();
    let rendered_one: Vec<String> = engine
        .complete(&one, 15)
        .iter()
        .map(|c| engine.render(c))
        .collect();
    assert!(
        rendered_one.iter().any(|r| r.contains("Enqueue")),
        "{rendered_one:?}"
    );
    assert!(
        rendered_one.iter().any(|r| r.contains("Play")),
        "{rendered_one:?}"
    );
}

#[test]
fn comparison_prefers_matching_duration_fields() {
    let (db, ctx, _) = setup();
    let index = MethodIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
    let query = parse_partial(&db, &ctx, "next.?m >= this.Current.?m").unwrap();
    let top = engine.complete(&query, 3);
    let first = engine.render(&top[0]);
    assert!(
        first.contains("Duration") && first.matches("Duration").count() == 2,
        "same-named comparable fields first: {first}"
    );
}

#[test]
fn enum_and_comparable_struct_behave() {
    let (db, ctx, _) = setup();
    let index = MethodIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
    // Register(track, codec): the codec hole offers the enum members and
    // the GetCodec() chain.
    let query = parse_partial(&db, &ctx, "Media.Library.Catalog.Register(next, ?)").unwrap();
    let rendered: Vec<String> = engine
        .complete(&query, 10)
        .iter()
        .map(|c| engine.render(c))
        .collect();
    assert!(
        rendered.iter().any(|r| r.contains("GetCodec()")),
        "zero-arg call chains feed enum-typed holes: {rendered:?}"
    );
    // Timestamps are comparable only because of [Comparable].
    let query = parse_partial(&db, &ctx, "next.?f >= this.Current.?f").unwrap();
    let all: Vec<String> = engine
        .completions(&query)
        .take(50)
        .map(|c| engine.render(&c))
        .collect();
    assert!(
        all.iter().any(|r| r.contains("AddedAt")),
        "comparable structs participate in comparisons: {all:?}"
    );
    assert!(
        !all.iter().any(|r| r.contains("Title")),
        "strings are not ordered in C#: {all:?}"
    );
}

#[test]
fn rank_of_positions_are_stable_and_0_based() {
    let (db, ctx, _) = setup();
    let index = MethodIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
    let query = parse_partial(&db, &ctx, "?({next})").unwrap();
    let list: Vec<Completion> = engine.completions(&query).take(20).collect();
    for (i, c) in list.iter().enumerate() {
        let expect = c.expr.clone();
        let res = engine.rank_of(&query, 20, |cand| cand.expr == expect);
        assert_eq!(res.rank, Some(i));
        assert!(
            !res.is_degraded(),
            "a decided rank at this scale must not be cut short: {:?}",
            res.outcome
        );
    }
}
