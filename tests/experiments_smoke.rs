//! Smoke tests for the full evaluation pipeline at a tiny scale: every
//! artefact renders, all metrics sit in range, and the whole pipeline is
//! deterministic (same inputs → byte-identical reports).

use pex::experiments::{
    args, baselines, harness::ExperimentConfig, load_projects, lookups, methods, sensitivity, speed,
};

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        limit: 40,
        max_sites: Some(4),
        ..Default::default()
    }
}

#[test]
fn all_artefacts_render_at_tiny_scale() {
    let projects = load_projects(0.002);
    assert_eq!(projects.len(), 7);
    let cfg = tiny_cfg();

    let m = methods::run(&projects, &cfg);
    assert!(!m.is_empty());
    let t1 = methods::render_table1(&projects, &m);
    assert!(t1.contains("Totals"));
    for render in [
        methods::render_fig9(&m),
        methods::render_fig10(&m),
        methods::render_fig11(&m),
        methods::render_fig12(&m),
    ] {
        assert!(render.contains('%'), "percentages expected:\n{render}");
    }

    let a = args::run(&projects, &cfg);
    assert!(args::render_fig13(&a).contains("guessable"));
    assert!(args::render_fig14(&a).contains("not guessable"));

    let (assigns, cmps) = lookups::run(&projects, &cfg);
    assert!(lookups::render_fig15(&assigns).contains("Target"));
    assert!(lookups::render_fig16(&cmps).contains("Left"));

    let b = baselines::run(&projects, &cfg);
    assert!(baselines::render(&b).contains("insynth-style"));

    let rows = vec![speed::SpeedRow::new("methods", m.iter().map(|o| o.nanos))];
    assert!(speed::render_speed(&rows).contains("p99"));
}

#[test]
fn pipeline_is_deterministic() {
    let cfg = tiny_cfg();
    let run_once = || {
        let projects = load_projects(0.002);
        let m = methods::run(&projects, &cfg);
        let a = args::run(&projects, &cfg);
        let (assigns, cmps) = lookups::run(&projects, &cfg);
        format!(
            "{}\n{}\n{}\n{}\n{}",
            methods::render_table1(&projects, &m),
            methods::render_fig9(&m),
            args::render_fig13(&a),
            lookups::render_fig15(&assigns),
            lookups::render_fig16(&cmps),
        )
    };
    assert_eq!(
        run_once(),
        run_once(),
        "two identical runs must agree byte-for-byte"
    );
}

#[test]
fn sensitivity_runs_at_tiny_scale() {
    let projects = load_projects(0.002);
    let cfg = ExperimentConfig {
        limit: 20,
        max_sites: Some(2),
        ..Default::default()
    };
    let rows = sensitivity::run(&projects, &cfg);
    assert_eq!(rows.len(), 13);
    let rendered = sensitivity::render_table2(&rows);
    assert!(rendered.contains("[Methods]"));
    assert!(rendered.contains("+at"));
}
