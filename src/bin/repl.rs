//! `pex-repl` — interactive partial-expression completion.
//!
//! The paper's future work is an IDE plugin; this REPL is the command-line
//! equivalent: load a program (a builtin corpus or a mini-C# file), declare
//! some locals, and type queries.
//!
//! ```console
//! $ cargo run --bin pex-repl                      # mini Paint.NET
//! $ cargo run --bin pex-repl -- geometry
//! $ cargo run --bin pex-repl -- path/to/code.mcs --local p:Geo.Point
//! pex> ?({img, size})
//! pex> Distance(point, ?)
//! pex> :help
//! ```

use std::io::{BufRead, Write};

use pex::corpus::builtin;
use pex::prelude::*;

/// Writes one line to stdout, treating a closed pipe as a normal exit.
/// `pex-repl | head -1` must end with status 0 once `head` hangs up, not
/// with a broken-pipe panic; any other write failure is a real error (1).
macro_rules! say {
    ($($arg:tt)*) => {
        emit(format_args!($($arg)*), true)
    };
}

fn emit(args: std::fmt::Arguments<'_>, newline: bool) {
    let mut out = std::io::stdout().lock();
    let result = out
        .write_fmt(args)
        .and_then(|_| {
            if newline {
                out.write_all(b"\n")
            } else {
                Ok(())
            }
        })
        .and_then(|_| out.flush());
    if let Err(e) = result {
        drop(out);
        exit_for_write_error(&e);
    }
}

fn exit_for_write_error(e: &std::io::Error) -> ! {
    if e.kind() == std::io::ErrorKind::BrokenPipe {
        // The reader went away; everything written so far was delivered.
        std::process::exit(0);
    }
    eprintln!("pex-repl: cannot write to stdout: {e}");
    std::process::exit(1);
}

fn usage_error(msg: &str) -> ! {
    eprintln!("pex-repl: {msg}\n\n{HELP}");
    std::process::exit(2);
}

struct Session {
    db: Database,
    ctx: Context,
    enclosing_method: Option<pex::model::MethodId>,
    config: RankConfig,
    count: usize,
    /// Per-query chain-depth cap (`--max-depth` / `:depth`); deeper costs
    /// more latency, the engine's best-first pruning keeps it usable.
    max_depth: usize,
    /// Results of the most recent query (for `:refine N`).
    last: Vec<Completion>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut source_arg: Option<String> = None;
    let mut locals_spec: Vec<String> = Vec::new();
    let mut max_depth = CompleteOptions::default().max_depth;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--local" => {
                i += 1;
                match args.get(i) {
                    Some(spec) => locals_spec.push(spec.clone()),
                    None => usage_error("--local expects a following name:Qualified.Type spec"),
                }
            }
            "--max-depth" => {
                i += 1;
                max_depth = match args.get(i).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n <= MAX_DEPTH_LIMIT => n,
                    Some(n) => usage_error(&format!(
                        "--max-depth {n} exceeds the engine limit of {MAX_DEPTH_LIMIT}"
                    )),
                    None => usage_error("--max-depth expects a following non-negative integer"),
                };
            }
            "--help" | "-h" => {
                say!("{HELP}");
                return;
            }
            other if other.starts_with('-') => usage_error(&format!("unknown flag `{other}`")),
            other => {
                if let Some(prev) = &source_arg {
                    usage_error(&format!(
                        "unexpected extra argument `{other}` (source is already `{prev}`)"
                    ));
                }
                source_arg = Some(other.to_owned());
            }
        }
        i += 1;
    }

    let (db, default_ctx, enclosing) = load(source_arg.as_deref());
    let ctx = if locals_spec.is_empty() {
        default_ctx
    } else {
        build_context(&db, &locals_spec)
    };
    let mut session = Session {
        db,
        ctx,
        enclosing_method: enclosing,
        config: RankConfig::all(),
        count: 10,
        max_depth,
        last: Vec::new(),
    };

    say!(
        "pex repl — {} types, {} methods. Type a query, or :help.",
        session.db.types().len(),
        session.db.method_count()
    );
    print_locals(&session);

    let stdin = std::io::stdin();
    loop {
        emit(format_args!("pex> "), false);
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(':') {
            if let Some(query) = rest.strip_prefix("explain ") {
                explain_query(&session, query.trim());
                continue;
            }
            if let Some(n) = rest.strip_prefix("refine ") {
                refine(&mut session, n.trim());
                continue;
            }
            if !command(&mut session, rest) {
                break;
            }
            continue;
        }
        run_query(&mut session, line);
    }
}

fn load(arg: Option<&str>) -> (Database, Context, Option<pex::model::MethodId>) {
    match arg {
        None | Some("paint") => {
            let db = builtin::paint_dot_net();
            let (ctx, m) = builtin::paint_query_site(&db);
            (db, ctx, Some(m))
        }
        Some("geometry") => {
            let db = builtin::dynamic_geometry();
            let ctx = builtin::geometry_fig3_context(&db);
            (db, ctx, None)
        }
        Some("familyshow") => {
            let db = builtin::family_show();
            let ctx = Context::empty();
            (db, ctx, None)
        }
        Some(path) => {
            let source = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(2);
            });
            let db = pex::model::minics::compile(&source).unwrap_or_else(|e| {
                eprintln!("{path}: {e}");
                std::process::exit(2);
            });
            (db, Context::empty(), None)
        }
    }
}

fn build_context(db: &Database, specs: &[String]) -> Context {
    let mut locals = Vec::new();
    for spec in specs {
        let Some((name, ty_name)) = spec.split_once(':') else {
            eprintln!("--local expects name:Qualified.Type, got `{spec}`");
            std::process::exit(2);
        };
        let Some(ty) = db.types().lookup_qualified(ty_name) else {
            eprintln!("unknown type `{ty_name}`");
            std::process::exit(2);
        };
        locals.push(Local {
            name: name.to_owned(),
            ty,
        });
    }
    Context::with_locals(None, locals)
}

fn print_locals(s: &Session) {
    if s.ctx.locals.is_empty() {
        say!("(no locals in scope)");
        return;
    }
    let names: Vec<String> = s
        .ctx
        .locals
        .iter()
        .map(|l| format!("{}: {}", l.name, s.db.types().qualified_name(l.ty)))
        .collect();
    say!("locals: {}", names.join(", "));
}

fn command(s: &mut Session, cmd: &str) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next() {
        Some("q" | "quit" | "exit") => return false,
        Some("help") => say!("{HELP}"),
        Some("locals") => print_locals(s),
        Some("n") => {
            if let Some(n) = parts.next().and_then(|v| v.parse().ok()) {
                s.count = n;
                say!("showing top {n}");
            } else {
                say!("usage: :n <count>");
            }
        }
        Some("depth") => match parts.next().and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n <= MAX_DEPTH_LIMIT => {
                s.max_depth = n;
                say!("chain depth capped at {n} (deeper queries cost more latency)");
            }
            Some(n) => say!("depth {n} exceeds the engine limit of {MAX_DEPTH_LIMIT}"),
            None => say!("usage: :depth <0..={MAX_DEPTH_LIMIT}>"),
        },
        Some("config") => {
            for flag in parts {
                let (on, code) = match flag.split_at(1) {
                    ("+", rest) => (true, rest),
                    ("-", rest) => (false, rest),
                    _ => {
                        say!("usage: :config [+-][nsdmta]...   (e.g. :config -d +t)");
                        continue;
                    }
                };
                for term in RankTerm::ALL {
                    if code == term.code().to_string() {
                        s.config.set(term, on);
                    }
                }
            }
            let active: Vec<String> = RankTerm::ALL
                .iter()
                .filter(|t| s.config.enabled(**t))
                .map(|t| t.code().to_string())
                .collect();
            say!("active terms: {}", active.join(" "));
        }
        Some("abs") => {
            // `:abs [pattern]` — the abstract-type solver's merged classes.
            let pattern = parts.next().unwrap_or("");
            let mut abs = AbsTypes::new(&s.db);
            abs.add_all_bodies_except(None);
            let mut shown = 0;
            for class in abs.dump_classes() {
                if !pattern.is_empty() && !class.iter().any(|slot| slot.contains(pattern)) {
                    continue;
                }
                say!("  [{}]", class.join(", "));
                shown += 1;
                if shown >= 20 {
                    say!("  ... (more classes; narrow with a pattern)");
                    break;
                }
            }
            if shown == 0 {
                say!("(no multi-slot abstract classes match)");
            }
        }
        Some("at") => {
            // `:at Ns.Type.Method [stmt]` — move the context into a method
            // body (locals live before `stmt`; default: end of body).
            let Some(name) = parts.next() else {
                say!("usage: :at Namespace.Type.Method [stmt-index]");
                return true;
            };
            let Some(method) = s.db.find_method(name) else {
                say!("unknown (or overloaded) method `{name}`");
                return true;
            };
            let Some(body) = s.db.method(method).body() else {
                say!("`{name}` has no body to stand in");
                return true;
            };
            let stmt = parts
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or(body.stmts.len())
                .min(body.stmts.len());
            s.ctx = Context::at_statement(&s.db, method, body, stmt);
            s.enclosing_method = Some(method);
            say!("context: inside {name} before statement {stmt}");
            print_locals(s);
        }
        Some("types") => {
            let pattern = parts.next().unwrap_or("");
            for ty in s.db.types().iter() {
                let name = s.db.types().qualified_name(ty);
                if name.contains(pattern) {
                    say!("  {name}");
                }
            }
        }
        Some("methods") => {
            let pattern = parts.next().unwrap_or("");
            for m in s.db.methods() {
                let name = s.db.qualified_method_name(m);
                if name.contains(pattern) {
                    let md = s.db.method(m);
                    let params: Vec<String> = md
                        .params()
                        .iter()
                        .map(|p| s.db.types().qualified_name(p.ty))
                        .collect();
                    say!(
                        "  {}{name}({})",
                        if md.is_static() { "static " } else { "" },
                        params.join(", ")
                    );
                }
            }
        }
        _ => say!("unknown command; try :help"),
    }
    true
}

fn run_query(s: &mut Session, text: &str) {
    let query = match parse_partial(&s.db, &s.ctx, text) {
        Ok(q) => q,
        Err(e) => {
            say!("parse error {e}");
            return;
        }
    };
    run_parsed(s, &query);
}

fn run_parsed(s: &mut Session, query: &PartialExpr) {
    let index = MethodIndex::build(&s.db);
    let abs = s
        .enclosing_method
        .map(|m| AbsTypes::for_query(&s.db, m, usize::MAX));
    let engine = Completer::new(&s.db, &s.ctx, &index, s.config, abs.as_ref()).with_options(
        CompleteOptions {
            max_depth: s.max_depth,
            ..Default::default()
        },
    );
    let results = engine.complete(query, s.count);
    if results.is_empty() {
        say!("(no completions)");
        s.last.clear();
        return;
    }
    for (i, c) in results.iter().enumerate() {
        say!("{:>3}. {}   (score {})", i + 1, engine.render(c), c.score);
    }
    s.last = results;
}

/// `:refine N` — re-open the `0` holes of result N as `?` holes and
/// re-query (the paper's "convert the 0 to ?" follow-up).
fn refine(s: &mut Session, arg: &str) {
    let Ok(n) = arg.parse::<usize>() else {
        say!("usage: :refine <result number>");
        return;
    };
    let Some(chosen) = s.last.get(n.wrapping_sub(1)).cloned() else {
        say!("no result #{n} from the last query");
        return;
    };
    let query = PartialExpr::reopen_holes(&chosen.expr);
    say!("refining: {}", query.shape());
    run_parsed(s, &query);
}

fn explain_query(s: &Session, text: &str) {
    let query = match parse_partial(&s.db, &s.ctx, text) {
        Ok(q) => q,
        Err(e) => {
            say!("parse error {e}");
            return;
        }
    };
    let index = MethodIndex::build(&s.db);
    let abs = s
        .enclosing_method
        .map(|m| AbsTypes::for_query(&s.db, m, usize::MAX));
    let engine = Completer::new(&s.db, &s.ctx, &index, s.config, abs.as_ref()).with_options(
        CompleteOptions {
            max_depth: s.max_depth,
            ..Default::default()
        },
    );
    let ranker = engine.ranker();
    let results = engine.complete(&query, s.count);
    if results.is_empty() {
        say!("(no completions)");
        return;
    }
    let codes: Vec<String> = RankTerm::ALL.iter().map(|t| t.code().to_string()).collect();
    say!("{:>5}  {}  completion", "score", codes.join("  "));
    for c in &results {
        let Some(breakdown) = ranker.explain(&c.expr) else {
            continue;
        };
        let cells: Vec<String> = breakdown
            .terms
            .iter()
            .map(|(_, v)| format!("{v:>2}"))
            .collect();
        say!(
            "{:>5}  {}  {}",
            breakdown.total,
            cells.join(" "),
            engine.render(c)
        );
    }
}

const HELP: &str = "\
pex-repl — type-directed completion of partial expressions

USAGE: pex-repl [paint|geometry|familyshow|FILE.mcs] [--local name:Type]...
                [--max-depth N]   chain-depth cap; deeper = slower queries

Queries:   ?({a, b})   M(a, ?)   a.?f   a.?*m   a.?f := b.?f   a.?*m >= b.?*m
Commands:  :help  :locals  :types [pat]  :methods [pat]
           :at Ns.Type.Method [i] move the context into a method body
           :abs [pattern]        show merged abstract-type classes
           :explain <query>      show per-term score breakdown (n s d m t a)
           :refine <n>           reopen the 0-holes of result n as ? holes
           :n <count>            number of results to show
           :depth <n>            chain-depth cap for queries (latency knob)
           :config [+-][nsdmta]  toggle ranking terms (e.g. :config -d)
           :quit";
