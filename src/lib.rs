//! # pex — type-directed completion of partial expressions
//!
//! A Rust reproduction of Perelman, Gulwani, Ball and Grossman,
//! *Type-Directed Completion of Partial Expressions* (PLDI 2012).
//!
//! A **partial expression** is ordinary code with holes: `?` for an unknown
//! subexpression, `0` for a deliberately unfilled one, `.?f` / `.?*f` /
//! `.?m` / `.?*m` for missing field lookups or zero-argument calls, and
//! `?({e1, ..., en})` for a call to an *unknown method* given some of its
//! arguments in no particular order. The engine enumerates well-typed
//! completions in ranked order, using type distance, expression depth,
//! namespace cohesion, name matching and Lackwit-style abstract types.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`types`] ([`pex_types`]) — nominal type system: hierarchy, namespaces,
//!   implicit conversions, type distance.
//! * [`model`] ([`pex_model`]) — code model: members, expression IR,
//!   contexts, and the mini-C# frontend ([`pex_model::minics`]).
//! * [`abstract_types`] ([`pex_abstract`]) — union-find abstract type
//!   inference.
//! * [`core`] ([`pex_core`]) — the paper's contribution: the partial
//!   expression language, the ranking function, and the completion engine.
//! * [`corpus`] ([`pex_corpus`]) — the paper's worked examples plus seeded
//!   synthetic projects shaped like the paper's seven C# codebases.
//! * [`experiments`] ([`pex_experiments`]) — the full evaluation harness
//!   (every table and figure).
//! * [`obs`] ([`pex_obs`]) — observability substrate: lock-free metrics,
//!   tracing spans, and event sinks with a zero-cost kill switch.
//! * [`serve`] ([`pex_serve`]) — the long-lived completion daemon: a shared
//!   immutable snapshot, a bounded admission queue with explicit load
//!   shedding, and a JSON-lines protocol over stdin or a Unix socket.
//!
//! ## Quickstart
//!
//! ```
//! use pex::prelude::*;
//!
//! // A code model, compiled from mini-C# source.
//! let db = pex::model::minics::compile(r#"
//!     namespace Geo {
//!         struct Point { double X; double Y; }
//!         class Math {
//!             static double Distance(Geo.Point a, Geo.Point b);
//!         }
//!     }
//! "#).unwrap();
//!
//! // A query context: one local, `p`, of type Point.
//! let point = db.types().lookup_qualified("Geo.Point").unwrap();
//! let ctx = Context::with_locals(None, vec![Local { name: "p".into(), ty: point }]);
//!
//! // "I have a p and another p — which method takes them?"
//! let index = MethodIndex::build(&db);
//! let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
//! let query = parse_partial(&db, &ctx, "?({p, p})").unwrap();
//! let top = engine.complete(&query, 1);
//! assert!(engine.render(&top[0]).contains("Distance(p, p)"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pex_abstract as abstract_types;
pub use pex_core as core;
pub use pex_corpus as corpus;
pub use pex_experiments as experiments;
pub use pex_model as model;
pub use pex_obs as obs;
pub use pex_serve as serve;
pub use pex_types as types;

/// The most commonly used items, for `use pex::prelude::*`.
pub mod prelude {
    pub use pex_abstract::AbsTypes;
    pub use pex_core::{
        derives, parse_partial, CompleteOptions, Completer, Completion, MethodIndex, PartialExpr,
        RankConfig, RankTerm, Ranker, ReachIndex, ScoreBreakdown, SuffixKind, MAX_DEPTH_LIMIT,
    };
    pub use pex_model::{
        Body, CallStyle, CmpOp, Context, Database, Expr, Local, Stmt, ValueTy, Visibility,
    };
    pub use pex_types::{NamespaceId, PrimKind, TypeId, TypeTable};
}
