//! Property tests for the type-distance lattice over random hierarchies.

use proptest::prelude::*;

use pex_types::{NamespaceId, PrimKind, TypeId, TypeTable};

/// A recipe for a random hierarchy: per class, an optional base among the
/// earlier classes; per class, optional interface links.
#[derive(Debug, Clone)]
struct Recipe {
    bases: Vec<Option<usize>>,         // bases[i] < i
    iface_of: Vec<Option<usize>>,      // class i implements interface iface_of[i]
    iface_extends: Vec<Option<usize>>, // interface j extends earlier interface
}

fn recipe(max_classes: usize, max_ifaces: usize) -> impl Strategy<Value = Recipe> {
    (2..max_classes, 1..max_ifaces).prop_flat_map(|(nc, ni)| {
        let bases = (0..nc)
            .map(|i| {
                if i == 0 {
                    Just(None).boxed()
                } else {
                    proptest::option::of(0..i).boxed()
                }
            })
            .collect::<Vec<_>>();
        let iface_of = (0..nc)
            .map(|_| proptest::option::of(0..ni))
            .collect::<Vec<_>>();
        let iface_extends = (0..ni)
            .map(|j| {
                if j == 0 {
                    Just(None).boxed()
                } else {
                    proptest::option::of(0..j).boxed()
                }
            })
            .collect::<Vec<_>>();
        (bases, iface_of, iface_extends).prop_map(|(bases, iface_of, iface_extends)| Recipe {
            bases,
            iface_of,
            iface_extends,
        })
    })
}

fn build(recipe: &Recipe) -> (TypeTable, Vec<TypeId>, Vec<TypeId>) {
    let mut table = TypeTable::new();
    let ns = NamespaceId::GLOBAL;
    let ifaces: Vec<TypeId> = (0..recipe.iface_extends.len())
        .map(|j| {
            table
                .declare_interface(ns, &format!("I{j}"))
                .expect("unique names")
        })
        .collect();
    for (j, ext) in recipe.iface_extends.iter().enumerate() {
        if let Some(k) = ext {
            table
                .add_interface_impl(ifaces[j], ifaces[*k])
                .expect("acyclic by construction");
        }
    }
    let classes: Vec<TypeId> = (0..recipe.bases.len())
        .map(|i| {
            table
                .declare_class(ns, &format!("C{i}"))
                .expect("unique names")
        })
        .collect();
    for (i, base) in recipe.bases.iter().enumerate() {
        if let Some(b) = base {
            table
                .set_base(classes[i], classes[*b])
                .expect("acyclic by construction");
        }
        if let Some(j) = recipe.iface_of[i] {
            table
                .add_interface_impl(classes[i], ifaces[j])
                .expect("interfaces are interfaces");
        }
    }
    (table, classes, ifaces)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn distance_laws_hold(recipe in recipe(10, 5)) {
        let (table, classes, ifaces) = build(&recipe);
        let all: Vec<TypeId> = classes.iter().chain(ifaces.iter()).copied().collect();
        let object = table.object();

        for &a in &all {
            // Identity.
            prop_assert_eq!(table.type_distance(a, a), Some(0));
            // Everything nominal converts to Object.
            let to_obj = table.type_distance(a, object);
            prop_assert!(to_obj.is_some());
            // ... and Object converts to nothing else.
            if a != object {
                prop_assert_eq!(table.type_distance(object, a), None);
            }
        }

        // Triangle inequality along composable conversions, and
        // antisymmetry (both directions defined only for equal types).
        for &a in &all {
            for &b in &all {
                let ab = table.type_distance(a, b);
                if a != b && ab.is_some() {
                    prop_assert_eq!(table.type_distance(b, a), None);
                }
                for &c in &all {
                    if let (Some(d1), Some(d2)) =
                        (ab, table.type_distance(b, c))
                    {
                        let ac = table.type_distance(a, c);
                        prop_assert!(ac.is_some(), "convertibility must compose");
                        prop_assert!(
                            ac.expect("checked") <= d1 + d2,
                            "distance must satisfy the triangle inequality"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn conversion_targets_agree_with_distance(recipe in recipe(10, 5)) {
        let (table, classes, ifaces) = build(&recipe);
        let all: Vec<TypeId> = classes.iter().chain(ifaces.iter()).copied().collect();
        for &a in &all {
            let targets = table.conversion_targets(a);
            // Sorted by distance, complete, and consistent.
            let mut last = 0;
            for &(t, d) in &targets {
                prop_assert_eq!(table.type_distance(a, t), Some(d));
                prop_assert!(d >= last);
                last = d;
            }
            for &b in &all {
                if let Some(d) = table.type_distance(a, b) {
                    prop_assert!(
                        targets.contains(&(b, d)),
                        "reachable type missing from conversion targets"
                    );
                }
            }
        }
    }

    #[test]
    fn conversion_index_matches_bfs_oracle(recipe in recipe(12, 6)) {
        // The memoized index is built by DP over the conversion DAG; the
        // BFS walk is the reference oracle. They must agree exactly —
        // distances, target sets, and target order — on every pair,
        // primitives and `object` included.
        let (table, _, _) = build(&recipe);
        let index = table.conversion_index();
        for from in table.iter() {
            let oracle = table.conversion_targets_bfs(from);
            prop_assert_eq!(
                index.targets(from),
                oracle.as_slice(),
                "target list mismatch for {:?}", from
            );
            for to in table.iter() {
                prop_assert_eq!(
                    index.distance(from, to),
                    table.type_distance_bfs(from, to),
                    "distance mismatch for {:?} -> {:?}", from, to
                );
            }
        }
    }

    #[test]
    fn comparable_pairs_are_symmetric(a in 0..14usize, b in 0..14usize) {
        let table = TypeTable::new();
        let ta = table.prim(PrimKind::ALL[a]);
        let tb = table.prim(PrimKind::ALL[b]);
        let ab = table.comparable_pair(ta, tb);
        let ba = table.comparable_pair(tb, ta);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(x), Some(y)) = (ab, ba) {
            prop_assert_eq!(x.general, y.general);
            prop_assert_eq!(x.distance, y.distance);
        }
    }
}
