//! Type distance `td(α, β)` and operator comparability (paper Section 4.1).

use std::collections::VecDeque;

use crate::{TypeId, TypeKind, TypeTable};

/// How two sides of a relational operator relate, as computed by
/// [`TypeTable::comparable_pair`].
///
/// The paper treats binary operators "as methods with two parameters both of
/// the more general type, so the type distance between the two arguments to
/// the operator is used"; `general` is that more general type and `distance`
/// the type distance between the two sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComparablePair {
    /// The more general of the two operand types.
    pub general: TypeId,
    /// `td` between the less and the more general operand type.
    pub distance: u32,
}

impl TypeTable {
    /// The paper's type distance `td(from, to)`.
    ///
    /// Returns `None` when there is no implicit conversion from `from` to
    /// `to`; `Some(0)` when the types are equal; `Some(1)` for primitives
    /// related by implicit widening; otherwise one plus the minimum distance
    /// over the immediate declared supertypes of `from` (the hop count of the
    /// shortest upward path through the hierarchy, e.g.
    /// `td(Rectangle, Shape) = 1`, `td(Rectangle, Object) = 2`).
    ///
    /// Served from the memoized [`TypeTable::conversion_index`]; the
    /// uncached reference implementation is
    /// [`TypeTable::type_distance_bfs`].
    pub fn type_distance(&self, from: TypeId, to: TypeId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        self.conversion_index().distance(from, to)
    }

    /// Uncached reference implementation of [`TypeTable::type_distance`]:
    /// a fresh breadth-first search per query. Kept as the oracle that the
    /// [`crate::ConversionIndex`] is property-tested (and benchmarked)
    /// against.
    pub fn type_distance_bfs(&self, from: TypeId, to: TypeId) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        if let (Some(pa), Some(pb)) = (self.get(from).prim_kind(), self.get(to).prim_kind()) {
            return if pa.widens_to(pb) { Some(1) } else { None };
        }
        if matches!(self.get(from).kind(), TypeKind::Void)
            || matches!(self.get(to).kind(), TypeKind::Void)
        {
            return None;
        }
        // Breadth-first search upward through immediate declared supertypes.
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = VecDeque::new();
        dist[from.index()] = 0;
        queue.push_back(from);
        while let Some(t) = queue.pop_front() {
            let d = dist[t.index()];
            for s in self.immediate_supertypes(t) {
                if dist[s.index()] == u32::MAX {
                    dist[s.index()] = d + 1;
                    if s == to {
                        return Some(d + 1);
                    }
                    queue.push_back(s);
                }
            }
        }
        None
    }

    /// Whether an implicit conversion from `from` to `to` exists
    /// (equivalently, whether `td(from, to)` is defined).
    pub fn implicitly_convertible(&self, from: TypeId, to: TypeId) -> bool {
        self.type_distance(from, to).is_some()
    }

    /// All types `u` (including `from` itself) such that `td(from, u)` is
    /// defined, paired with their distance, in non-decreasing distance order.
    ///
    /// This is the set the method index walks when looking for candidate
    /// methods accepting an argument of type `from`: progressively farther
    /// entries yield progressively worse-ranked results (paper Section 4.2).
    ///
    /// Served from the memoized [`TypeTable::conversion_index`]. Hot paths
    /// should prefer [`TypeTable::conversion_targets_ref`], which borrows
    /// the cached list instead of cloning it.
    pub fn conversion_targets(&self, from: TypeId) -> Vec<(TypeId, u32)> {
        self.conversion_index().targets(from).to_vec()
    }

    /// Borrowing variant of [`TypeTable::conversion_targets`]: the cached
    /// list itself, with no allocation.
    pub fn conversion_targets_ref(&self, from: TypeId) -> &[(TypeId, u32)] {
        self.conversion_index().targets(from)
    }

    /// Uncached reference implementation of
    /// [`TypeTable::conversion_targets`] (the per-query BFS oracle; see
    /// [`TypeTable::type_distance_bfs`]).
    pub fn conversion_targets_bfs(&self, from: TypeId) -> Vec<(TypeId, u32)> {
        let mut out = vec![(from, 0)];
        if let Some(pa) = self.get(from).prim_kind() {
            for (i, pb) in crate::PrimKind::ALL.iter().enumerate() {
                if pa.widens_to(*pb) {
                    out.push((self.prim(crate::PrimKind::ALL[i]), 1));
                }
            }
        }
        if matches!(self.get(from).kind(), TypeKind::Void) {
            return out;
        }
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = VecDeque::new();
        dist[from.index()] = 0;
        queue.push_back(from);
        while let Some(t) = queue.pop_front() {
            let d = dist[t.index()];
            for s in self.immediate_supertypes(t) {
                if dist[s.index()] == u32::MAX {
                    dist[s.index()] = d + 1;
                    out.push((s, d + 1));
                    queue.push_back(s);
                }
            }
        }
        out.sort_by_key(|&(t, d)| (d, t));
        out.dedup_by_key(|&mut (t, _)| t);
        out
    }

    /// Decides whether a relational operator (`<`, `>=`, ...) accepts a pair
    /// of operand types, and if so which is the more general type.
    ///
    /// Valid pairs are: ordered primitives related by identity or widening;
    /// and non-primitive types where one side implicitly converts to the
    /// other and the more general side is marked comparable (enums with
    /// themselves, plus types opted in via [`TypeTable::set_comparable`]).
    pub fn comparable_pair(&self, a: TypeId, b: TypeId) -> Option<ComparablePair> {
        if let (Some(pa), Some(pb)) = (self.get(a).prim_kind(), self.get(b).prim_kind()) {
            if !pa.comparable_with(pb) {
                return None;
            }
            let general = if pa.widens_to(pb) { b } else { a };
            let distance = if pa == pb { 0 } else { 1 };
            return Some(ComparablePair { general, distance });
        }
        if self.get(a).is_primitive() || self.get(b).is_primitive() {
            // A primitive never compares against a non-primitive: the only
            // shared supertype is Object, which is not ordered.
            return None;
        }
        let forward = self
            .type_distance(a, b)
            .filter(|_| self.get(b).is_comparable())
            .map(|d| ComparablePair {
                general: b,
                distance: d,
            });
        let backward = self
            .type_distance(b, a)
            .filter(|_| self.get(a).is_comparable())
            .map(|d| ComparablePair {
                general: a,
                distance: d,
            });
        match (forward, backward) {
            (Some(f), Some(g)) => Some(if g.distance < f.distance { g } else { f }),
            (f, g) => f.or(g),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NamespaceId, PrimKind};

    fn hierarchy() -> (TypeTable, TypeId, TypeId, TypeId) {
        // Object <- Shape <- Rectangle, plus interface IDrawable on Shape.
        let mut t = TypeTable::new();
        let ns = t.namespaces_mut().intern(&["Geometry"]);
        let shape = t.declare_class(ns, "Shape").unwrap();
        let rect = t.declare_class(ns, "Rectangle").unwrap();
        t.set_base(rect, shape).unwrap();
        let drawable = t.declare_interface(ns, "IDrawable").unwrap();
        t.add_interface_impl(shape, drawable).unwrap();
        (t, shape, rect, drawable)
    }

    #[test]
    fn paper_example_distances() {
        let (t, shape, rect, _) = hierarchy();
        assert_eq!(t.type_distance(rect, shape), Some(1));
        assert_eq!(t.type_distance(rect, t.object()), Some(2));
        assert_eq!(t.type_distance(shape, t.object()), Some(1));
        assert_eq!(t.type_distance(shape, rect), None);
        assert_eq!(t.type_distance(rect, rect), Some(0));
    }

    #[test]
    fn interface_paths_count() {
        let (t, shape, rect, drawable) = hierarchy();
        assert_eq!(t.type_distance(shape, drawable), Some(1));
        assert_eq!(t.type_distance(rect, drawable), Some(2));
        assert_eq!(t.type_distance(drawable, t.object()), Some(1));
        assert_eq!(t.type_distance(drawable, shape), None);
    }

    #[test]
    fn primitive_distances_are_flat() {
        let t = TypeTable::new();
        let int = t.int_ty();
        let long = t.prim(PrimKind::Long);
        let double = t.double_ty();
        assert_eq!(t.type_distance(int, long), Some(1));
        assert_eq!(t.type_distance(int, double), Some(1));
        assert_eq!(t.type_distance(double, int), None);
        assert_eq!(t.type_distance(int, t.object()), Some(1));
        assert_eq!(t.type_distance(t.string_ty(), t.object()), Some(1));
        assert_eq!(t.type_distance(int, t.string_ty()), None);
    }

    #[test]
    fn void_converts_to_nothing() {
        let t = TypeTable::new();
        assert_eq!(t.type_distance(t.void_ty(), t.object()), None);
        assert_eq!(t.type_distance(t.int_ty(), t.void_ty()), None);
        assert_eq!(t.type_distance(t.void_ty(), t.void_ty()), Some(0));
    }

    #[test]
    fn conversion_targets_sorted_and_complete() {
        let (t, shape, rect, drawable) = hierarchy();
        let targets = t.conversion_targets(rect);
        let ids: Vec<TypeId> = targets.iter().map(|&(t, _)| t).collect();
        assert_eq!(targets[0], (rect, 0));
        assert!(ids.contains(&shape));
        assert!(ids.contains(&drawable));
        assert!(ids.contains(&t.object()));
        for w in targets.windows(2) {
            assert!(w[0].1 <= w[1].1, "distances must be non-decreasing");
        }
        for &(u, d) in &targets {
            assert_eq!(t.type_distance(rect, u), Some(d));
        }
    }

    #[test]
    fn conversion_targets_for_primitives_include_widenings() {
        let t = TypeTable::new();
        let targets = t.conversion_targets(t.int_ty());
        let ids: Vec<TypeId> = targets.iter().map(|&(ty, _)| ty).collect();
        assert!(ids.contains(&t.prim(PrimKind::Long)));
        assert!(ids.contains(&t.double_ty()));
        assert!(ids.contains(&t.object()));
        assert!(!ids.contains(&t.prim(PrimKind::Short)));
    }

    #[test]
    fn comparability_of_primitives() {
        let t = TypeTable::new();
        let p = t.comparable_pair(t.int_ty(), t.double_ty()).unwrap();
        assert_eq!(p.general, t.double_ty());
        assert_eq!(p.distance, 1);
        let q = t.comparable_pair(t.int_ty(), t.int_ty()).unwrap();
        assert_eq!(q.general, t.int_ty());
        assert_eq!(q.distance, 0);
        assert!(t.comparable_pair(t.bool_ty(), t.bool_ty()).is_none());
        assert!(t.comparable_pair(t.string_ty(), t.string_ty()).is_none());
        assert!(t.comparable_pair(t.int_ty(), t.object()).is_none());
    }

    #[test]
    fn comparability_of_marked_types() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let datetime = t.declare_struct(ns, "DateTime").unwrap();
        t.set_comparable(datetime, true);
        let p = t.comparable_pair(datetime, datetime).unwrap();
        assert_eq!(p.general, datetime);
        assert_eq!(p.distance, 0);

        let plain = t.declare_struct(ns, "Plain").unwrap();
        assert!(t.comparable_pair(plain, plain).is_none());
        assert!(t.comparable_pair(datetime, plain).is_none());

        let e1 = t.declare_enum(ns, "E1").unwrap();
        let e2 = t.declare_enum(ns, "E2").unwrap();
        assert!(t.comparable_pair(e1, e1).is_some());
        assert!(t.comparable_pair(e1, e2).is_none());
    }

    #[test]
    fn comparability_through_subtyping() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let base = t.declare_class(ns, "Version").unwrap();
        let derived = t.declare_class(ns, "SemVer").unwrap();
        t.set_base(derived, base).unwrap();
        t.set_comparable(base, true);
        let p = t.comparable_pair(derived, base).unwrap();
        assert_eq!(p.general, base);
        assert_eq!(p.distance, 1);
        let q = t.comparable_pair(base, derived).unwrap();
        assert_eq!(q.general, base);
        assert_eq!(q.distance, 1);
    }
}
