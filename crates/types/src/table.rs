//! The type table: an arena of type definitions plus hierarchy maintenance.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::wire::{Reader, WireError, WireResult, Writer};
use crate::{
    ConversionIndex, NamespaceId, Namespaces, PrimKind, TypeDef, TypeError, TypeId, TypeKind,
    TypeResult,
};

/// Ids of the types every table contains from birth.
#[derive(Debug, Clone, Copy)]
pub struct WellKnown {
    /// `System.Object`, the root of the reference hierarchy and the boxing
    /// target of every value type.
    pub object: TypeId,
    /// `void`, the return "type" of methods that return nothing. It converts
    /// to nothing and nothing converts to it.
    pub void: TypeId,
}

/// Arena of all types in a modelled program plus the namespace arena.
///
/// A fresh table contains `System.Object`, `void`, and the fourteen
/// primitives of [`PrimKind`] (registered in the global namespace under their
/// C# keywords). User types are added with the `declare_*` methods and wired
/// up with [`TypeTable::set_base`] / [`TypeTable::add_interface_impl`], which
/// enforce acyclicity.
#[derive(Debug, Clone)]
pub struct TypeTable {
    namespaces: Namespaces,
    types: Vec<TypeDef>,
    by_name: HashMap<(NamespaceId, String), TypeId>,
    well_known: WellKnown,
    prims: [TypeId; PrimKind::ALL.len()],
    /// Lazily built conversion cache; cleared by every hierarchy mutator
    /// so it can never go stale (all mutators take `&mut self`).
    // Arc-shared so cloning a table (the incremental-update path
    // patches a clone) shares the memoized index instead of deep-
    // copying every distance row; hierarchy mutators still drop it.
    conv: OnceLock<Arc<ConversionIndex>>,
}

impl Default for TypeTable {
    fn default() -> Self {
        Self::new()
    }
}

impl TypeTable {
    /// Creates a table pre-populated with `Object`, `void` and the primitives.
    pub fn new() -> Self {
        let mut namespaces = Namespaces::new();
        let system = namespaces.intern(&["System"]);
        let mut table = TypeTable {
            namespaces,
            types: Vec::new(),
            by_name: HashMap::new(),
            // Placeholder ids, fixed up immediately below.
            well_known: WellKnown {
                object: TypeId(0),
                void: TypeId(0),
            },
            prims: [TypeId(0); PrimKind::ALL.len()],
            conv: OnceLock::new(),
        };
        let object = table
            .push(system, "Object", TypeKind::Class { base: None }, false)
            .expect("fresh table");
        let void = table
            .push(system, "Void", TypeKind::Void, false)
            .expect("fresh table");
        table.well_known = WellKnown { object, void };
        for (i, p) in PrimKind::ALL.iter().enumerate() {
            let id = table
                .push(
                    NamespaceId::GLOBAL,
                    p.keyword(),
                    TypeKind::Primitive(*p),
                    p.is_ordered(),
                )
                .expect("fresh table");
            table.prims[i] = id;
        }
        table
    }

    fn push(
        &mut self,
        namespace: NamespaceId,
        name: &str,
        kind: TypeKind,
        comparable: bool,
    ) -> TypeResult<TypeId> {
        let key = (namespace, name.to_owned());
        if self.by_name.contains_key(&key) {
            return Err(TypeError::DuplicateType {
                name: name.to_owned(),
            });
        }
        self.conv.take();
        let id = TypeId(self.types.len() as u32);
        self.types.push(TypeDef {
            name: name.to_owned(),
            namespace,
            kind,
            interfaces: Vec::new(),
            comparable,
        });
        self.by_name.insert(key, id);
        Ok(id)
    }

    /// The namespace arena.
    pub fn namespaces(&self) -> &Namespaces {
        &self.namespaces
    }

    /// Mutable access to the namespace arena (for interning new paths).
    pub fn namespaces_mut(&mut self) -> &mut Namespaces {
        &mut self.namespaces
    }

    /// Ids of the always-present types.
    pub fn well_known(&self) -> WellKnown {
        self.well_known
    }

    /// `System.Object`.
    pub fn object(&self) -> TypeId {
        self.well_known.object
    }

    /// The `void` pseudo-type.
    pub fn void_ty(&self) -> TypeId {
        self.well_known.void
    }

    /// The table id of a primitive kind.
    pub fn prim(&self, kind: PrimKind) -> TypeId {
        self.prims[PrimKind::ALL
            .iter()
            .position(|p| *p == kind)
            .expect("all kinds listed")]
    }

    /// Shorthand for [`TypeTable::prim`] with [`PrimKind::Int`].
    pub fn int_ty(&self) -> TypeId {
        self.prim(PrimKind::Int)
    }

    /// Shorthand for [`TypeTable::prim`] with [`PrimKind::Bool`].
    pub fn bool_ty(&self) -> TypeId {
        self.prim(PrimKind::Bool)
    }

    /// Shorthand for [`TypeTable::prim`] with [`PrimKind::Double`].
    pub fn double_ty(&self) -> TypeId {
        self.prim(PrimKind::Double)
    }

    /// Shorthand for [`TypeTable::prim`] with [`PrimKind::String`].
    pub fn string_ty(&self) -> TypeId {
        self.prim(PrimKind::String)
    }

    /// Declares a class deriving `Object` (until [`TypeTable::set_base`]).
    pub fn declare_class(&mut self, ns: NamespaceId, name: &str) -> TypeResult<TypeId> {
        self.push(ns, name, TypeKind::Class { base: None }, false)
    }

    /// Declares an interface.
    pub fn declare_interface(&mut self, ns: NamespaceId, name: &str) -> TypeResult<TypeId> {
        self.push(ns, name, TypeKind::Interface, false)
    }

    /// Declares a struct (user value type).
    pub fn declare_struct(&mut self, ns: NamespaceId, name: &str) -> TypeResult<TypeId> {
        self.push(ns, name, TypeKind::Struct, false)
    }

    /// Declares an enum. Enums are comparable with themselves by default.
    pub fn declare_enum(&mut self, ns: NamespaceId, name: &str) -> TypeResult<TypeId> {
        self.push(ns, name, TypeKind::Enum, true)
    }

    /// Sets the direct base class of `class`.
    ///
    /// # Errors
    ///
    /// Fails if `class` is not a class, is `Object`, if `base` is not a
    /// class, or if the edge would create a cycle.
    pub fn set_base(&mut self, class: TypeId, base: TypeId) -> TypeResult<()> {
        if class == self.well_known.object {
            return Err(TypeError::BaseNotAllowed {
                name: self.get(class).name.clone(),
            });
        }
        if !self.get(class).is_class() {
            return Err(TypeError::NotAClass {
                name: self.get(class).name.clone(),
            });
        }
        if !self.get(base).is_class() {
            return Err(TypeError::NotAClass {
                name: self.get(base).name.clone(),
            });
        }
        // Walk up from `base`; reaching `class` means a cycle.
        let mut cur = Some(base);
        while let Some(t) = cur {
            if t == class {
                return Err(TypeError::InheritanceCycle {
                    name: self.get(class).name.clone(),
                });
            }
            cur = self.declared_base(t);
        }
        match &mut self.types[class.index()].kind {
            TypeKind::Class { base: b } => *b = Some(base),
            _ => unreachable!("checked is_class above"),
        }
        self.conv.take();
        Ok(())
    }

    /// Records that `ty` implements (or, for interfaces, extends) `iface`.
    ///
    /// # Errors
    ///
    /// Fails if `iface` is not an interface or a cycle would be created
    /// between interfaces.
    pub fn add_interface_impl(&mut self, ty: TypeId, iface: TypeId) -> TypeResult<()> {
        if !self.get(iface).is_interface() {
            return Err(TypeError::NotAnInterface {
                name: self.get(iface).name.clone(),
            });
        }
        if self.get(ty).is_interface() {
            // Cycle check through interface-extends edges.
            let mut stack = vec![iface];
            let mut seen = vec![false; self.types.len()];
            while let Some(t) = stack.pop() {
                if t == ty {
                    return Err(TypeError::InheritanceCycle {
                        name: self.get(ty).name.clone(),
                    });
                }
                if std::mem::replace(&mut seen[t.index()], true) {
                    continue;
                }
                stack.extend(self.get(t).interfaces.iter().copied());
            }
        }
        let list = &mut self.types[ty.index()].interfaces;
        if !list.contains(&iface) {
            list.push(iface);
            self.conv.take();
        }
        Ok(())
    }

    /// Marks a non-primitive type as ordered by the relational operators
    /// (the paper's `DateTime` example).
    pub fn set_comparable(&mut self, ty: TypeId, comparable: bool) {
        self.types[ty.index()].comparable = comparable;
    }

    /// Drops a type's declared base class and interface list so an
    /// incremental update can re-apply a changed base list from scratch.
    /// Clears the memoized conversion index like every hierarchy mutator.
    pub fn clear_supertypes(&mut self, ty: TypeId) {
        if let TypeKind::Class { base } = &mut self.types[ty.index()].kind {
            *base = None;
        }
        self.types[ty.index()].interfaces.clear();
        self.conv.take();
    }

    /// Installs a prebuilt conversion index (the incremental update path
    /// swaps in a [`ConversionIndex::rebuild_partial`] result instead of
    /// paying a cold [`ConversionIndex::build`] on next access).
    pub fn set_conversion_index(&mut self, index: ConversionIndex) {
        self.conv.take();
        let _ = self.conv.set(Arc::new(index));
    }

    /// The definition behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn get(&self, id: TypeId) -> &TypeDef {
        &self.types[id.index()]
    }

    /// Looks up a type by namespace and simple name.
    pub fn lookup(&self, ns: NamespaceId, name: &str) -> Option<TypeId> {
        self.by_name.get(&(ns, name.to_owned())).copied()
    }

    /// Looks up a type by fully qualified dotted name (e.g.
    /// `"System.Object"`; primitives by keyword, e.g. `"int"`).
    pub fn lookup_qualified(&self, qualified: &str) -> Option<TypeId> {
        match qualified.rfind('.') {
            None => self.lookup(NamespaceId::GLOBAL, qualified),
            Some(i) => {
                let ns = self.namespaces.lookup_dotted(&qualified[..i])?;
                self.lookup(ns, &qualified[i + 1..])
            }
        }
    }

    /// Number of types in the table.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// A table is never empty (well-known types are always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all type ids in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = TypeId> + '_ {
        (0..self.types.len() as u32).map(TypeId)
    }

    /// Fully qualified dotted name of a type (primitives by keyword).
    pub fn qualified_name(&self, id: TypeId) -> String {
        let def = self.get(id);
        let ns = self.namespaces.dotted(def.namespace);
        if ns.is_empty() {
            def.name.clone()
        } else {
            format!("{ns}.{}", def.name)
        }
    }

    /// The declared base class edge, without the implicit `Object` fallback.
    pub fn declared_base(&self, id: TypeId) -> Option<TypeId> {
        match self.get(id).kind {
            TypeKind::Class { base } => base,
            _ => None,
        }
    }

    /// The effective base in the conversion graph: the declared base for
    /// classes (defaulting to `Object`), and `Object` for value types,
    /// primitives and interfaces (boxing / the universal reference target).
    /// `Object` and `void` have none.
    pub fn base_of(&self, id: TypeId) -> Option<TypeId> {
        if id == self.well_known.object || id == self.well_known.void {
            return None;
        }
        match self.get(id).kind {
            TypeKind::Class { base } => Some(base.unwrap_or(self.well_known.object)),
            TypeKind::Void => None,
            TypeKind::Interface | TypeKind::Struct | TypeKind::Enum | TypeKind::Primitive(_) => {
                Some(self.well_known.object)
            }
        }
    }

    /// Immediate declared supertypes in the conversion graph: the effective
    /// base plus declared interfaces. This is the `s(α)` of the paper's type
    /// distance definition.
    pub fn immediate_supertypes(&self, id: TypeId) -> Vec<TypeId> {
        let mut out = Vec::new();
        if let Some(b) = self.base_of(id) {
            out.push(b);
        }
        out.extend(self.get(id).interfaces.iter().copied());
        out
    }

    /// Serializes the table (namespaces, type definitions, well-known ids,
    /// and — when already built — the conversion index) for the persistent
    /// snapshot. The name lookup map is rebuilt on decode.
    pub fn encode(&self, w: &mut Writer) {
        self.namespaces.encode(w);
        w.put_len(self.types.len());
        for def in &self.types {
            w.put_str(&def.name);
            w.put_u32(def.namespace.0);
            match &def.kind {
                TypeKind::Class { base } => {
                    w.put_u8(0);
                    w.put_bool(base.is_some());
                    w.put_u32(base.map_or(0, |b| b.0));
                }
                TypeKind::Interface => w.put_u8(1),
                TypeKind::Struct => w.put_u8(2),
                TypeKind::Enum => w.put_u8(3),
                TypeKind::Primitive(p) => {
                    w.put_u8(4);
                    let idx = PrimKind::ALL
                        .iter()
                        .position(|q| q == p)
                        .expect("all kinds listed");
                    w.put_u8(idx as u8);
                }
                TypeKind::Void => w.put_u8(5),
            }
            w.put_len(def.interfaces.len());
            for i in &def.interfaces {
                w.put_u32(i.0);
            }
            w.put_bool(def.comparable);
        }
        w.put_u32(self.well_known.object.0);
        w.put_u32(self.well_known.void.0);
        for p in self.prims {
            w.put_u32(p.0);
        }
        let conv = self.conv.get();
        w.put_bool(conv.is_some());
        if let Some(conv) = conv {
            conv.encode(w);
        }
    }

    /// Decodes a table written by [`TypeTable::encode`].
    ///
    /// Every namespace, base, interface, well-known and primitive id is
    /// bounds-checked; the well-known entries are verified to have the
    /// kinds a freshly-built table guarantees (`Object` a baseless class,
    /// `void` the void pseudo-type, each primitive slot the matching
    /// [`PrimKind`]), so downstream code can keep relying on those
    /// invariants without re-checking.
    pub fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let namespaces = Namespaces::decode(r)?;
        let count = r.get_len("type count")?;
        let mut types = Vec::with_capacity(count);
        let mut by_name = HashMap::with_capacity(count);
        for i in 0..count {
            let name = r.get_str("type name")?;
            let namespace = NamespaceId(r.get_id(namespaces.len(), "type namespace id")? as u32);
            let kind = match r.get_u8("type kind tag")? {
                0 => {
                    let has_base = r.get_bool("base presence flag")?;
                    let raw = r.get_u32("base class id")?;
                    let base = if has_base {
                        if raw as usize >= count {
                            return Err(WireError::new(format!(
                                "base class id {raw} out of range (table holds {count})"
                            )));
                        }
                        Some(TypeId(raw))
                    } else {
                        None
                    };
                    TypeKind::Class { base }
                }
                1 => TypeKind::Interface,
                2 => TypeKind::Struct,
                3 => TypeKind::Enum,
                4 => {
                    let idx = r.get_u8("primitive kind index")? as usize;
                    match PrimKind::ALL.get(idx) {
                        Some(p) => TypeKind::Primitive(*p),
                        None => {
                            return Err(WireError::new(format!(
                                "primitive kind index {idx} out of range"
                            )))
                        }
                    }
                }
                5 => TypeKind::Void,
                t => return Err(WireError::new(format!("unknown type kind tag {t}"))),
            };
            let n_ifaces = r.get_len("interface count")?;
            let mut interfaces = Vec::with_capacity(n_ifaces);
            for _ in 0..n_ifaces {
                interfaces.push(TypeId(r.get_id(count, "interface id")? as u32));
            }
            let comparable = r.get_bool("comparable flag")?;
            if by_name
                .insert((namespace, name.clone()), TypeId(i as u32))
                .is_some()
            {
                return Err(WireError::new(format!("duplicate type name '{name}'")));
            }
            types.push(TypeDef {
                name,
                namespace,
                kind,
                interfaces,
                comparable,
            });
        }
        let object = TypeId(r.get_id(count, "well-known Object id")? as u32);
        let void = TypeId(r.get_id(count, "well-known void id")? as u32);
        if !matches!(types[object.index()].kind, TypeKind::Class { base: None }) {
            return Err(WireError::new("well-known Object is not a baseless class"));
        }
        if !matches!(types[void.index()].kind, TypeKind::Void) {
            return Err(WireError::new("well-known void id does not name void"));
        }
        let mut prims = [TypeId(0); PrimKind::ALL.len()];
        for (i, slot) in prims.iter_mut().enumerate() {
            let id = TypeId(r.get_id(count, "primitive type id")? as u32);
            if types[id.index()].kind != TypeKind::Primitive(PrimKind::ALL[i]) {
                return Err(WireError::new(format!(
                    "primitive slot {i} does not name {}",
                    PrimKind::ALL[i].keyword()
                )));
            }
            *slot = id;
        }
        let conv = OnceLock::new();
        if r.get_bool("conversion index presence flag")? {
            let index = ConversionIndex::decode(r, count)?;
            let _ = conv.set(Arc::new(index));
        }
        Ok(TypeTable {
            namespaces,
            types,
            by_name,
            well_known: WellKnown { object, void },
            prims,
            conv,
        })
    }

    /// The memoized conversion cache for the current hierarchy, built on
    /// first use (and after any hierarchy mutation) in one pass over the
    /// table. All distance/target queries on `TypeTable` go through this;
    /// engine hot paths can also hold it directly to skip the `OnceLock`
    /// read per call.
    pub fn conversion_index(&self) -> &ConversionIndex {
        self.conv
            .get_or_init(|| Arc::new(ConversionIndex::build(self)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_table_has_well_known_types() {
        let t = TypeTable::new();
        assert_eq!(t.get(t.object()).name(), "Object");
        assert_eq!(t.qualified_name(t.object()), "System.Object");
        assert_eq!(t.qualified_name(t.int_ty()), "int");
        assert_eq!(t.lookup_qualified("System.Object"), Some(t.object()));
        assert_eq!(t.lookup_qualified("int"), Some(t.int_ty()));
        assert_eq!(t.lookup_qualified("Nope.Object"), None);
    }

    #[test]
    fn duplicate_names_rejected_per_namespace() {
        let mut t = TypeTable::new();
        let ns = t.namespaces_mut().intern(&["A"]);
        let other = t.namespaces_mut().intern(&["B"]);
        t.declare_class(ns, "C").unwrap();
        assert!(matches!(
            t.declare_class(ns, "C"),
            Err(TypeError::DuplicateType { .. })
        ));
        // Same simple name in another namespace is fine.
        t.declare_class(other, "C").unwrap();
    }

    #[test]
    fn base_cycles_rejected() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let a = t.declare_class(ns, "A").unwrap();
        let b = t.declare_class(ns, "B").unwrap();
        t.set_base(b, a).unwrap();
        assert!(matches!(
            t.set_base(a, b),
            Err(TypeError::InheritanceCycle { .. })
        ));
        assert!(matches!(
            t.set_base(a, a),
            Err(TypeError::InheritanceCycle { .. })
        ));
    }

    #[test]
    fn object_cannot_get_a_base() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let a = t.declare_class(ns, "A").unwrap();
        let obj = t.object();
        assert!(matches!(
            t.set_base(obj, a),
            Err(TypeError::BaseNotAllowed { .. })
        ));
    }

    #[test]
    fn interface_extends_cycle_rejected() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let i = t.declare_interface(ns, "I").unwrap();
        let j = t.declare_interface(ns, "J").unwrap();
        t.add_interface_impl(j, i).unwrap();
        assert!(matches!(
            t.add_interface_impl(i, j),
            Err(TypeError::InheritanceCycle { .. })
        ));
    }

    #[test]
    fn implementing_a_class_is_an_error() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let a = t.declare_class(ns, "A").unwrap();
        let b = t.declare_class(ns, "B").unwrap();
        assert!(matches!(
            t.add_interface_impl(a, b),
            Err(TypeError::NotAnInterface { .. })
        ));
    }

    #[test]
    fn base_of_defaults_to_object() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let a = t.declare_class(ns, "A").unwrap();
        let s = t.declare_struct(ns, "S").unwrap();
        let e = t.declare_enum(ns, "E").unwrap();
        assert_eq!(t.base_of(a), Some(t.object()));
        assert_eq!(t.base_of(s), Some(t.object()));
        assert_eq!(t.base_of(e), Some(t.object()));
        assert_eq!(t.base_of(t.object()), None);
        assert_eq!(t.base_of(t.void_ty()), None);
        assert_eq!(t.base_of(t.int_ty()), Some(t.object()));
    }

    #[test]
    fn enums_default_comparable() {
        let mut t = TypeTable::new();
        let e = t.declare_enum(NamespaceId::GLOBAL, "E").unwrap();
        assert!(t.get(e).is_comparable());
        let c = t.declare_class(NamespaceId::GLOBAL, "DateTime").unwrap();
        assert!(!t.get(c).is_comparable());
        t.set_comparable(c, true);
        assert!(t.get(c).is_comparable());
    }
}
