//! The memoized type-relation cache (paper Section 4.2, "grouping
//! computations by type").
//!
//! [`ConversionIndex`] precomputes, for every type in a [`TypeTable`], the
//! full conversion-target list (every `u` with `td(t, u)` defined, sorted
//! by distance) plus an id-sorted copy for fast distance lookup. The
//! engine's hot paths — candidate collection, chain expansion, call
//! filtering, and the ranker's distance terms — all reduce to these two
//! lookups, so caching them removes the per-query BFS and its allocations.
//!
//! The index is built by dynamic programming over the (acyclic) conversion
//! graph: `targets(t) = {(t, 0)} ∪ widenings(t) ∪ min-merge over immediate
//! supertypes s of {(u, d+1) : (u, d) ∈ targets(s)}`. This is intentionally
//! a *different* algorithm from the per-query BFS in
//! [`TypeTable::type_distance_bfs`], which is kept as the reference oracle:
//! property tests assert the two agree on random hierarchies.
//!
//! Freshness is structural: the index lives in a `OnceLock` inside
//! [`TypeTable`] and every hierarchy mutator (`declare_*`, `set_base`,
//! `add_interface_impl`) takes `&mut self` and clears it, so a stale index
//! cannot be observed.

use std::collections::HashMap;

use crate::wire::{Reader, WireError, WireResult, Writer};
use crate::{TypeId, TypeKind, TypeTable};

/// Precomputed conversion relations for every type of one [`TypeTable`]
/// snapshot. Obtain through [`TypeTable::conversion_index`].
#[derive(Debug, Clone, Default)]
pub struct ConversionIndex {
    /// Per type: conversion targets sorted by `(distance, id)` — exactly
    /// the order [`TypeTable::conversion_targets_bfs`] produces.
    targets: Vec<Vec<(TypeId, u32)>>,
    /// Per type: the same pairs sorted by id, for binary-search distance
    /// lookup. Ancestor lists are bounded by hierarchy depth plus interface
    /// count, so the search touches a handful of entries.
    by_id: Vec<Vec<(TypeId, u32)>>,
    /// Per type: one bit per table type, set when a conversion to that type
    /// exists — the memoized *negative* answer. Most hot-path distance
    /// queries ask about unconvertible pairs (every argument type against
    /// every parameter type), so "no conversion" must be as cheap as "yes":
    /// one bit probe, no binary search.
    convertible: Vec<Vec<u64>>,
}

impl ConversionIndex {
    /// Builds the index for the table's current hierarchy.
    pub fn build(table: &TypeTable) -> Self {
        pex_obs::counter!("convindex.builds", 1);
        let n = table.len();
        let mut memo: Vec<Option<Vec<(TypeId, u32)>>> = vec![None; n];
        for root in table.iter() {
            Self::ensure(table, root, &mut memo);
        }
        let targets: Vec<Vec<(TypeId, u32)>> = memo
            .into_iter()
            .map(|list| list.expect("every type visited"))
            .collect();
        let by_id: Vec<Vec<(TypeId, u32)>> = targets
            .iter()
            .map(|list| {
                let mut v = list.clone();
                v.sort_unstable_by_key(|&(t, _)| t);
                v
            })
            .collect();
        let words = n.div_ceil(64);
        let convertible = by_id
            .iter()
            .map(|list| {
                let mut bits = vec![0u64; words];
                for &(t, _) in list {
                    bits[t.index() / 64] |= 1u64 << (t.index() % 64);
                }
                bits
            })
            .collect();
        ConversionIndex {
            targets,
            by_id,
            convertible,
        }
    }

    /// Rebuilds the index after an incremental hierarchy edit, reusing
    /// every row of `old` whose conversion closure avoids the dirty set.
    ///
    /// A row can only change when its old target list contains a dirty
    /// type: edge changes happen only *at* dirty types, a type is its own
    /// distance-0 target, and any ancestor whose edges changed is in the
    /// old list. A type whose new closure gains a dirty member must have
    /// an old-closure member that changed edges — itself dirty and in the
    /// old list. Types the old index never covered (freshly declared) are
    /// always recomputed. Returns the index and the recomputed row count.
    pub fn rebuild_partial(
        table: &TypeTable,
        old: &ConversionIndex,
        dirty: &[TypeId],
    ) -> (Self, usize) {
        pex_obs::counter!("convindex.partial_rebuilds", 1);
        let n = table.len();
        let mut is_dirty = vec![false; n];
        for &d in dirty {
            is_dirty[d.index()] = true;
        }
        let mut memo: Vec<Option<Vec<(TypeId, u32)>>> = vec![None; n];
        let mut reused = 0usize;
        for t in table.iter() {
            if let Some(row) = old.targets.get(t.index()) {
                if !row.iter().any(|&(u, _)| is_dirty[u.index()]) {
                    memo[t.index()] = Some(row.clone());
                    reused += 1;
                }
            }
        }
        for root in table.iter() {
            Self::ensure(table, root, &mut memo);
        }
        let targets: Vec<Vec<(TypeId, u32)>> = memo
            .into_iter()
            .map(|list| list.expect("every type visited"))
            .collect();
        let by_id: Vec<Vec<(TypeId, u32)>> = targets
            .iter()
            .map(|list| {
                let mut v = list.clone();
                v.sort_unstable_by_key(|&(t, _)| t);
                v
            })
            .collect();
        let words = n.div_ceil(64);
        let convertible = by_id
            .iter()
            .map(|list| {
                let mut bits = vec![0u64; words];
                for &(t, _) in list {
                    bits[t.index() / 64] |= 1u64 << (t.index() % 64);
                }
                bits
            })
            .collect();
        (
            ConversionIndex {
                targets,
                by_id,
                convertible,
            },
            n - reused,
        )
    }

    /// Computes `memo[t]` bottom-up with an explicit stack (hierarchies can
    /// be deep enough that recursion is not worth risking).
    fn ensure(table: &TypeTable, t: TypeId, memo: &mut [Option<Vec<(TypeId, u32)>>]) {
        let mut stack = vec![t];
        while let Some(&cur) = stack.last() {
            if memo[cur.index()].is_some() {
                stack.pop();
                continue;
            }
            let sups = table.immediate_supertypes(cur);
            let mut ready = true;
            for &s in &sups {
                if memo[s.index()].is_none() {
                    stack.push(s);
                    ready = false;
                }
            }
            if !ready {
                continue;
            }
            let mut best: HashMap<TypeId, u32> = HashMap::new();
            best.insert(cur, 0);
            if let Some(pa) = table.get(cur).prim_kind() {
                for pb in crate::PrimKind::ALL {
                    if pa.widens_to(pb) {
                        best.insert(table.prim(pb), 1);
                    }
                }
            }
            if !matches!(table.get(cur).kind(), TypeKind::Void) {
                for &s in &sups {
                    for &(u, d) in memo[s.index()].as_ref().expect("ready") {
                        let entry = best.entry(u).or_insert(u32::MAX);
                        *entry = (*entry).min(d + 1);
                    }
                }
            }
            let mut list: Vec<(TypeId, u32)> = best.into_iter().collect();
            list.sort_unstable_by_key(|&(ty, d)| (d, ty));
            memo[cur.index()] = Some(list);
            stack.pop();
        }
    }

    /// Serializes the index for the persistent snapshot. Only the
    /// `(distance, id)`-ordered target lists are written; the id-sorted
    /// copy and the convertibility bitset are deterministic derivations
    /// and are rebuilt on decode.
    pub fn encode(&self, w: &mut Writer) {
        w.put_len(self.targets.len());
        for list in &self.targets {
            w.put_len(list.len());
            for &(ty, d) in list {
                w.put_u32(ty.0);
                w.put_u32(d);
            }
        }
    }

    /// Decodes an index written by [`ConversionIndex::encode`] for a table
    /// of `n_types` types, bounds-checking every type id and rebuilding
    /// the derived lookup structures exactly as [`ConversionIndex::build`]
    /// does.
    pub fn decode(r: &mut Reader<'_>, n_types: usize) -> WireResult<Self> {
        let n = r.get_len("conversion index type count")?;
        if n != n_types {
            return Err(WireError::new(format!(
                "conversion index covers {n} types but the table holds {n_types}"
            )));
        }
        let mut targets = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.get_len("conversion target count")?;
            let mut list = Vec::with_capacity(len);
            for _ in 0..len {
                let ty = r.get_id(n_types, "conversion target type id")?;
                let d = r.get_u32("conversion distance")?;
                list.push((TypeId(ty as u32), d));
            }
            targets.push(list);
        }
        let by_id: Vec<Vec<(TypeId, u32)>> = targets
            .iter()
            .map(|list| {
                let mut v = list.clone();
                v.sort_unstable_by_key(|&(t, _)| t);
                v
            })
            .collect();
        let words = n_types.div_ceil(64);
        let convertible = by_id
            .iter()
            .map(|list| {
                let mut bits = vec![0u64; words];
                for &(t, _) in list {
                    bits[t.index() / 64] |= 1u64 << (t.index() % 64);
                }
                bits
            })
            .collect();
        Ok(ConversionIndex {
            targets,
            by_id,
            convertible,
        })
    }

    /// The cached `td(from, to)`.
    ///
    /// Negative answers are memoized in the `convertible` bitset, so a pair
    /// with no conversion costs one bit probe — counted under
    /// `convindex.distance.negative`, not as a cache miss.
    pub fn distance(&self, from: TypeId, to: TypeId) -> Option<u32> {
        pex_obs::counter!("convindex.distance.lookups", 1);
        let bits = &self.convertible[from.index()];
        let (word, bit) = (to.index() / 64, to.index() % 64);
        if bits.get(word).is_none_or(|w| w & (1u64 << bit) == 0) {
            pex_obs::counter!("convindex.distance.negative", 1);
            return None;
        }
        let list = &self.by_id[from.index()];
        match list.binary_search_by_key(&to, |&(t, _)| t) {
            Ok(i) => {
                let d = list[i].1;
                pex_obs::histogram!("convindex.distance", d);
                Some(d)
            }
            // Unreachable when the bitset and `by_id` agree; kept as a
            // counted fallthrough rather than a panic.
            Err(_) => {
                pex_obs::counter!("convindex.distance.misses", 1);
                None
            }
        }
    }

    /// The cached conversion-target list of `from`, sorted by
    /// `(distance, id)` — identical to
    /// [`TypeTable::conversion_targets_bfs`].
    pub fn targets(&self, from: TypeId) -> &[(TypeId, u32)] {
        pex_obs::counter!("convindex.targets.lookups", 1);
        &self.targets[from.index()]
    }

    /// Number of types covered (the table length at build time).
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Whether the index covers no types (never true for a real table).
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use crate::{NamespaceId, PrimKind, TypeTable};

    /// Diamond: D -> B -> A, D -> C -> A, interfaces on two corners.
    fn diamond() -> TypeTable {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let a = t.declare_class(ns, "A").unwrap();
        let b = t.declare_class(ns, "B").unwrap();
        let c = t.declare_interface(ns, "C").unwrap();
        let d = t.declare_class(ns, "D").unwrap();
        t.set_base(b, a).unwrap();
        t.set_base(d, b).unwrap();
        t.add_interface_impl(d, c).unwrap();
        t
    }

    #[test]
    fn index_matches_bfs_oracle_on_all_pairs() {
        let t = diamond();
        let index = t.conversion_index();
        for from in t.iter() {
            assert_eq!(
                index.targets(from),
                t.conversion_targets_bfs(from).as_slice(),
                "target list mismatch for {from:?}"
            );
            for to in t.iter() {
                assert_eq!(
                    index.distance(from, to),
                    t.type_distance_bfs(from, to),
                    "distance mismatch for {from:?} -> {to:?}"
                );
            }
        }
    }

    /// The negative-answer bitset must partition pairs exactly like the
    /// target lists: `distance` is `Some` iff `to` appears in
    /// `targets(from)`.
    #[test]
    fn negative_memo_agrees_with_target_lists() {
        let t = diamond();
        let index = t.conversion_index();
        for from in t.iter() {
            for to in t.iter() {
                let in_targets = index.targets(from).iter().any(|&(u, _)| u == to);
                assert_eq!(
                    index.distance(from, to).is_some(),
                    in_targets,
                    "bitset and target list disagree for {from:?} -> {to:?}"
                );
            }
        }
    }

    #[test]
    fn index_covers_primitive_widenings() {
        let t = TypeTable::new();
        let index = t.conversion_index();
        assert_eq!(index.distance(t.int_ty(), t.double_ty()), Some(1));
        assert_eq!(index.distance(t.double_ty(), t.int_ty()), None);
        assert_eq!(index.distance(t.int_ty(), t.object()), Some(1));
        assert_eq!(index.distance(t.void_ty(), t.object()), None);
        assert_eq!(index.targets(t.void_ty()), &[(t.void_ty(), 0)]);
        assert!(!index.is_empty());
        assert_eq!(index.len(), t.len());
    }

    #[test]
    fn mutators_invalidate_the_cache() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let a = t.declare_class(ns, "A").unwrap();
        let b = t.declare_class(ns, "B").unwrap();
        // Prime the cache, then change the hierarchy.
        assert_eq!(t.type_distance(b, a), None);
        t.set_base(b, a).unwrap();
        assert_eq!(t.type_distance(b, a), Some(1));
        // New types appear in the rebuilt index.
        let c = t.declare_class(ns, "C").unwrap();
        assert_eq!(t.type_distance(c, t.object()), Some(1));
        // Interface edges invalidate too.
        let i = t.declare_interface(ns, "I").unwrap();
        assert_eq!(t.type_distance(a, i), None);
        t.add_interface_impl(a, i).unwrap();
        assert_eq!(t.type_distance(a, i), Some(1));
        assert_eq!(t.type_distance(b, i), Some(2));
    }

    #[test]
    fn cache_survives_clone() {
        let mut t = TypeTable::new();
        let ns = NamespaceId::GLOBAL;
        let a = t.declare_class(ns, "A").unwrap();
        let _ = t.conversion_index();
        let mut copy = t.clone();
        let b = copy.declare_class(ns, "B").unwrap();
        copy.set_base(b, a).unwrap();
        assert_eq!(copy.type_distance(b, a), Some(1));
        assert_eq!(t.type_distance(a, t.object()), Some(1));
        assert_eq!(PrimKind::ALL.len(), 14);
    }
}
