//! Error type for type-table construction.

use std::error::Error;
use std::fmt;

/// Result alias for fallible [`crate::TypeTable`] operations.
pub type TypeResult<T> = Result<T, TypeError>;

/// Errors raised while constructing or mutating a [`crate::TypeTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A type with the same name already exists in the namespace.
    DuplicateType {
        /// The clashing simple name.
        name: String,
    },
    /// Setting this base class would create an inheritance cycle.
    InheritanceCycle {
        /// Simple name of the type whose base was being set.
        name: String,
    },
    /// The operation requires a class but the id names something else.
    NotAClass {
        /// Simple name of the offending type.
        name: String,
    },
    /// The operation requires an interface but the id names something else.
    NotAnInterface {
        /// Simple name of the offending type.
        name: String,
    },
    /// A base was requested for a type that cannot have one (e.g. `Object`).
    BaseNotAllowed {
        /// Simple name of the offending type.
        name: String,
    },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::DuplicateType { name } => {
                write!(f, "type `{name}` is already declared in this namespace")
            }
            TypeError::InheritanceCycle { name } => {
                write!(
                    f,
                    "setting this base for `{name}` would create an inheritance cycle"
                )
            }
            TypeError::NotAClass { name } => write!(f, "`{name}` is not a class"),
            TypeError::NotAnInterface { name } => write!(f, "`{name}` is not an interface"),
            TypeError::BaseNotAllowed { name } => {
                write!(f, "`{name}` cannot be given a base class")
            }
        }
    }
}

impl Error for TypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_prose() {
        let e = TypeError::DuplicateType { name: "Foo".into() };
        let msg = e.to_string();
        assert!(msg.contains("Foo"));
        assert!(!msg.ends_with('.'));
    }
}
