//! Dependency-free binary wire primitives for the persistent snapshot
//! format (`pex-snapshot/1`).
//!
//! Every integer is little-endian and fixed-width; strings are
//! length-prefixed UTF-8. [`Reader`] is fully bounds-checked: every read
//! that would run past the end of the buffer, every id that exceeds its
//! declared arena bound, and every length that could not possibly fit in
//! the remaining bytes yields a [`WireError`] with a human-readable
//! message — never a panic. This is what lets the daemon load
//! freshly-deserialized indexes while staying `forbid(unsafe_code)` and
//! panic-free on truncated or corrupted files.
//!
//! The primitives live in `pex-types` (the workspace's dependency root) so
//! every layer — model, engine, serve — can implement its own section
//! codec next to the private fields it serializes.

use std::fmt;

/// Error produced by a failed snapshot decode.
///
/// Always a clean, human-readable description of what was being decoded
/// and why it was rejected; callers surface it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    msg: String,
}

impl WireError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        WireError { msg: msg.into() }
    }

    /// Wraps this error with an outer context, e.g. a section name.
    pub fn context(self, ctx: &str) -> Self {
        WireError {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for WireError {}

/// Result alias for snapshot encode/decode operations.
pub type WireResult<T> = Result<T, WireError>;

/// FNV-1a 64-bit hash, used as the snapshot payload checksum.
///
/// Not cryptographic — it guards against truncation and bit rot, not
/// adversaries (the structural validation in the decoders handles
/// malformed input regardless).
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append-only little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a collection length as `u32`.
    ///
    /// # Panics
    ///
    /// Panics if `v` exceeds `u32::MAX` — impossible for in-memory arenas
    /// whose ids are themselves `u32`.
    pub fn put_len(&mut self, v: usize) {
        self.put_u32(u32::try_from(v).expect("collection length fits u32"));
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian byte reader over a borrowed buffer.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over the whole buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Fails unless every byte has been consumed — catches trailing
    /// garbage that bounds checks alone would ignore.
    pub fn expect_end(&self, what: &str) -> WireResult<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError::new(format!(
                "{what}: {} trailing bytes after the last field",
                self.remaining()
            )))
        }
    }

    /// Consumes exactly `n` raw bytes.
    pub fn take(&mut self, n: usize, what: &str) -> WireResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(WireError::new(format!(
                "{what}: needs {n} bytes but only {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &str) -> WireResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a bool encoded as one byte; rejects anything but 0 or 1.
    pub fn get_bool(&mut self, what: &str) -> WireResult<bool> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(WireError::new(format!("{what}: invalid bool byte {b}"))),
        }
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &str) -> WireResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> WireResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self, what: &str) -> WireResult<i64> {
        Ok(self.get_u64(what)? as i64)
    }

    /// Reads a collection length written by [`Writer::put_len`].
    ///
    /// Rejects lengths that could not possibly fit in the remaining bytes
    /// (every element occupies at least one byte), so a corrupted length
    /// cannot trigger a pathological pre-allocation.
    pub fn get_len(&mut self, what: &str) -> WireResult<usize> {
        let n = self.get_u32(what)? as usize;
        if n > self.remaining() {
            return Err(WireError::new(format!(
                "{what}: declared length {n} exceeds the {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }

    /// Reads a `u32` id and bounds-checks it against `bound`.
    pub fn get_id(&mut self, bound: usize, what: &str) -> WireResult<usize> {
        let v = self.get_u32(what)? as usize;
        if v >= bound {
            return Err(WireError::new(format!(
                "{what}: id {v} out of range (arena holds {bound})"
            )));
        }
        Ok(v)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> WireResult<String> {
        let n = self.get_len(what)?;
        let bytes = self.take(n, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WireError::new(format!("{what}: string is not valid UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xdead_beef);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_str("héllo");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert!(r.get_bool("b").unwrap());
        assert_eq!(r.get_u32("c").unwrap(), 0xdead_beef);
        assert_eq!(r.get_u64("d").unwrap(), u64::MAX);
        assert_eq!(r.get_i64("e").unwrap(), -42);
        assert_eq!(r.get_str("f").unwrap(), "héllo");
        r.expect_end("tail").unwrap();
    }

    #[test]
    fn truncated_reads_fail_cleanly() {
        let mut w = Writer::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..3]);
        let err = r.get_u64("field").unwrap_err();
        assert!(err.to_string().contains("field"), "{err}");
    }

    #[test]
    fn bogus_lengths_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        let bytes = w.into_bytes();
        let err = Reader::new(&bytes).get_len("list").unwrap_err();
        assert!(err.to_string().contains("exceeds"), "{err}");
    }

    #[test]
    fn ids_are_bounds_checked() {
        let mut w = Writer::new();
        w.put_u32(10);
        let bytes = w.into_bytes();
        let err = Reader::new(&bytes).get_id(10, "type id").unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_id(11, "type id").unwrap(), 10);
    }

    #[test]
    fn invalid_bool_and_utf8_rejected() {
        let mut r = Reader::new(&[2u8]);
        assert!(r.get_bool("flag").is_err());
        let mut w = Writer::new();
        w.put_len(2);
        w.put_bytes(&[0xff, 0xfe]);
        let bytes = w.into_bytes();
        assert!(Reader::new(&bytes).get_str("name").is_err());
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"pex");
        assert_eq!(a, checksum(b"pex"));
        assert_ne!(a, checksum(b"pey"));
        assert_ne!(checksum(b""), 0);
    }
}
