//! Built-in primitive types and the implicit numeric widening relation.
//!
//! The paper extends type distance "to consider primitive types": two
//! primitives related by an implicit widening conversion are at distance 1.
//! The widening relation below mirrors C#'s implicit numeric conversions
//! (ECMA-334 §10.2.3), which is the universe the paper evaluated on.

/// The built-in primitive kinds of the modelled language.
///
/// `String` is included because the paper's ranking function treats `string`
/// as a primitive ("primitive types, including string, are ignored" by the
/// common-namespace term), even though at the CLR level it is a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrimKind {
    /// `bool`
    Bool,
    /// `char`
    Char,
    /// `sbyte` (8-bit signed)
    SByte,
    /// `byte` (8-bit unsigned)
    Byte,
    /// `short` (16-bit signed)
    Short,
    /// `ushort` (16-bit unsigned)
    UShort,
    /// `int` (32-bit signed)
    Int,
    /// `uint` (32-bit unsigned)
    UInt,
    /// `long` (64-bit signed)
    Long,
    /// `ulong` (64-bit unsigned)
    ULong,
    /// `float` (32-bit IEEE)
    Float,
    /// `double` (64-bit IEEE)
    Double,
    /// `decimal` (128-bit decimal)
    Decimal,
    /// `string`
    String,
}

impl PrimKind {
    /// All primitive kinds, in declaration order.
    pub const ALL: [PrimKind; 14] = [
        PrimKind::Bool,
        PrimKind::Char,
        PrimKind::SByte,
        PrimKind::Byte,
        PrimKind::Short,
        PrimKind::UShort,
        PrimKind::Int,
        PrimKind::UInt,
        PrimKind::Long,
        PrimKind::ULong,
        PrimKind::Float,
        PrimKind::Double,
        PrimKind::Decimal,
        PrimKind::String,
    ];

    /// The C# keyword naming this primitive.
    pub fn keyword(self) -> &'static str {
        match self {
            PrimKind::Bool => "bool",
            PrimKind::Char => "char",
            PrimKind::SByte => "sbyte",
            PrimKind::Byte => "byte",
            PrimKind::Short => "short",
            PrimKind::UShort => "ushort",
            PrimKind::Int => "int",
            PrimKind::UInt => "uint",
            PrimKind::Long => "long",
            PrimKind::ULong => "ulong",
            PrimKind::Float => "float",
            PrimKind::Double => "double",
            PrimKind::Decimal => "decimal",
            PrimKind::String => "string",
        }
    }

    /// Parses a C# primitive keyword.
    pub fn from_keyword(kw: &str) -> Option<PrimKind> {
        PrimKind::ALL.iter().copied().find(|p| p.keyword() == kw)
    }

    /// Whether the kind is numeric (participates in widening and in the
    /// relational operators `<`, `<=`, `>`, `>=`).
    pub fn is_numeric(self) -> bool {
        !matches!(self, PrimKind::Bool | PrimKind::String)
    }

    /// Whether values of this kind are ordered by the relational operators.
    ///
    /// Numerics and `char` are; `bool` and `string` are not (C# defines no
    /// `<` on either).
    pub fn is_ordered(self) -> bool {
        self.is_numeric()
    }

    /// Whether there is an *implicit* conversion from `self` to `to`
    /// (identity excluded), per C#'s implicit numeric conversion table.
    pub fn widens_to(self, to: PrimKind) -> bool {
        use PrimKind::*;
        if self == to {
            return false;
        }
        let targets: &[PrimKind] = match self {
            SByte => &[Short, Int, Long, Float, Double, Decimal],
            Byte => &[
                Short, UShort, Int, UInt, Long, ULong, Float, Double, Decimal,
            ],
            Short => &[Int, Long, Float, Double, Decimal],
            UShort => &[Int, UInt, Long, ULong, Float, Double, Decimal],
            Int => &[Long, Float, Double, Decimal],
            UInt => &[Long, ULong, Float, Double, Decimal],
            Long => &[Float, Double, Decimal],
            ULong => &[Float, Double, Decimal],
            Char => &[UShort, Int, UInt, Long, ULong, Float, Double, Decimal],
            Float => &[Double],
            Bool | Double | Decimal | String => &[],
        };
        targets.contains(&to)
    }

    /// Whether `self` and `other` share an ordering, i.e. one implicitly
    /// converts to the other (or they are equal) and both are ordered.
    pub fn comparable_with(self, other: PrimKind) -> bool {
        if !self.is_ordered() || !other.is_ordered() {
            return false;
        }
        self == other || self.widens_to(other) || other.widens_to(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_round_trips() {
        for p in PrimKind::ALL {
            assert_eq!(PrimKind::from_keyword(p.keyword()), Some(p));
        }
        assert_eq!(PrimKind::from_keyword("object"), None);
    }

    #[test]
    fn widening_matches_csharp_table() {
        use PrimKind::*;
        assert!(Int.widens_to(Long));
        assert!(Int.widens_to(Double));
        assert!(!Int.widens_to(UInt));
        assert!(!Long.widens_to(Int));
        assert!(Char.widens_to(Int));
        assert!(!Int.widens_to(Char));
        assert!(Float.widens_to(Double));
        assert!(!Double.widens_to(Float));
        assert!(!Bool.widens_to(Int));
        assert!(!String.widens_to(Int));
        assert!(!Int.widens_to(Int));
    }

    #[test]
    fn widening_is_antisymmetric() {
        for a in PrimKind::ALL {
            for b in PrimKind::ALL {
                assert!(
                    !(a.widens_to(b) && b.widens_to(a)),
                    "widening must be antisymmetric: {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn widening_is_transitive() {
        for a in PrimKind::ALL {
            for b in PrimKind::ALL {
                for c in PrimKind::ALL {
                    if a.widens_to(b) && b.widens_to(c) {
                        assert!(
                            a.widens_to(c),
                            "{a:?} -> {b:?} -> {c:?} must imply {a:?} -> {c:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn comparability() {
        use PrimKind::*;
        assert!(Int.comparable_with(Double));
        assert!(Double.comparable_with(Int));
        assert!(Int.comparable_with(Int));
        assert!(!Bool.comparable_with(Bool));
        assert!(!String.comparable_with(String));
        assert!(!Int.comparable_with(Bool));
        assert!(Char.comparable_with(Int));
    }
}
