//! Interned namespace paths and the common-prefix computation used by the
//! ranking function's *common namespace* term (paper Section 4.1).

use std::collections::HashMap;
use std::fmt;

use crate::wire::{Reader, WireError, WireResult, Writer};
use crate::NamespaceId;

/// Arena of interned namespace paths.
///
/// A namespace is a dotted path such as `System.Collections`, stored as a
/// list of segments. The empty path is the global namespace and is always
/// present with id [`NamespaceId::GLOBAL`].
///
/// The paper's ranking function treats namespaces as lists of strings and
/// scores method calls by the length of the common prefix of the namespaces
/// of all participating non-primitive types; [`Namespaces::common_prefix_len`]
/// implements that computation.
#[derive(Debug, Clone, Default)]
pub struct Namespaces {
    paths: Vec<Vec<String>>,
    by_path: HashMap<Vec<String>, NamespaceId>,
}

impl Namespaces {
    /// Creates an arena containing only the global namespace.
    pub fn new() -> Self {
        let mut ns = Namespaces {
            paths: Vec::new(),
            by_path: HashMap::new(),
        };
        let id = ns.intern(&[] as &[&str]);
        debug_assert_eq!(id, NamespaceId::GLOBAL);
        ns
    }

    /// Interns a namespace path given as segments, returning its id.
    /// Re-interning an existing path returns the same id.
    pub fn intern<S: AsRef<str>>(&mut self, segments: &[S]) -> NamespaceId {
        let key: Vec<String> = segments.iter().map(|s| s.as_ref().to_owned()).collect();
        if let Some(&id) = self.by_path.get(&key) {
            return id;
        }
        let id = NamespaceId(self.paths.len() as u32);
        self.paths.push(key.clone());
        self.by_path.insert(key, id);
        id
    }

    /// Interns a dotted path such as `"System.Collections"`. The empty string
    /// interns the global namespace.
    pub fn intern_dotted(&mut self, dotted: &str) -> NamespaceId {
        if dotted.is_empty() {
            return NamespaceId::GLOBAL;
        }
        let segs: Vec<&str> = dotted.split('.').collect();
        self.intern(&segs)
    }

    /// Looks up a previously interned dotted path without interning it.
    pub fn lookup_dotted(&self, dotted: &str) -> Option<NamespaceId> {
        let key: Vec<String> = if dotted.is_empty() {
            Vec::new()
        } else {
            dotted.split('.').map(str::to_owned).collect()
        };
        self.by_path.get(&key).copied()
    }

    /// The segments of a namespace path.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this arena.
    pub fn segments(&self, id: NamespaceId) -> &[String] {
        &self.paths[id.index()]
    }

    /// Renders a namespace as a dotted string (empty for the global one).
    pub fn dotted(&self, id: NamespaceId) -> String {
        self.segments(id).join(".")
    }

    /// Depth (number of segments) of a namespace path.
    pub fn depth(&self, id: NamespaceId) -> usize {
        self.segments(id).len()
    }

    /// Number of interned namespaces, including the global one.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether only the global namespace exists.
    pub fn is_empty(&self) -> bool {
        self.paths.len() <= 1
    }

    /// Iterates over all interned namespace ids.
    pub fn iter(&self) -> impl Iterator<Item = NamespaceId> + '_ {
        (0..self.paths.len() as u32).map(NamespaceId)
    }

    /// Length of the longest common prefix of the paths of two namespaces.
    pub fn common_prefix_len2(&self, a: NamespaceId, b: NamespaceId) -> usize {
        let (pa, pb) = (self.segments(a), self.segments(b));
        pa.iter().zip(pb.iter()).take_while(|(x, y)| x == y).count()
    }

    /// Length of the longest common prefix over a set of namespaces.
    ///
    /// Returns the depth of the sole namespace when the iterator yields one
    /// element, and `0` when it yields none.
    pub fn common_prefix_len<I>(&self, ids: I) -> usize
    where
        I: IntoIterator<Item = NamespaceId>,
    {
        let mut it = ids.into_iter();
        let first = match it.next() {
            Some(id) => id,
            None => return 0,
        };
        let mut len = self.depth(first);
        for id in it {
            len = len.min(self.common_prefix_len2(first, id));
            if len == 0 {
                break;
            }
        }
        len
    }

    /// Serializes the arena for the persistent snapshot: paths in id
    /// order. The lookup map is rebuilt on decode.
    pub fn encode(&self, w: &mut Writer) {
        w.put_len(self.paths.len());
        for path in &self.paths {
            w.put_len(path.len());
            for seg in path {
                w.put_str(seg);
            }
        }
    }

    /// Decodes an arena written by [`Namespaces::encode`], rebuilding the
    /// path lookup map and validating that id 0 is the global namespace
    /// and that no path appears twice.
    pub fn decode(r: &mut Reader<'_>) -> WireResult<Self> {
        let count = r.get_len("namespace count")?;
        if count == 0 {
            return Err(WireError::new(
                "namespace arena is empty (the global namespace must exist)",
            ));
        }
        let mut ns = Namespaces {
            paths: Vec::with_capacity(count),
            by_path: HashMap::with_capacity(count),
        };
        for i in 0..count {
            let segs = r.get_len("namespace segment count")?;
            let mut path = Vec::with_capacity(segs);
            for _ in 0..segs {
                path.push(r.get_str("namespace segment")?);
            }
            if i == 0 && !path.is_empty() {
                return Err(WireError::new(
                    "namespace 0 must be the global (empty) namespace",
                ));
            }
            if ns
                .by_path
                .insert(path.clone(), NamespaceId(i as u32))
                .is_some()
            {
                return Err(WireError::new(format!(
                    "duplicate namespace path '{}'",
                    path.join(".")
                )));
            }
            ns.paths.push(path);
        }
        Ok(ns)
    }

    /// Parent namespace (path with the last segment removed), if any is
    /// interned. The global namespace has no parent.
    pub fn parent(&self, id: NamespaceId) -> Option<NamespaceId> {
        let segs = self.segments(id);
        if segs.is_empty() {
            return None;
        }
        self.by_path.get(&segs[..segs.len() - 1]).copied()
    }
}

impl fmt::Display for Namespaces {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} namespaces", self.paths.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_namespace_is_id_zero() {
        let ns = Namespaces::new();
        assert_eq!(ns.dotted(NamespaceId::GLOBAL), "");
        assert_eq!(ns.depth(NamespaceId::GLOBAL), 0);
    }

    #[test]
    fn interning_is_idempotent() {
        let mut ns = Namespaces::new();
        let a = ns.intern(&["System", "Collections"]);
        let b = ns.intern_dotted("System.Collections");
        assert_eq!(a, b);
        assert_eq!(ns.dotted(a), "System.Collections");
    }

    #[test]
    fn common_prefix_pairs() {
        let mut ns = Namespaces::new();
        let sc = ns.intern_dotted("System.Collections");
        let sg = ns.intern_dotted("System.Collections.Generic");
        let sd = ns.intern_dotted("System.Drawing");
        let pd = ns.intern_dotted("PaintDotNet");
        assert_eq!(ns.common_prefix_len2(sc, sg), 2);
        assert_eq!(ns.common_prefix_len2(sc, sd), 1);
        assert_eq!(ns.common_prefix_len2(sc, pd), 0);
        assert_eq!(ns.common_prefix_len2(sc, sc), 2);
    }

    #[test]
    fn common_prefix_sets() {
        let mut ns = Namespaces::new();
        let sg = ns.intern_dotted("System.Collections.Generic");
        let sd = ns.intern_dotted("System.Drawing");
        assert_eq!(ns.common_prefix_len([sg, sd]), 1);
        assert_eq!(ns.common_prefix_len([sg]), 3);
        assert_eq!(ns.common_prefix_len(std::iter::empty()), 0);
        assert_eq!(ns.common_prefix_len([sg, sd, NamespaceId::GLOBAL]), 0);
    }

    #[test]
    fn parent_walks_up() {
        let mut ns = Namespaces::new();
        let sys = ns.intern_dotted("System");
        let sc = ns.intern_dotted("System.Collections");
        assert_eq!(ns.parent(sc), Some(sys));
        assert_eq!(ns.parent(sys), Some(NamespaceId::GLOBAL));
        assert_eq!(ns.parent(NamespaceId::GLOBAL), None);
    }

    #[test]
    fn lookup_does_not_intern() {
        let mut ns = Namespaces::new();
        assert_eq!(ns.lookup_dotted("Nope"), None);
        let id = ns.intern_dotted("Yep");
        assert_eq!(ns.lookup_dotted("Yep"), Some(id));
        assert_eq!(ns.lookup_dotted(""), Some(NamespaceId::GLOBAL));
    }
}
