//! Index-based identifiers for interned types and namespaces.

use std::fmt;

/// Identifier of a type interned in a [`crate::TypeTable`].
///
/// `TypeId`s are small copyable indexes; all information about the type lives
/// in the table that issued the id. Ids from different tables must not be
/// mixed (doing so yields wrong answers or panics, never unsafety).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TypeId(pub(crate) u32);

impl TypeId {
    /// Raw index of this type inside its [`crate::TypeTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `TypeId` from a raw index previously obtained from
    /// [`TypeId::index`]. The caller is responsible for using it only with
    /// the table it came from.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        TypeId(index as u32)
    }
}

impl fmt::Debug for TypeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ty#{}", self.0)
    }
}

/// Identifier of an interned namespace path (see [`crate::Namespaces`]).
///
/// The global (empty) namespace always has id `NamespaceId::GLOBAL`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NamespaceId(pub(crate) u32);

impl NamespaceId {
    /// The root namespace, i.e. the empty path.
    pub const GLOBAL: NamespaceId = NamespaceId(0);

    /// Raw index of this namespace in its [`crate::Namespaces`] arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NamespaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ns#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_id_round_trips_through_index() {
        let id = TypeId(42);
        assert_eq!(TypeId::from_index(id.index()), id);
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", TypeId(7)), "ty#7");
        assert_eq!(format!("{:?}", NamespaceId::GLOBAL), "ns#0");
    }
}
