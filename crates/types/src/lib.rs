//! # pex-types
//!
//! Nominal type-system substrate for the `pex` workspace, a Rust reproduction
//! of *Type-Directed Completion of Partial Expressions* (PLDI 2012).
//!
//! The paper's algorithm runs against a .NET-like type universe: classes with
//! single inheritance, interfaces, value types (structs and enums), and
//! primitives with implicit numeric widening. This crate models exactly that
//! universe and implements the ranking function's primary ingredient, the
//! **type distance** `td(α, β)` of Section 4.1:
//!
//! ```text
//! td(α, β) = undefined   if there is no implicit conversion from α to β
//!          = 0           if α = β
//!          = 1           if α and β are primitives related by implicit widening
//!          = 1 + min over immediate declared supertypes s(α) of td(s(α), β)
//! ```
//!
//! The crate is deliberately independent of the code model: it knows about
//! types, namespaces and conversions, but not about methods or fields.
//!
//! ## Example
//!
//! ```
//! use pex_types::{TypeTable, TypeId};
//!
//! let mut table = TypeTable::new();
//! let ns = table.namespaces_mut().intern(&["Geometry"]);
//! let shape = table.declare_class(ns, "Shape").unwrap();
//! let rect = table.declare_class(ns, "Rectangle").unwrap();
//! table.set_base(rect, shape).unwrap();
//!
//! assert_eq!(table.type_distance(rect, shape), Some(1));
//! assert_eq!(table.type_distance(rect, table.object()), Some(2));
//! assert_eq!(table.type_distance(shape, rect), None); // no downcasts
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convindex;
mod def;
mod distance;
mod error;
mod ids;
mod namespace;
mod primitive;
mod table;
pub mod wire;

pub use convindex::ConversionIndex;
pub use def::{TypeDef, TypeKind};
pub use distance::ComparablePair;
pub use error::{TypeError, TypeResult};
pub use ids::{NamespaceId, TypeId};
pub use namespace::Namespaces;
pub use primitive::PrimKind;
pub use table::{TypeTable, WellKnown};
