//! Type definitions stored in the [`crate::TypeTable`].

use crate::{NamespaceId, PrimKind, TypeId};

/// The kind of a type definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeKind {
    /// A reference type with single inheritance. `base` is `None` only for
    /// `System.Object` itself; every other class implicitly derives `Object`
    /// until [`crate::TypeTable::set_base`] is called.
    Class {
        /// Direct base class, if explicitly set.
        base: Option<TypeId>,
    },
    /// An interface. Its "bases" are the interfaces it extends, stored in
    /// [`TypeDef::interfaces`].
    Interface,
    /// A user-defined value type. Boxes to `Object`.
    Struct,
    /// An enumeration. Boxes to `Object`; comparable with itself.
    Enum,
    /// A built-in primitive.
    Primitive(PrimKind),
    /// The `void` pseudo-type: the return "type" of methods returning
    /// nothing. No conversions to or from it exist.
    Void,
}

/// A single type definition.
///
/// Fields are crate-private behind accessors so the table can maintain
/// hierarchy invariants (acyclicity, interface-only extends lists).
#[derive(Debug, Clone)]
pub struct TypeDef {
    pub(crate) name: String,
    pub(crate) namespace: NamespaceId,
    pub(crate) kind: TypeKind,
    pub(crate) interfaces: Vec<TypeId>,
    pub(crate) comparable: bool,
}

impl TypeDef {
    /// Simple (unqualified) name of the type.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Namespace the type is declared in.
    pub fn namespace(&self) -> NamespaceId {
        self.namespace
    }

    /// The definition kind.
    pub fn kind(&self) -> &TypeKind {
        &self.kind
    }

    /// Interfaces this type declares it implements (for interfaces: extends).
    pub fn interfaces(&self) -> &[TypeId] {
        &self.interfaces
    }

    /// Whether values of this type are ordered by the relational operators
    /// (`<`, `>=`, ...). Numeric primitives and enums are ordered by default;
    /// other types opt in via [`crate::TypeTable::set_comparable`] (the paper's
    /// `DateTime` example).
    pub fn is_comparable(&self) -> bool {
        self.comparable
    }

    /// Whether this is a class (including `Object` and `string`-as-class
    /// tables that choose to model it so).
    pub fn is_class(&self) -> bool {
        matches!(self.kind, TypeKind::Class { .. })
    }

    /// Whether this is an interface.
    pub fn is_interface(&self) -> bool {
        matches!(self.kind, TypeKind::Interface)
    }

    /// Whether this is a built-in primitive (`bool`, the numerics, `string`).
    ///
    /// The ranking function's common-namespace term skips primitive-typed
    /// arguments; this predicate is what it consults.
    pub fn is_primitive(&self) -> bool {
        matches!(self.kind, TypeKind::Primitive(_))
    }

    /// The primitive kind, if this is a primitive.
    pub fn prim_kind(&self) -> Option<PrimKind> {
        match self.kind {
            TypeKind::Primitive(p) => Some(p),
            _ => None,
        }
    }

    /// Whether this is a value type (struct, enum, or non-string primitive).
    pub fn is_value_type(&self) -> bool {
        match self.kind {
            TypeKind::Struct | TypeKind::Enum => true,
            TypeKind::Primitive(p) => p != PrimKind::String,
            _ => false,
        }
    }
}
