//! Hand-written mini corpora reproducing the paper's running examples
//! (Sections 2 and 4.1): a miniature Paint.NET for Figure 2, a miniature
//! DynamicGeometry for Figures 3 and 4, and the Family.Show fragment used
//! to motivate abstract type inference.

use pex_model::minics::compile;
use pex_model::{Context, Database, Local};

/// Mini Paint.NET: the API surface behind Figure 2's result list for the
/// query `?({img, size})`.
pub const PAINT_DOT_NET: &str = r#"
namespace System.Drawing {
    struct Size {
        int Width;
        int Height;
        bool Equals(object other);
    }
}
namespace PaintDotNet {
    class Document {
        int Width;
        int Height;
        void OnDeserialization(object sender);
    }
    class Pair {
        static PaintDotNet.Pair Create(object first, object second);
    }
    class Triple {
        static PaintDotNet.Triple Create(object first, object second, object third);
    }
    class Quadruple {
        static PaintDotNet.Quadruple Create(object a, object b, object c, object d);
    }
    class ObjectUtil {
        static bool ReferenceEquals(object a, object b);
    }
}
namespace PaintDotNet.Functional {
    class Func {
        static object Bind(object f, object arg1, object arg2);
    }
}
namespace PaintDotNet.Actions {
    enum AnchorEdge { TopLeft, Top, TopRight, Left, Middle, Right, BottomLeft, Bottom, BottomRight }
    struct ColorBgra { byte B; byte G; byte R; byte A; }
    class CanvasSizeAction {
        static PaintDotNet.Document ResizeDocument(
            PaintDotNet.Document document,
            System.Drawing.Size newSize,
            PaintDotNet.Actions.AnchorEdge edge,
            PaintDotNet.Actions.ColorBgra background);
    }
}
namespace PaintDotNet.PropertySystem {
    class Property {
        static PaintDotNet.PropertySystem.Property Create(object name, object value, object extra);
    }
    class StaticListChoiceProperty {
        static PaintDotNet.PropertySystem.StaticListChoiceProperty CreateForEnum(
            object enumType, object defaultValue, bool readOnly);
    }
}
namespace PaintDotNet.Client {
    class AppHost {
        static PaintDotNet.Client.AppHost Current;
        PaintDotNet.Document Doc;
        System.Drawing.Size PreferredSize;
        PaintDotNet.Actions.AnchorEdge Edge;
        PaintDotNet.Actions.ColorBgra Fill;
    }
    class DocumentUtils {
        static PaintDotNet.Document Normalize(PaintDotNet.Document d) { return d; }
        static System.Drawing.Size Clamp(System.Drawing.Size s) { return s; }
    }
    class Startup {
        // Teaches the abstract-type solver which values flow into
        // ResizeDocument: the AppHost fields and the utility slots end up
        // in the same abstract classes as ResizeDocument's parameters.
        static void Run(PaintDotNet.Client.AppHost host) {
            var doc = host.Doc;
            var size = host.PreferredSize;
            PaintDotNet.Actions.CanvasSizeAction.ResizeDocument(
                PaintDotNet.Client.DocumentUtils.Normalize(doc),
                PaintDotNet.Client.DocumentUtils.Clamp(size),
                host.Edge,
                host.Fill);
        }
    }
    class Scratch {
        // The Figure 2 query site: `img` and `size` are locals initialised
        // from the host, so their abstract types match ResizeDocument's
        // parameters even though the query expression itself does not
        // exist yet.
        static void Example() {
            var img = PaintDotNet.Client.AppHost.Current.Doc;
            var size = PaintDotNet.Client.AppHost.Current.PreferredSize;
        }
    }
}
"#;

/// Mini DynamicGeometry: the context of Figures 3 and 4 (`EllipseArc` with
/// `Distance(point, ?)` and `Segment` with `point.?*m >= this.?*m`).
pub const DYNAMIC_GEOMETRY: &str = r#"
namespace DynamicGeometry {
    [Comparable] struct DateTime { }
    struct Point {
        double X;
        double Y;
    }
    class Math {
        static DynamicGeometry.Point InfinitePoint;
        static double Distance(DynamicGeometry.Point a, DynamicGeometry.Point b);
    }
    class Glyph {
        DynamicGeometry.Point RenderTransformOrigin;
    }
    class ShapeStyle {
        DynamicGeometry.Glyph GetSampleGlyph();
    }
    class Shape {
        DynamicGeometry.Point RenderTransformOrigin;
    }
    class ArcShape {
        DynamicGeometry.Point Point;
    }
    class Figure {
        DynamicGeometry.Point StartPoint;
    }
    class EllipseArc {
        DynamicGeometry.Point BeginLocation;
        DynamicGeometry.Point Center;
        DynamicGeometry.Point EndLocation;
        DynamicGeometry.Shape shape;
        DynamicGeometry.ArcShape ArcShape;
        DynamicGeometry.Figure Figure;
        DynamicGeometry.Shape Shape { get; }
    }
    class Segment {
        DynamicGeometry.Point P1;
        DynamicGeometry.Point P2;
        DynamicGeometry.Point Midpoint;
        double Length;
        DynamicGeometry.Point FirstValidValue();
    }
}
"#;

/// The Family.Show fragment of Section 4.1: `Path.Combine` chains whose
/// first arguments share a "path-like" abstract type distinct from the
/// "name-like" second arguments.
pub const FAMILY_SHOW: &str = r#"
namespace Sys {
    class Path {
        static string Combine(string path1, string path2);
    }
    class Directory {
        static bool Exists(string path);
        static void CreateDirectory(string path);
    }
    class Environment {
        static string GetFolderPath(Sys.Folder folder);
    }
    enum Folder { MyDocuments, Desktop, ProgramFiles }
    class App { static string ApplicationFolderName; }
    class Const { static string DataFileName; }
}
namespace FamilyShow {
    class Store {
        string GetDataPath() {
            var appLocation = Sys.Path.Combine(
                Sys.Environment.GetFolderPath(Sys.Folder.MyDocuments),
                Sys.App.ApplicationFolderName);
            Sys.Directory.Exists(appLocation);
            Sys.Directory.CreateDirectory(appLocation);
            return Sys.Path.Combine(appLocation, Sys.Const.DataFileName);
        }
    }
}
"#;

/// Compiles the mini Paint.NET corpus.
///
/// # Panics
///
/// Never — the source is a compile-tested constant.
pub fn paint_dot_net() -> Database {
    compile(PAINT_DOT_NET).expect("builtin corpus compiles")
}

/// Compiles the mini DynamicGeometry corpus.
pub fn dynamic_geometry() -> Database {
    compile(DYNAMIC_GEOMETRY).expect("builtin corpus compiles")
}

/// Compiles the Family.Show corpus.
pub fn family_show() -> Database {
    compile(FAMILY_SHOW).expect("builtin corpus compiles")
}

/// The context of the paper's Figure 2: locals `img` (a `Document`) and
/// `size` (a `Size`), outside any type. Use [`paint_query_site`] when the
/// abstract-type solver should see the `Shrink` method's body.
pub fn paint_context(db: &Database) -> Context {
    let doc = db
        .types()
        .lookup_qualified("PaintDotNet.Document")
        .expect("Document");
    let size = db
        .types()
        .lookup_qualified("System.Drawing.Size")
        .expect("Size");
    Context::with_locals(
        None,
        vec![
            Local {
                name: "img".into(),
                ty: doc,
            },
            Local {
                name: "size".into(),
                ty: size,
            },
        ],
    )
}

/// The Figure 2 query site inside `Scratch.Example`: the context at the end
/// of its body, where `img` and `size` are live locals whose abstract types
/// the solver has learned from the rest of the program. Returns the context
/// and the enclosing method (for abstract-type solvers).
pub fn paint_query_site(db: &Database) -> (Context, pex_model::MethodId) {
    let example = db
        .methods()
        .find(|m| db.method(*m).name() == "Example")
        .expect("Scratch.Example exists in the builtin corpus");
    let body = db.method(example).body().expect("Example has a body");
    let ctx = Context::at_statement(db, example, body, body.stmts.len());
    (ctx, example)
}

/// The context of Figure 3: inside `EllipseArc`, with locals `point` (the
/// only local `Point`) and `shapeStyle`.
pub fn geometry_fig3_context(db: &Database) -> Context {
    let arc = db
        .types()
        .lookup_qualified("DynamicGeometry.EllipseArc")
        .expect("EllipseArc");
    let point = db
        .types()
        .lookup_qualified("DynamicGeometry.Point")
        .expect("Point");
    let style = db
        .types()
        .lookup_qualified("DynamicGeometry.ShapeStyle")
        .expect("ShapeStyle");
    Context::instance(
        arc,
        vec![
            Local {
                name: "point".into(),
                ty: point,
            },
            Local {
                name: "shapeStyle".into(),
                ty: style,
            },
        ],
    )
}

/// The context of Figure 4: inside `Segment`, with local `point`.
pub fn geometry_fig4_context(db: &Database) -> Context {
    let seg = db
        .types()
        .lookup_qualified("DynamicGeometry.Segment")
        .expect("Segment");
    let point = db
        .types()
        .lookup_qualified("DynamicGeometry.Point")
        .expect("Point");
    Context::instance(
        seg,
        vec![Local {
            name: "point".into(),
            ty: point,
        }],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_corpora_compile() {
        assert!(paint_dot_net().method_count() > 5);
        assert!(dynamic_geometry().field_count() > 10);
        assert!(family_show().method_count() >= 5);
    }

    #[test]
    fn contexts_resolve() {
        let db = paint_dot_net();
        let ctx = paint_context(&db);
        assert_eq!(ctx.locals.len(), 2);
        let db = dynamic_geometry();
        assert!(geometry_fig3_context(&db).has_this);
        assert_eq!(geometry_fig4_context(&db).locals.len(), 1);
    }
}
