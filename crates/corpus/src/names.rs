//! Deterministic identifier generation for synthetic corpora.
//!
//! Names are built from fixed word lists so generated code looks like real
//! framework code (`DocumentLayoutManager.ResizeContent(...)`) and so that
//! *shared concept names* (`X`, `Width`, `Name`, ...) recur across types —
//! the signal the ranking function's matching-name and abstract-type terms
//! key on.

use rand::rngs::StdRng;
use rand::Rng;

use pex_types::PrimKind;

/// Nouns used in type and member names.
pub const NOUNS: &[&str] = &[
    "Document",
    "Layer",
    "Canvas",
    "Brush",
    "Shape",
    "Stream",
    "Buffer",
    "Node",
    "Element",
    "Entry",
    "Record",
    "Track",
    "Album",
    "Playlist",
    "Installer",
    "Package",
    "Bundle",
    "Panel",
    "Widget",
    "Window",
    "Dialog",
    "Menu",
    "Command",
    "Action",
    "Event",
    "Handler",
    "Filter",
    "Query",
    "Index",
    "Cache",
    "Session",
    "Context",
    "Manager",
    "Provider",
    "Factory",
    "Builder",
    "Reader",
    "Writer",
    "Parser",
    "Scanner",
    "Printer",
    "Renderer",
    "Encoder",
    "Decoder",
    "Palette",
    "Gradient",
    "Texture",
    "Sprite",
    "Glyph",
    "Segment",
    "Region",
    "Margin",
];

/// Verbs used in method names.
pub const VERBS: &[&str] = &[
    "Get",
    "Set",
    "Create",
    "Make",
    "Build",
    "Load",
    "Save",
    "Open",
    "Close",
    "Read",
    "Write",
    "Parse",
    "Render",
    "Draw",
    "Paint",
    "Resize",
    "Scale",
    "Rotate",
    "Translate",
    "Merge",
    "Split",
    "Append",
    "Insert",
    "Remove",
    "Find",
    "Lookup",
    "Resolve",
    "Attach",
    "Detach",
    "Register",
    "Apply",
    "Commit",
    "Reset",
    "Update",
    "Refresh",
    "Validate",
    "Compute",
];

/// Adjective-ish prefixes for namespaces and subsystems.
pub const AREAS: &[&str] = &[
    "Core",
    "Actions",
    "Effects",
    "Rendering",
    "Layout",
    "Data",
    "Media",
    "Audio",
    "Video",
    "Text",
    "Input",
    "Network",
    "Storage",
    "Config",
    "Tools",
    "Utils",
    "Collections",
    "Diagnostics",
    "Security",
    "Interop",
    "Drawing",
    "Controls",
    "Widgets",
    "Services",
];

/// A shared concept: a member name that recurs across many types with a
/// consistent primitive type (giving the matching-name term real signal).
#[derive(Debug, Clone, Copy)]
pub struct Concept {
    /// Member name.
    pub name: &'static str,
    /// The primitive type every occurrence uses.
    pub prim: PrimKind,
}

/// The shared concept pool.
pub const CONCEPTS: &[Concept] = &[
    Concept {
        name: "X",
        prim: PrimKind::Double,
    },
    Concept {
        name: "Y",
        prim: PrimKind::Double,
    },
    Concept {
        name: "Width",
        prim: PrimKind::Int,
    },
    Concept {
        name: "Height",
        prim: PrimKind::Int,
    },
    Concept {
        name: "Length",
        prim: PrimKind::Double,
    },
    Concept {
        name: "Count",
        prim: PrimKind::Int,
    },
    Concept {
        name: "Name",
        prim: PrimKind::String,
    },
    Concept {
        name: "Title",
        prim: PrimKind::String,
    },
    Concept {
        name: "Id",
        prim: PrimKind::Int,
    },
    Concept {
        name: "Value",
        prim: PrimKind::Double,
    },
    Concept {
        name: "Index",
        prim: PrimKind::Int,
    },
    Concept {
        name: "Opacity",
        prim: PrimKind::Float,
    },
    Concept {
        name: "Duration",
        prim: PrimKind::Double,
    },
    Concept {
        name: "Size",
        prim: PrimKind::Long,
    },
];

/// Deterministic, collision-avoiding name factory.
#[derive(Debug, Default)]
pub struct NameFactory {
    used: std::collections::HashSet<String>,
}

impl NameFactory {
    /// Creates an empty factory.
    pub fn new() -> Self {
        NameFactory::default()
    }

    /// A fresh UpperCamelCase type name.
    pub fn type_name(&mut self, rng: &mut StdRng) -> String {
        loop {
            let a = NOUNS[rng.gen_range(0..NOUNS.len())];
            let b = NOUNS[rng.gen_range(0..NOUNS.len())];
            let name = if rng.gen_bool(0.45) {
                a.to_string()
            } else {
                format!("{a}{b}")
            };
            if self.used.insert(format!("T:{name}")) {
                return name;
            }
            // Disambiguate with a numeral when the word pool runs dry.
            let name = format!("{a}{b}{}", rng.gen_range(2..99));
            if self.used.insert(format!("T:{name}")) {
                return name;
            }
        }
    }

    /// A method name, unique within the given type.
    pub fn method_name(&mut self, rng: &mut StdRng, owner: &str) -> String {
        loop {
            let v = VERBS[rng.gen_range(0..VERBS.len())];
            let n = NOUNS[rng.gen_range(0..NOUNS.len())];
            let name = format!("{v}{n}");
            if self.used.insert(format!("M:{owner}:{name}")) {
                return name;
            }
            let name = format!("{v}{n}{}", rng.gen_range(2..99));
            if self.used.insert(format!("M:{owner}:{name}")) {
                return name;
            }
        }
    }

    /// A (non-concept) field name, unique within the given type.
    pub fn field_name(&mut self, rng: &mut StdRng, owner: &str) -> String {
        loop {
            let n = NOUNS[rng.gen_range(0..NOUNS.len())];
            let name = if rng.gen_bool(0.7) {
                n.to_string()
            } else {
                format!("{}{n}", NOUNS[rng.gen_range(0..NOUNS.len())])
            };
            if self.used.insert(format!("F:{owner}:{name}")) {
                return name;
            }
            let name = format!("{n}{}", rng.gen_range(2..99));
            if self.used.insert(format!("F:{owner}:{name}")) {
                return name;
            }
        }
    }

    /// Reserves a concept member name on a type; returns `false` if already
    /// present there.
    pub fn reserve_concept(&mut self, owner: &str, concept: &Concept) -> bool {
        self.used.insert(format!("F:{owner}:{}", concept.name))
    }

    /// A camelCase local/parameter name.
    pub fn local_name(rng: &mut StdRng, i: usize) -> String {
        let n = NOUNS[rng.gen_range(0..NOUNS.len())];
        let mut name: String = n.to_owned();
        if let Some(first) = name.get_mut(0..1) {
            let lower = first.to_ascii_lowercase();
            name.replace_range(0..1, &lower);
        }
        format!("{name}{i}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn names_are_unique_and_deterministic() {
        let mut rng1 = StdRng::seed_from_u64(7);
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut f1 = NameFactory::new();
        let mut f2 = NameFactory::new();
        let a: Vec<String> = (0..200).map(|_| f1.type_name(&mut rng1)).collect();
        let b: Vec<String> = (0..200).map(|_| f2.type_name(&mut rng2)).collect();
        assert_eq!(a, b, "same seed, same names");
        let set: std::collections::HashSet<&String> = a.iter().collect();
        assert_eq!(set.len(), a.len(), "no collisions");
    }

    #[test]
    fn member_names_unique_per_owner() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut f = NameFactory::new();
        let m1 = f.method_name(&mut rng, "A");
        // Same name can appear on another type.
        f.used.insert(format!("M:B:{m1}"));
        let fields: Vec<String> = (0..100).map(|_| f.field_name(&mut rng, "A")).collect();
        let set: std::collections::HashSet<&String> = fields.iter().collect();
        assert_eq!(set.len(), fields.len());
    }

    #[test]
    fn concepts_reserve_once() {
        let mut f = NameFactory::new();
        assert!(f.reserve_concept("A", &CONCEPTS[0]));
        assert!(!f.reserve_concept("A", &CONCEPTS[0]));
        assert!(f.reserve_concept("B", &CONCEPTS[0]));
    }

    #[test]
    fn local_names_are_camel_case() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = NameFactory::local_name(&mut rng, 3);
        assert!(n.chars().next().unwrap().is_ascii_lowercase());
        assert!(n.ends_with('3'));
    }
}
