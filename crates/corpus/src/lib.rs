//! # pex-corpus
//!
//! Corpus substrate for the `pex` workspace: the code the evaluation runs
//! over.
//!
//! The paper evaluated on seven mature C# codebases read through CCI. Those
//! binaries are not reproducible here, so this crate provides two
//! substitutes (documented in DESIGN.md):
//!
//! * [`builtin`] — small hand-written corpora in mini-C# that recreate the
//!   paper's worked examples exactly (Figures 2-4 and the Family.Show
//!   abstract-type example);
//! * [`gen`] / [`profiles`] — a deterministic, seeded generator of
//!   framework-shaped projects, with one profile per Table 1 project.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builtin;
pub mod gen;
pub mod names;
pub mod profiles;

pub use gen::{generate, ClientProfile, LibraryProfile};
pub use profiles::{table1_projects, ProjectProfile};
