//! Seeded synthetic project generation.
//!
//! The paper evaluates on seven mature C# codebases. Those binaries are not
//! available here, so this module generates projects with the same *shape*:
//! a framework-like library (namespace trees, class hierarchies, shared
//! concept members, realistic arities and static/instance mix) plus client
//! code whose bodies consist of the paper's statement forms — method calls,
//! assignments ending in field lookups, comparisons of corresponding
//! fields — from which the experiment harness extracts queries exactly as
//! the paper did. Everything is deterministic under a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pex_model::{Body, CmpOp, Context, Database, Expr, LocalId, MethodId, Param, Stmt, Visibility};
use pex_types::{PrimKind, TypeId};

use crate::names::{Concept, NameFactory, AREAS, CONCEPTS};

/// Shape knobs for the library half of a project.
#[derive(Debug, Clone)]
pub struct LibraryProfile {
    /// Root namespace (e.g. `"PaintDotNet"`).
    pub root: &'static str,
    /// Number of namespaces under the root (including the root itself).
    pub namespaces: usize,
    /// Number of library types.
    pub types: usize,
    /// Fraction of types that are interfaces.
    pub interface_frac: f64,
    /// Fraction of types that are structs.
    pub struct_frac: f64,
    /// Fraction of types that are enums.
    pub enum_frac: f64,
    /// Probability a class gets a base class.
    pub subclass_frac: f64,
    /// Range of instance/static fields per class or struct.
    pub fields_per_type: (usize, usize),
    /// Probability a field uses a shared concept name and type.
    pub concept_field_frac: f64,
    /// Probability a field is declared as a property.
    pub property_frac: f64,
    /// Probability a field is static (a global).
    pub static_field_frac: f64,
    /// Range of methods per class or struct.
    pub methods_per_type: (usize, usize),
    /// Probability a method is static.
    pub static_method_frac: f64,
    /// Probability a method has zero parameters (getter-style).
    pub zero_arg_frac: f64,
    /// Maximum declared parameters.
    pub max_arity: usize,
    /// Probability a (non-zero-arg) method returns void.
    pub void_frac: f64,
    /// Probability a parameter or field has a primitive type.
    pub primitive_frac: f64,
    /// Probability a non-primitive member type is drawn from the same
    /// namespace (the locality that powers the common-namespace term).
    pub same_ns_bias: f64,
    /// Fraction of methods whose parameter signature is cloned onto other
    /// types, creating families of same-signature methods the ranking
    /// function cannot separate by types alone (the paper notes such
    /// families exist and hurt static-call prediction).
    pub family_frac: f64,
    /// Size range of a signature family (including the original).
    pub family_size: (usize, usize),
}

impl Default for LibraryProfile {
    fn default() -> Self {
        LibraryProfile {
            root: "Framework",
            namespaces: 8,
            types: 60,
            interface_frac: 0.08,
            struct_frac: 0.12,
            enum_frac: 0.10,
            subclass_frac: 0.35,
            fields_per_type: (2, 6),
            concept_field_frac: 0.45,
            property_frac: 0.3,
            static_field_frac: 0.12,
            methods_per_type: (2, 8),
            static_method_frac: 0.35,
            zero_arg_frac: 0.25,
            max_arity: 5,
            void_frac: 0.3,
            primitive_frac: 0.4,
            same_ns_bias: 0.7,
            family_frac: 0.12,
            family_size: (2, 12),
        }
    }
}

/// Shape knobs for the client half of a project.
#[derive(Debug, Clone)]
pub struct ClientProfile {
    /// Number of client classes.
    pub classes: usize,
    /// Methods per client class.
    pub methods_per_class: (usize, usize),
    /// Library-typed fields per client class.
    pub fields_per_class: (usize, usize),
    /// Statements per client method body.
    pub stmts_per_method: (usize, usize),
    /// Statement mixture: method call.
    pub call_frac: f64,
    /// Statement mixture: assignment.
    pub assign_frac: f64,
    /// Statement mixture: comparison.
    pub cmp_frac: f64,
    /// Probability an argument is deliberately "not guessable" (literal or
    /// opaque computation) — drives Figure 14's distribution.
    pub opaque_arg_frac: f64,
    /// Probability argument synthesis prefers a field chain over a local.
    pub chain_arg_frac: f64,
    /// Probability a comparison pairs same-named fields.
    pub same_name_cmp_bias: f64,
    /// Probability argument synthesis deliberately passes a value whose
    /// type is a *strict* subtype of the parameter type (real code rarely
    /// passes the exact declared type everywhere).
    pub loose_arg_frac: f64,
}

impl Default for ClientProfile {
    fn default() -> Self {
        ClientProfile {
            classes: 6,
            methods_per_class: (3, 7),
            fields_per_class: (2, 5),
            stmts_per_method: (4, 10),
            call_frac: 0.45,
            assign_frac: 0.30,
            cmp_frac: 0.10,
            opaque_arg_frac: 0.2,
            chain_arg_frac: 0.35,
            same_name_cmp_bias: 0.6,
            loose_arg_frac: 0.3,
        }
    }
}

/// Generates a full project (library + clients) into a fresh database.
pub fn generate(lib: &LibraryProfile, client: &ClientProfile, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let mut names = NameFactory::new();
    let library = gen_library(&mut db, lib, &mut names, &mut rng);
    gen_clients(&mut db, &library, lib, client, &mut names, &mut rng);
    db
}

/// What the client generator needs to know about the library.
#[derive(Debug, Default)]
pub(crate) struct LibraryInfo {
    pub(crate) object_types: Vec<TypeId>,
    pub(crate) enums: Vec<TypeId>,
    pub(crate) methods: Vec<MethodId>,
}

fn pick_range(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..=hi)
    }
}

fn pick<'a, T>(rng: &mut StdRng, xs: &'a [T]) -> Option<&'a T> {
    if xs.is_empty() {
        None
    } else {
        Some(&xs[rng.gen_range(0..xs.len())])
    }
}

const ORDERED_PRIMS: &[PrimKind] = &[
    PrimKind::Int,
    PrimKind::Long,
    PrimKind::Double,
    PrimKind::Float,
    PrimKind::Short,
    PrimKind::Byte,
];

fn gen_library(
    db: &mut Database,
    p: &LibraryProfile,
    names: &mut NameFactory,
    rng: &mut StdRng,
) -> LibraryInfo {
    // Namespaces: the root plus nested areas.
    let root_id = db.types_mut().namespaces_mut().intern(&[p.root]);
    let mut ns_ids = vec![root_id];
    let mut ns_paths: Vec<Vec<String>> = vec![vec![p.root.to_owned()]];
    while ns_ids.len() < p.namespaces.max(1) {
        let parent = rng.gen_range(0..ns_paths.len());
        if ns_paths[parent].len() >= 3 {
            continue;
        }
        let area = AREAS[rng.gen_range(0..AREAS.len())];
        let mut path = ns_paths[parent].clone();
        path.push(area.to_owned());
        let id = db.types_mut().namespaces_mut().intern(&path);
        if !ns_ids.contains(&id) {
            ns_ids.push(id);
            ns_paths.push(path);
        }
    }

    // Declare types.
    let mut info = LibraryInfo::default();
    let mut classes: Vec<TypeId> = Vec::new();
    let mut structs: Vec<TypeId> = Vec::new();
    let mut interfaces: Vec<TypeId> = Vec::new();
    for _ in 0..p.types {
        let ns = *pick(rng, &ns_ids).expect("namespaces nonempty");
        let name = names.type_name(rng);
        let roll: f64 = rng.gen();
        if roll < p.enum_frac {
            if let Ok(e) = db.types_mut().declare_enum(ns, &name) {
                let members = rng.gen_range(3..=6);
                for i in 0..members {
                    let member = format!("{}{}", NOUN_CASES[i % NOUN_CASES.len()], "");
                    let _ = db.add_enum_member(e, &member);
                }
                info.enums.push(e);
            }
        } else if roll < p.enum_frac + p.interface_frac {
            if let Ok(i) = db.types_mut().declare_interface(ns, &name) {
                interfaces.push(i);
            }
        } else if roll < p.enum_frac + p.interface_frac + p.struct_frac {
            if let Ok(s) = db.types_mut().declare_struct(ns, &name) {
                structs.push(s);
                info.object_types.push(s);
            }
        } else if let Ok(c) = db.types_mut().declare_class(ns, &name) {
            classes.push(c);
            info.object_types.push(c);
        }
    }

    // Hierarchy: bases among earlier classes; some interface impls.
    for (i, &c) in classes.iter().enumerate() {
        if i > 0 && rng.gen_bool(p.subclass_frac) {
            let base = classes[rng.gen_range(0..i)];
            let _ = db.types_mut().set_base(c, base);
        }
        if !interfaces.is_empty() && rng.gen_bool(0.2) {
            let iface = *pick(rng, &interfaces).expect("nonempty");
            let _ = db.types_mut().add_interface_impl(c, iface);
        }
    }

    // Members.
    let concrete: Vec<TypeId> = classes.iter().chain(structs.iter()).copied().collect();
    for &t in &concrete {
        let owner = db.types().qualified_name(t);
        let nfields = pick_range(rng, p.fields_per_type);
        for _ in 0..nfields {
            let is_static = rng.gen_bool(p.static_field_frac);
            let is_property = rng.gen_bool(p.property_frac);
            if rng.gen_bool(p.concept_field_frac) {
                let c: &Concept = &CONCEPTS[rng.gen_range(0..CONCEPTS.len())];
                if names.reserve_concept(&owner, c) {
                    let ty = db.types().prim(c.prim);
                    let _ = db.add_field(t, c.name, is_static, ty, Visibility::Public, is_property);
                }
                continue;
            }
            let name = names.field_name(rng, &owner);
            let ty = member_type(db, t, p, &info, rng);
            let _ = db.add_field(t, &name, is_static, ty, Visibility::Public, is_property);
        }
        let nmethods = pick_range(rng, p.methods_per_type);
        for _ in 0..nmethods {
            let name = names.method_name(rng, &owner);
            let is_static = rng.gen_bool(p.static_method_frac);
            let zero_arg = rng.gen_bool(p.zero_arg_frac);
            let arity = if zero_arg {
                0
            } else {
                rng.gen_range(1..=p.max_arity.max(1))
            };
            let mut params = Vec::with_capacity(arity);
            for i in 0..arity {
                let ty = member_type(db, t, p, &info, rng);
                params.push(Param {
                    name: NameFactory::local_name(rng, i),
                    ty,
                });
            }
            let ret = if zero_arg {
                // Zero-argument methods are chain links; they must return.
                member_type(db, t, p, &info, rng)
            } else if rng.gen_bool(p.void_frac) {
                db.types().void_ty()
            } else {
                member_type(db, t, p, &info, rng)
            };
            let m = db.add_method(t, &name, is_static, params, ret, Visibility::Public);
            info.methods.push(m);
        }
    }
    // Signature families: clone some signatures onto other types so that
    // several methods accept exactly the same argument types.
    let n_methods = info.methods.len();
    for mi in 0..n_methods {
        if !rng.gen_bool(p.family_frac) {
            continue;
        }
        let original = info.methods[mi];
        let (params, ret, is_static) = {
            let md = db.method(original);
            (md.params().to_vec(), md.return_type(), md.is_static())
        };
        if params.is_empty() {
            continue;
        }
        let copies = pick_range(
            rng,
            (
                p.family_size.0.saturating_sub(1),
                p.family_size.1.saturating_sub(1),
            ),
        );
        for _ in 0..copies {
            let Some(&host) = pick(rng, &concrete) else {
                break;
            };
            let owner = db.types().qualified_name(host);
            let name = names.method_name(rng, &owner);
            let m = db.add_method(
                host,
                &name,
                is_static,
                params.clone(),
                ret,
                Visibility::Public,
            );
            info.methods.push(m);
        }
    }

    // Interface methods (no bodies, instance, non-void).
    for &t in &interfaces {
        let owner = db.types().qualified_name(t);
        for _ in 0..rng.gen_range(1..=3usize) {
            let name = names.method_name(rng, &owner);
            let ret = member_type(db, t, p, &info, rng);
            let m = db.add_method(t, &name, false, Vec::new(), ret, Visibility::Public);
            info.methods.push(m);
        }
    }
    info
}

const NOUN_CASES: &[&str] = &[
    "None",
    "Default",
    "Primary",
    "Secondary",
    "Hidden",
    "Visible",
    "Active",
    "Disabled",
];

/// Picks a type for a field/parameter/return slot: primitive with
/// `primitive_frac`, otherwise an object type with same-namespace bias.
fn member_type(
    db: &Database,
    owner: TypeId,
    p: &LibraryProfile,
    info: &LibraryInfo,
    rng: &mut StdRng,
) -> TypeId {
    if info.object_types.is_empty() && info.enums.is_empty() {
        return db.types().prim(PrimKind::Int);
    }
    if rng.gen_bool(p.primitive_frac) {
        let prims = [
            PrimKind::Int,
            PrimKind::Double,
            PrimKind::String,
            PrimKind::Bool,
            PrimKind::Long,
        ];
        return db.types().prim(prims[rng.gen_range(0..prims.len())]);
    }
    // A slice of utility methods take `object` (the paper's Pair.Create
    // distractors), which every argument fits at type distance >= 1.
    if rng.gen_bool(0.06) {
        return db.types().object();
    }
    if !info.enums.is_empty() && rng.gen_bool(0.12) {
        return *pick(rng, &info.enums).expect("nonempty");
    }
    let owner_ns = db.types().get(owner).namespace();
    if rng.gen_bool(p.same_ns_bias) {
        let same: Vec<TypeId> = info
            .object_types
            .iter()
            .copied()
            .filter(|t| db.types().get(*t).namespace() == owner_ns)
            .collect();
        if let Some(t) = pick(rng, &same) {
            return *t;
        }
    }
    *pick(rng, &info.object_types).expect("nonempty")
}

/// A value available to expression synthesis: an expression plus its type.
#[derive(Debug, Clone)]
struct Avail {
    expr: Expr,
    ty: TypeId,
}

fn gen_clients(
    db: &mut Database,
    library: &LibraryInfo,
    libp: &LibraryProfile,
    p: &ClientProfile,
    names: &mut NameFactory,
    rng: &mut StdRng,
) {
    let client_ns = db.types_mut().namespaces_mut().intern(&[libp.root, "App"]);
    // Candidate base classes: library classes (apps subclass framework
    // types, which also lets `this` appear as an argument — Figure 14).
    let lib_classes: Vec<TypeId> = library
        .object_types
        .iter()
        .copied()
        .filter(|t| db.types().get(*t).is_class())
        .collect();
    for ci in 0..p.classes {
        let cname = format!("Client{ci}");
        let Ok(class) = db.types_mut().declare_class(client_ns, &cname) else {
            continue;
        };
        if !lib_classes.is_empty() && rng.gen_bool(0.5) {
            let base = lib_classes[rng.gen_range(0..lib_classes.len())];
            let _ = db.types_mut().set_base(class, base);
        }
        // Library-typed instance fields.
        let nfields = pick_range(rng, p.fields_per_class);
        let owner = db.types().qualified_name(class);
        for _ in 0..nfields {
            let name = names.field_name(rng, &owner);
            let Some(&ty) = pick(rng, &library.object_types) else {
                break;
            };
            let _ = db.add_field(class, &name, false, ty, Visibility::Public, false);
        }
        let nmethods = pick_range(rng, p.methods_per_class);
        for mi in 0..nmethods {
            let is_static = rng.gen_bool(0.2);
            let nparams = rng.gen_range(1..=4usize);
            let mut params = Vec::with_capacity(nparams);
            for i in 0..nparams {
                let ty = if rng.gen_bool(0.3) || library.object_types.is_empty() {
                    let prims = [PrimKind::Int, PrimKind::Double, PrimKind::String];
                    db.types().prim(prims[rng.gen_range(0..prims.len())])
                } else {
                    *pick(rng, &library.object_types).expect("nonempty")
                };
                params.push(Param {
                    name: NameFactory::local_name(rng, i),
                    ty,
                });
            }
            let m = db.add_method(
                class,
                &format!("Run{mi}"),
                is_static,
                params,
                db.types().void_ty(),
                Visibility::Public,
            );
            let body = gen_body(db, library, p, m, rng);
            db.set_body(m, body);
        }
    }
}

fn gen_body(
    db: &Database,
    library: &LibraryInfo,
    p: &ClientProfile,
    method: MethodId,
    rng: &mut StdRng,
) -> Body {
    let md = db.method(method);
    let mut body = Body {
        locals: md
            .params()
            .iter()
            .map(|pr| (pr.name.clone(), pr.ty))
            .collect(),
        param_count: md.params().len(),
        stmts: Vec::new(),
    };
    let nstmts = pick_range(rng, p.stmts_per_method);
    for _ in 0..nstmts {
        let ctx = Context::at_statement(db, method, &body, body.stmts.len());
        let roll: f64 = rng.gen();
        let stmt = if roll < p.call_frac {
            gen_call_stmt(db, library, p, &ctx, &mut body, rng)
        } else if roll < p.call_frac + p.assign_frac {
            gen_assign_stmt(db, p, &ctx, rng)
        } else if roll < p.call_frac + p.assign_frac + p.cmp_frac {
            gen_branch_stmt(db, library, p, &ctx, rng)
        } else {
            gen_decl_stmt(db, library, p, &ctx, &mut body, rng)
        };
        if let Some(stmt) = stmt {
            body.stmts.push(stmt);
        }
    }
    debug_assert!(
        db.check_body(method, &body).is_ok(),
        "generated body must type-check"
    );
    body
}

/// Everything reachable as a simple chain from the context: locals, `this`,
/// one- and two-link field chains.
fn available_values(db: &Database, ctx: &Context, rng: &mut StdRng) -> Vec<Avail> {
    let mut out = Vec::new();
    for (i, l) in ctx.locals.iter().enumerate() {
        out.push(Avail {
            expr: Expr::Local(LocalId(i as u32)),
            ty: l.ty,
        });
    }
    if let Some(t) = ctx.this_type() {
        out.push(Avail {
            expr: Expr::This,
            ty: t,
        });
    }
    // One level of lookups from each base (bounded for speed). Fields and
    // methods shadowed by a nearer declaration with the same name are
    // skipped: simple member syntax cannot denote them.
    let bases: Vec<Avail> = out.clone();
    for base in &bases {
        let mut seen_names: Vec<String> = Vec::new();
        for f in db.instance_fields(base.ty, ctx.enclosing_type) {
            let fd = db.field(f);
            if seen_names.iter().any(|n| n == fd.name()) {
                continue;
            }
            seen_names.push(fd.name().to_owned());
            out.push(Avail {
                expr: Expr::field(base.expr.clone(), f),
                ty: fd.ty(),
            });
        }
        let mut seen_methods: Vec<String> = Vec::new();
        for m in db
            .zero_arg_instance_methods(base.ty, ctx.enclosing_type)
            .into_iter()
            .take(4)
        {
            let md = db.method(m);
            if seen_methods.iter().any(|n| n == md.name()) {
                continue;
            }
            seen_methods.push(md.name().to_owned());
            if seen_methods.len() > 2 {
                break;
            }
            out.push(Avail {
                expr: Expr::Call(m, vec![base.expr.clone()]),
                ty: md.return_type(),
            });
        }
    }
    // A sample of two-link chains.
    let singles: Vec<Avail> = out
        .iter()
        .filter(|a| matches!(a.expr, Expr::FieldAccess(..)))
        .cloned()
        .collect();
    for a in singles.iter().take(8) {
        if rng.gen_bool(0.5) {
            let mut seen_names: Vec<String> = Vec::new();
            for f in db.instance_fields(a.ty, ctx.enclosing_type) {
                let fd = db.field(f);
                if seen_names.iter().any(|n| n == fd.name()) {
                    continue;
                }
                seen_names.push(fd.name().to_owned());
                if seen_names.len() > 3 {
                    break;
                }
                out.push(Avail {
                    expr: Expr::field(a.expr.clone(), f),
                    ty: fd.ty(),
                });
            }
        }
    }
    out
}

/// Synthesises an argument of (a type convertible to) `ty`.
fn synth_value(
    db: &Database,
    p: &ClientProfile,
    avail: &[Avail],
    ty: TypeId,
    rng: &mut StdRng,
) -> Expr {
    let tdef = db.types().get(ty);
    // Deliberately not-guessable arguments.
    if rng.gen_bool(p.opaque_arg_frac) {
        if let Some(pk) = tdef.prim_kind() {
            return prim_literal(pk, rng);
        }
        return Expr::Opaque {
            ty,
            label: "Compute()".into(),
        };
    }
    // Enum members.
    if matches!(tdef.kind(), pex_types::TypeKind::Enum) {
        let members = db.static_fields(ty, None);
        if let Some(&f) = pick(rng, &members) {
            return Expr::StaticField(f);
        }
    }
    let convertible: Vec<&Avail> = avail
        .iter()
        .filter(|a| db.types().implicitly_convertible(a.ty, ty))
        .collect();
    // Locals are by far the most common argument form in real code
    // (paper Figure 14), so try them first most of the time.
    if rng.gen_bool(0.55) {
        let locals: Vec<&&Avail> = convertible
            .iter()
            .filter(|a| matches!(a.expr, Expr::Local(_)))
            .collect();
        if let Some(a) = pick(rng, &locals) {
            return a.expr.clone();
        }
    }
    // Sometimes pass a strict subtype: real arguments rarely have the
    // exact declared parameter type everywhere.
    if rng.gen_bool(p.loose_arg_frac) {
        let loose: Vec<&&Avail> = convertible.iter().filter(|a| a.ty != ty).collect();
        if let Some(a) = pick(rng, &loose) {
            return a.expr.clone();
        }
    }
    let chains: Vec<&&Avail> = convertible
        .iter()
        .filter(|a| !matches!(a.expr, Expr::Local(_)))
        .collect();
    if rng.gen_bool(p.chain_arg_frac) {
        if let Some(a) = pick(rng, &chains) {
            return a.expr.clone();
        }
    }
    if let Some(a) = pick(rng, &convertible) {
        return a.expr.clone();
    }
    // Globals of a convertible type.
    let globals: Vec<Expr> = db
        .globals()
        .into_iter()
        .filter_map(|g| match g {
            pex_model::GlobalRef::Field(f)
                if db.types().implicitly_convertible(db.field(f).ty(), ty) =>
            {
                Some(Expr::StaticField(f))
            }
            _ => None,
        })
        .collect();
    if let Some(g) = pick(rng, &globals) {
        return g.clone();
    }
    if let Some(pk) = tdef.prim_kind() {
        return prim_literal(pk, rng);
    }
    Expr::Opaque {
        ty,
        label: "Compute()".into(),
    }
}

fn prim_literal(pk: PrimKind, rng: &mut StdRng) -> Expr {
    match pk {
        PrimKind::Bool => Expr::BoolLit(rng.gen_bool(0.5)),
        PrimKind::String => Expr::StrLit(format!("s{}", rng.gen_range(0..100))),
        PrimKind::Double | PrimKind::Float | PrimKind::Decimal => {
            Expr::DoubleLit(rng.gen_range(0..100) as f64 / 4.0)
        }
        _ => Expr::IntLit(rng.gen_range(1..100)),
    }
}

/// Builds a call to a library method with synthesised arguments.
fn build_call(
    db: &Database,
    library: &LibraryInfo,
    p: &ClientProfile,
    ctx: &Context,
    rng: &mut StdRng,
    want_return: bool,
) -> Option<Expr> {
    let avail = available_values(db, ctx, rng);
    // Sample a few candidate methods; prefer the one whose arguments can be
    // filled with the fewest opaque fallbacks.
    let mut best: Option<(usize, Expr, MethodId)> = None;
    for _ in 0..6 {
        let &m = pick(rng, &library.methods)?;
        let md = db.method(m);
        if want_return && md.return_type() == db.types().void_ty() {
            continue;
        }
        // Real code calls instance methods about twice as often as statics
        // (paper Table 2: 13904 instance vs 7272 static).
        if md.is_static() && rng.gen_bool(0.45) {
            continue;
        }
        let mut args = Vec::with_capacity(md.full_arity());
        let mut opaque = 0usize;
        for ty in md.full_param_types() {
            let a = synth_value(db, p, &avail, ty, rng);
            if matches!(a, Expr::Opaque { .. }) {
                opaque += 1;
            }
            args.push(a);
        }
        let expr = Expr::Call(m, args);
        if db.expr_ty(&expr, ctx).is_err() {
            continue;
        }
        if best.as_ref().map(|(b, ..)| opaque < *b).unwrap_or(true) {
            let better = (opaque, expr, m);
            best = Some(better);
            if opaque == 0 {
                break;
            }
        }
    }
    best.map(|(_, e, _)| e)
}

fn gen_call_stmt(
    db: &Database,
    library: &LibraryInfo,
    p: &ClientProfile,
    ctx: &Context,
    _body: &mut Body,
    rng: &mut StdRng,
) -> Option<Stmt> {
    build_call(db, library, p, ctx, rng, false).map(Stmt::Expr)
}

fn gen_decl_stmt(
    db: &Database,
    library: &LibraryInfo,
    p: &ClientProfile,
    ctx: &Context,
    body: &mut Body,
    rng: &mut StdRng,
) -> Option<Stmt> {
    let call = build_call(db, library, p, ctx, rng, true)?;
    let ty = match db.expr_ty(&call, ctx) {
        Ok(pex_model::ValueTy::Known(t)) => t,
        _ => return None,
    };
    let id = LocalId(body.locals.len() as u32);
    body.locals
        .push((NameFactory::local_name(rng, body.locals.len()), ty));
    Some(Stmt::Init(id, call))
}

fn gen_assign_stmt(
    db: &Database,
    p: &ClientProfile,
    ctx: &Context,
    rng: &mut StdRng,
) -> Option<Stmt> {
    let avail = available_values(db, ctx, rng);
    // Target: a chain ending in a writable instance field.
    let targets: Vec<&Avail> = avail
        .iter()
        .filter(|a| matches!(a.expr, Expr::FieldAccess(..)))
        .collect();
    let target = pick(rng, &targets)?;
    let source = synth_value(db, p, &avail, target.ty, rng);
    let expr = Expr::assign(target.expr.clone(), source);
    if db.expr_ty(&expr, ctx).is_err() {
        return None;
    }
    Some(Stmt::Expr(expr))
}

fn gen_cmp_stmt(db: &Database, p: &ClientProfile, ctx: &Context, rng: &mut StdRng) -> Option<Stmt> {
    let avail = available_values(db, ctx, rng);
    // Left side: a chain ending in an ordered-primitive field.
    let ordered: Vec<&Avail> = avail
        .iter()
        .filter(|a| {
            matches!(a.expr, Expr::FieldAccess(..))
                && db
                    .types()
                    .get(a.ty)
                    .prim_kind()
                    .is_some_and(|pk| ORDERED_PRIMS.contains(&pk))
        })
        .collect();
    let lhs = pick(rng, &ordered)?;
    let lhs_name = match &lhs.expr {
        Expr::FieldAccess(_, f) => db.field(*f).name().to_owned(),
        _ => unreachable!("filtered to field accesses"),
    };
    // Right side: prefer a same-named field on a different base.
    let rhs = if rng.gen_bool(p.same_name_cmp_bias) {
        ordered
            .iter()
            .filter(|a| {
                a.expr != lhs.expr
                    && matches!(&a.expr, Expr::FieldAccess(_, f) if db.field(*f).name() == lhs_name)
                    && db.types().comparable_pair(lhs.ty, a.ty).is_some()
            })
            .map(|a| (*a).clone())
            .next()
    } else {
        None
    };
    let rhs = rhs.or_else(|| {
        ordered
            .iter()
            .filter(|a| a.expr != lhs.expr && db.types().comparable_pair(lhs.ty, a.ty).is_some())
            .map(|a| (*a).clone())
            .next()
    });
    let rhs_expr = match rhs {
        Some(a) => a.expr,
        None => prim_literal(db.types().get(lhs.ty).prim_kind()?, rng),
    };
    let ops = [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    let op = ops[rng.gen_range(0..ops.len())];
    let expr = Expr::cmp(op, lhs.expr.clone(), rhs_expr);
    if db.expr_ty(&expr, ctx).is_err() {
        return None;
    }
    Some(Stmt::Expr(expr))
}

/// Wraps a generated comparison in an `if` (or occasionally `while`) with a
/// small body of calls/assignments — where comparisons live in real code.
fn gen_branch_stmt(
    db: &Database,
    library: &LibraryInfo,
    p: &ClientProfile,
    ctx: &Context,
    rng: &mut StdRng,
) -> Option<Stmt> {
    let cond = match gen_cmp_stmt(db, p, ctx, rng)? {
        Stmt::Expr(e) => e,
        other => return Some(other),
    };
    // A bare comparison statement still occurs occasionally (the paper's
    // formal language allows it), but most conditions guard a block.
    if rng.gen_bool(0.2) {
        return Some(Stmt::Expr(cond));
    }
    let mut then_body = Vec::new();
    for _ in 0..rng.gen_range(1..=2usize) {
        let inner = if rng.gen_bool(0.6) {
            build_call(db, library, p, ctx, rng, false).map(Stmt::Expr)
        } else {
            gen_assign_stmt(db, p, ctx, rng)
        };
        if let Some(inner) = inner {
            then_body.push(inner);
        }
    }
    if then_body.is_empty() {
        return Some(Stmt::Expr(cond));
    }
    if rng.gen_bool(0.12) {
        return Some(Stmt::While {
            cond,
            body: then_body,
        });
    }
    let else_body = if rng.gen_bool(0.25) {
        build_call(db, library, p, ctx, rng, false)
            .map(Stmt::Expr)
            .into_iter()
            .collect()
    } else {
        Vec::new()
    };
    Some(Stmt::If {
        cond,
        then_body,
        else_body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let lib = LibraryProfile::default();
        let cli = ClientProfile::default();
        let a = generate(&lib, &cli, 42);
        let b = generate(&lib, &cli, 42);
        assert_eq!(a.method_count(), b.method_count());
        assert_eq!(a.field_count(), b.field_count());
        let c = generate(&lib, &cli, 43);
        // Different seeds virtually always differ in some count.
        assert!(
            a.method_count() != c.method_count()
                || a.field_count() != c.field_count()
                || a.types().len() != c.types().len()
        );
    }

    #[test]
    fn all_bodies_type_check() {
        let db = generate(&LibraryProfile::default(), &ClientProfile::default(), 7);
        let mut bodies = 0;
        for m in db.methods() {
            if let Some(body) = db.method(m).body() {
                db.check_body(m, body).unwrap_or_else(|e| {
                    panic!("body of {} ill-typed: {e}", db.qualified_method_name(m))
                });
                bodies += 1;
            }
        }
        assert!(bodies >= 10, "expected client bodies, got {bodies}");
    }

    #[test]
    fn statement_mix_is_present() {
        let db = generate(&LibraryProfile::default(), &ClientProfile::default(), 11);
        let (mut calls, mut assigns, mut cmps, mut decls, mut branches) = (0, 0, 0, 0, 0);
        for m in db.methods() {
            if let Some(body) = db.method(m).body() {
                fn count(
                    stmt: &Stmt,
                    calls: &mut usize,
                    assigns: &mut usize,
                    cmps: &mut usize,
                    decls: &mut usize,
                    branches: &mut usize,
                ) {
                    match stmt {
                        Stmt::Init(..) => *decls += 1,
                        Stmt::Expr(Expr::Call(..)) => *calls += 1,
                        Stmt::Expr(Expr::Assign(..)) => *assigns += 1,
                        Stmt::Expr(Expr::Cmp(..)) => *cmps += 1,
                        Stmt::If { .. } | Stmt::While { .. } => *branches += 1,
                        _ => {}
                    }
                    for inner in stmt.nested() {
                        count(inner, calls, assigns, cmps, decls, branches);
                    }
                }
                for stmt in &body.stmts {
                    count(
                        stmt,
                        &mut calls,
                        &mut assigns,
                        &mut cmps,
                        &mut decls,
                        &mut branches,
                    );
                }
            }
        }
        assert!(calls > 20, "calls: {calls}");
        assert!(assigns > 5, "assigns: {assigns}");
        assert!(cmps + branches > 0, "cmps: {cmps}, branches: {branches}");
        assert!(decls > 0, "decls: {decls}");
        assert!(branches > 0, "branches: {branches}");
    }

    #[test]
    fn library_has_globals_and_zero_arg_methods() {
        let db = generate(&LibraryProfile::default(), &ClientProfile::default(), 3);
        assert!(!db.globals().is_empty());
        let zero_arg = db
            .methods()
            .filter(|m| {
                let md = db.method(*m);
                !md.is_static() && md.params().is_empty()
            })
            .count();
        assert!(zero_arg > 3, "zero-arg instance methods: {zero_arg}");
    }
}
