//! Per-project profiles approximating the seven codebases of the paper's
//! Table 1. Absolute sizes are controlled by a `scale` factor so the full
//! evaluation can be dialled from smoke-test to paper-sized.

use pex_model::Database;

use crate::gen::{generate, ClientProfile, LibraryProfile};

/// A named project profile: generation knobs plus the paper's call count
/// for Table 1's "# calls" column.
#[derive(Debug, Clone)]
pub struct ProjectProfile {
    /// Project name as it appears in Table 1.
    pub name: &'static str,
    /// Library shape.
    pub lib: LibraryProfile,
    /// Client shape.
    pub client: ClientProfile,
    /// The paper's call count for this project (used to apportion scale).
    pub paper_calls: usize,
    /// Generation seed (distinct per project).
    pub seed: u64,
}

impl ProjectProfile {
    /// Generates the project at the given scale. `scale = 1.0` targets the
    /// paper's call count; the default experiment scale is much smaller.
    pub fn generate(&self, scale: f64) -> Database {
        let mut client = self.client.clone();
        // Expected calls/method ≈ stmts * (call + decl fraction); apportion
        // classes/methods to approximate paper_calls * scale.
        let stmts = (client.stmts_per_method.0 + client.stmts_per_method.1) as f64 / 2.0;
        let calls_per_method = stmts * (client.call_frac + 0.15);
        let methods_needed = ((self.paper_calls as f64 * scale) / calls_per_method.max(0.1))
            .ceil()
            .max(1.0);
        let per_class =
            (client.methods_per_class.0 + client.methods_per_class.1).max(2) as f64 / 2.0;
        client.classes = ((methods_needed / per_class).ceil() as usize).max(1);
        let mut lib = self.lib.clone();
        // Library size grows sub-linearly with scale: even small corpora
        // keep a framework-sized search space, which is where the ranking
        // difficulty comes from.
        let lib_factor = scale.powf(0.3).clamp(0.3, 1.0);
        lib.types = ((lib.types as f64) * lib_factor).ceil() as usize;
        lib.namespaces = ((lib.namespaces as f64) * lib_factor).ceil().max(2.0) as usize;
        generate(&lib, &client, self.seed)
    }
}

/// The seven projects of Table 1, with shape knobs echoing each codebase's
/// character (GUI framework, installer toolchain, media player, BCL, ...).
#[allow(clippy::vec_init_then_push)] // one entry per Table 1 project, kept visually parallel
pub fn table1_projects() -> Vec<ProjectProfile> {
    let mut out = Vec::new();
    out.push(ProjectProfile {
        name: "Paint.NET",
        lib: LibraryProfile {
            root: "PaintDotNet",
            namespaces: 14,
            types: 260,
            struct_frac: 0.15,
            static_method_frac: 0.45,
            family_frac: 0.3,
            family_size: (3, 18),
            primitive_frac: 0.5,
            ..Default::default()
        },
        client: ClientProfile::default(),
        paper_calls: 3188,
        seed: 0xA1,
    });
    out.push(ProjectProfile {
        name: "WiX",
        lib: LibraryProfile {
            root: "WixToolset",
            namespaces: 10,
            types: 300,
            static_method_frac: 0.5,
            primitive_frac: 0.5,
            family_frac: 0.14,
            ..Default::default()
        },
        client: ClientProfile {
            stmts_per_method: (6, 14),
            opaque_arg_frac: 0.25,
            ..Default::default()
        },
        paper_calls: 13192,
        seed: 0xB2,
    });
    out.push(ProjectProfile {
        name: "GNOME Do",
        lib: LibraryProfile {
            root: "GnomeDo",
            namespaces: 6,
            types: 120,
            interface_frac: 0.15,
            family_frac: 0.22,
            family_size: (2, 14),
            static_method_frac: 0.45,
            ..Default::default()
        },
        client: ClientProfile::default(),
        paper_calls: 208,
        seed: 0xC3,
    });
    out.push(ProjectProfile {
        name: "Banshee",
        lib: LibraryProfile {
            root: "Banshee",
            namespaces: 8,
            types: 140,
            subclass_frac: 0.45,
            family_frac: 0.1,
            ..Default::default()
        },
        client: ClientProfile::default(),
        paper_calls: 91,
        seed: 0xD4,
    });
    out.push(ProjectProfile {
        name: ".NET",
        lib: LibraryProfile {
            root: "System",
            namespaces: 16,
            types: 400,
            static_method_frac: 0.45,
            primitive_frac: 0.5,
            same_ns_bias: 0.6,
            family_frac: 0.2,
            family_size: (2, 14),
            ..Default::default()
        },
        client: ClientProfile {
            opaque_arg_frac: 0.25,
            ..Default::default()
        },
        paper_calls: 2801,
        seed: 0xE5,
    });
    out.push(ProjectProfile {
        name: "Family.Show",
        lib: LibraryProfile {
            root: "FamilyShow",
            namespaces: 5,
            types: 110,
            concept_field_frac: 0.55,
            family_frac: 0.12,
            ..Default::default()
        },
        client: ClientProfile {
            same_name_cmp_bias: 0.7,
            ..Default::default()
        },
        paper_calls: 586,
        seed: 0xF6,
    });
    out.push(ProjectProfile {
        name: "LiveGeometry",
        lib: LibraryProfile {
            root: "DynamicGeometry",
            namespaces: 6,
            types: 130,
            struct_frac: 0.2,
            concept_field_frac: 0.6,
            family_frac: 0.04,
            family_size: (2, 4),
            static_method_frac: 0.25,
            ..Default::default()
        },
        client: ClientProfile {
            cmp_frac: 0.15,
            same_name_cmp_bias: 0.7,
            ..Default::default()
        },
        paper_calls: 1110,
        seed: 0x17,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_projects() {
        let ps = table1_projects();
        assert_eq!(ps.len(), 7);
        let names: Vec<&str> = ps.iter().map(|p| p.name).collect();
        assert!(names.contains(&"Paint.NET"));
        assert!(names.contains(&"LiveGeometry"));
        assert_eq!(ps.iter().map(|p| p.paper_calls).sum::<usize>(), 21176);
    }

    #[test]
    fn scale_controls_size() {
        let p = &table1_projects()[2]; // GNOME Do, the smallest
        let small = p.generate(0.05);
        let large = p.generate(0.5);
        let small_calls = count_calls(&small);
        let large_calls = count_calls(&large);
        assert!(large_calls > small_calls, "{large_calls} vs {small_calls}");
    }

    fn count_calls(db: &Database) -> usize {
        let mut n = 0;
        for m in db.methods() {
            if let Some(b) = db.method(m).body() {
                for s in &b.stmts {
                    if let Some(e) = s.expr() {
                        n += count_calls_in(e);
                    }
                }
            }
        }
        n
    }

    fn count_calls_in(e: &pex_model::Expr) -> usize {
        let own = usize::from(matches!(e, pex_model::Expr::Call(..)));
        own + e
            .children()
            .iter()
            .map(|c| count_calls_in(c))
            .sum::<usize>()
    }
}
