//! Property test: generated projects survive a dump → recompile round trip
//! (the `pex-experiments dump` path), including control-flow statements.

use proptest::prelude::*;

use pex_corpus::{generate, ClientProfile, LibraryProfile};
use pex_model::minics::{compile, print, PrintOptions};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn generated_projects_recompile_from_their_dump(seed in 0u64..200) {
        let lib = LibraryProfile {
            types: 30,
            namespaces: 4,
            ..Default::default()
        };
        let client = ClientProfile {
            classes: 2,
            ..Default::default()
        };
        let db = generate(&lib, &client, seed);
        let printed = print(&db, PrintOptions::default());
        let db2 = compile(&printed).map_err(|e| {
            TestCaseError::fail(format!("dump must recompile: {e}"))
        })?;
        // Structure survives exactly: the printer only drops bodies that
        // contain opaque expressions, never declarations.
        prop_assert_eq!(db.types().len(), db2.types().len());
        prop_assert_eq!(db.method_count(), db2.method_count());
        prop_assert_eq!(db.field_count(), db2.field_count());
        // Recompiled bodies type-check (compile() already checks; assert
        // some survived so the property is not vacuous over all seeds).
        let bodies2 = db2
            .methods()
            .filter(|m| db2.method(*m).body().is_some())
            .count();
        let printable = db
            .methods()
            .filter(|m| {
                db.method(*m).body().is_some()
                    && printed.contains(&format!("{}(", db.method(*m).name()))
            })
            .count();
        prop_assert!(bodies2 <= printable || printable == 0);
    }
}
