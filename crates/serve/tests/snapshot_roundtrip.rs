//! A loaded `pex-snapshot/1` artefact must be *indistinguishable* from
//! the snapshot it was saved from: same database rows, same prewarmed
//! caches, same interned arena — and therefore byte-identical protocol
//! responses (expressions, scores, outcomes, explain terms) for every
//! query. These properties pin that equivalence over randomly generated
//! corpora, the same generator the engine's own parity suites use.

use proptest::prelude::*;

use pex_core::CancelToken;
use pex_corpus::{generate, ClientProfile, LibraryProfile};
use pex_model::{Context, Database, MethodId};
use pex_serve::json::{self, Value};
use pex_serve::proto::{self, QueryRequest};
use pex_serve::{persist, RequestDefaults, Snapshot};

fn small_db(seed: u64) -> Database {
    let lib = LibraryProfile {
        types: 25,
        namespaces: 4,
        ..Default::default()
    };
    let client = ClientProfile {
        classes: 2,
        ..Default::default()
    };
    generate(&lib, &client, seed)
}

/// First statement site in the corpus (enclosing method + statement
/// index), used as the snapshot's default query context.
fn first_site(db: &Database) -> Option<(MethodId, usize)> {
    for m in db.methods() {
        if let Some(body) = db.method(m).body() {
            if !body.stmts.is_empty() {
                return Some((m, 0));
            }
        }
    }
    None
}

/// Runs one query and normalizes the response for comparison: the only
/// legitimately nondeterministic field is the wall-clock `latency_us`.
/// Everything else — completions, scores, outcome, explain terms, error
/// text — must match exactly between a built and a loaded snapshot.
fn answer(snapshot: &Snapshot, query: &str) -> String {
    let req = QueryRequest {
        id: Some(Value::Num(1.0)),
        project: None,
        query: query.to_owned(),
        limit: Some(20),
        deadline_ms: None,
        max_steps: None,
        max_depth: None,
        locals: Vec::new(),
        trace_id: Some("t-roundtrip".to_owned()),
        trace: false,
        explain: true,
    };
    let abs = snapshot.abs_for_site();
    let (response, _) = proto::execute(
        snapshot,
        &req,
        &RequestDefaults::default(),
        &CancelToken::new(),
        abs.as_ref(),
    );
    let mut doc = json::parse(&response).expect("responses are valid JSON");
    if doc.get("latency_us").is_some() {
        doc.set("latency_us", Value::Num(0.0));
    }
    doc.to_string()
}

/// A spread of query surfaces: the bare hole, brace queries over the
/// context's locals, member suffixes, and one malformed query (both
/// sides must produce the identical error response too).
fn query_mix(snapshot: &Snapshot) -> Vec<String> {
    let mut queries = vec!["?".to_owned(), "?(".to_owned()];
    let locals: Vec<&str> = snapshot
        .default_ctx
        .locals
        .iter()
        .map(|l| l.name.as_str())
        .collect();
    if let Some(a) = locals.first() {
        queries.push(format!("?({{{a}}})"));
        queries.push(format!("{a}.?f"));
        queries.push(format!("{a}.?m()"));
    }
    if let [a, b, ..] = locals.as_slice() {
        queries.push(format!("?({{{a}, {b}}})"));
    }
    queries
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Save → load → answer: every query produces the byte-identical
    /// response from the loaded snapshot, and re-encoding the loaded
    /// snapshot reproduces the original bytes (the format is canonical).
    #[test]
    fn loaded_snapshot_answers_identically(seed in 0u64..300) {
        let db = small_db(seed);
        let Some((enclosing, stmt)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let built = Snapshot::from_database("prop".to_owned(), db, ctx, Some(enclosing));

        let bytes = persist::to_bytes(&built);
        let loaded = persist::from_bytes(&bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;

        // Canonical re-encode *before* answering queries (queries intern
        // new expressions into the arena, growing it on both sides).
        prop_assert_eq!(
            persist::to_bytes(&loaded),
            bytes,
            "re-encoding a loaded snapshot must reproduce the file"
        );

        prop_assert_eq!(&loaded.name, &built.name);
        prop_assert_eq!(loaded.enclosing, built.enclosing);
        prop_assert_eq!(loaded.db.method_count(), built.db.method_count());
        prop_assert_eq!(loaded.db.field_count(), built.db.field_count());
        prop_assert_eq!(loaded.cache.arena.len(), built.cache.arena.len());

        for query in query_mix(&built) {
            prop_assert_eq!(
                answer(&loaded, &query),
                answer(&built, &query),
                "responses diverged on query `{}`", query
            );
        }
    }

    /// The loaded caches are already warm: answering from a loaded
    /// snapshot must produce identical rows *again* on a second run (the
    /// arena and memos it rehydrated are internally consistent, not just
    /// equal-looking).
    #[test]
    fn loaded_snapshot_is_self_consistent(seed in 0u64..100) {
        let db = small_db(seed);
        let Some((enclosing, stmt)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let built = Snapshot::from_database("prop".to_owned(), db, ctx, Some(enclosing));
        let loaded = persist::from_bytes(&persist::to_bytes(&built))
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;

        for query in query_mix(&loaded) {
            let first = answer(&loaded, &query);
            let second = answer(&loaded, &query);
            prop_assert_eq!(first, second, "warm rerun diverged on `{}`", query);
        }
    }
}
