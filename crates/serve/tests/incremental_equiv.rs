//! Property test: an incrementally updated snapshot is indistinguishable
//! from a from-scratch rebuild.
//!
//! A random sequence of edits — body edits, signature changes, member
//! additions and removals, hierarchy flips, and no-op rewrites — is
//! applied one `Snapshot::apply_update` at a time. After the whole
//! sequence, every query must answer **byte-identically** (rendered
//! exprs, scores, per-term explain breakdowns, and the `QueryOutcome`
//! label) against:
//!
//! 1. a from-scratch compile of the final source (pins end-to-end model
//!    equivalence — additions are constrained to the last-declared class
//!    so both paths mint member ids in the same relative order), and
//! 2. a cold `Snapshot::from_database` over the *incremental* database
//!    (pins surgical cache invalidation alone: whatever survived in the
//!    memo tables must agree with empty caches).
//!
//! The final comparison runs from several threads sharing the one
//! incremental `EngineCache`, so concurrently filled memo cells are
//! exercised too.

use std::sync::Arc;

use proptest::prelude::*;

use pex_core::{Completer, RankConfig};
use pex_model::Context;
use pex_serve::snapshot::Snapshot;

/// Everything the generated corpus can be at one instant. Each class
/// renders to its own compilation unit; the full source is their concat.
#[derive(Debug, Clone, PartialEq)]
struct World {
    /// Which body variant `Alpha.GetSeed` currently has (0..3).
    alpha_body: usize,
    /// `Alpha.Rank()` returns `int` (true) or `double` (false).
    alpha_rank_int: bool,
    /// Whether `Beta` derives from `Alpha`.
    beta_based: bool,
    /// How many `Extra<n>` methods `Gamma` carries (a stack: additions
    /// push, removals pop, so member-id order matches a from-scratch
    /// compile of the final source).
    gamma_extras: usize,
}

impl World {
    fn initial() -> World {
        World {
            alpha_body: 0,
            alpha_rank_int: true,
            beta_based: false,
            gamma_extras: 0,
        }
    }

    fn alpha_unit(&self) -> String {
        let body = match self.alpha_body {
            0 => "return Seed;",
            1 => "return Inc.Alpha.Answer(Seed);",
            _ => "return Inc.Alpha.Answer(Inc.Alpha.Answer(Seed));",
        };
        let rank_ret = if self.alpha_rank_int { "int" } else { "double" };
        format!(
            "namespace Inc {{\n    class Alpha {{\n        int Seed;\n        static int Answer(int x) {{ return x; }}\n        {rank_ret} Rank();\n        int GetSeed() {{ {body} }}\n    }}\n}}\n"
        )
    }

    fn beta_unit(&self) -> String {
        let base = if self.beta_based { " : Alpha" } else { "" };
        format!(
            "namespace Inc {{\n    class Beta{base} {{\n        double Scale;\n        Inc.Beta Pair(Inc.Alpha other);\n    }}\n}}\n"
        )
    }

    fn gamma_unit(&self) -> String {
        let mut members = String::from("        Inc.Alpha First();\n");
        for n in 1..=self.gamma_extras {
            // Alternate shapes so added members genuinely differ.
            if n % 2 == 1 {
                members.push_str(&format!("        Inc.Beta Extra{n}();\n"));
            } else {
                members.push_str(&format!("        int Extra{n}(Inc.Gamma g);\n"));
            }
        }
        format!("namespace Inc {{\n    class Gamma {{\n{members}    }}\n}}\n")
    }

    /// The complete corpus at this instant, for from-scratch compiles.
    fn full_source(&self) -> String {
        format!(
            "{}{}{}",
            self.alpha_unit(),
            self.beta_unit(),
            self.gamma_unit()
        )
    }
}

/// One generated edit step.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Edit {
    /// Rewrite `Alpha.GetSeed`'s body to the given variant (a no-op
    /// rewrite when it already has that variant).
    Body(usize),
    /// Flip `Alpha.Rank`'s return type: a signature change, same id.
    RankFlip,
    /// Toggle `Beta : Alpha`: a hierarchy (and reachability) change.
    BaseToggle,
    /// Append an `Extra<n>` method to `Gamma` (the last-declared class).
    Push,
    /// Remove the most recently added `Extra<n>` (no-op when none).
    Pop,
    /// Resend a unit verbatim: must be a counted no-op.
    NoopRewrite,
}

fn edits() -> impl Strategy<Value = Vec<Edit>> {
    let edit = (0usize..6, 0usize..3).prop_map(|(kind, variant)| match kind {
        0 => Edit::Body(variant),
        1 => Edit::RankFlip,
        2 => Edit::BaseToggle,
        3 => Edit::Push,
        4 => Edit::Pop,
        _ => Edit::NoopRewrite,
    });
    proptest::collection::vec(edit, 1..10)
}

const LOCALS: &[&str] = &["a:Inc.Alpha", "b:Inc.Beta", "g:Inc.Gamma"];

const QUERIES: &[&str] = &[
    "?",
    "a.?f",
    "a.?*m",
    "b.?*f",
    "g.?m",
    "?({a, b})",
    "?({g, a})",
];

/// Renders every query's full answer — outcome label, then per-completion
/// expr, score, and explain terms — as one comparable string per query.
fn answers(snap: &Snapshot, ctx: &Context) -> Vec<String> {
    let completer = Completer::new(&snap.db, ctx, &snap.index, RankConfig::all(), None)
        .with_reach(&snap.reach)
        .with_cache(&snap.cache);
    QUERIES
        .iter()
        .map(|q| match pex_core::parse_partial(&snap.db, ctx, q) {
            Err(e) => format!("{q} => parse error: {e}"),
            Ok(pq) => {
                let (completions, outcome) = completer.complete_with_outcome(&pq, 10);
                let mut line = format!("{q} => {}:", outcome.label());
                for c in &completions {
                    let b = completer
                        .explain(c)
                        .expect("the engine explains its own completions");
                    let terms: String = b
                        .terms
                        .iter()
                        .map(|(t, v)| format!("{}{v}", t.code()))
                        .collect();
                    line.push_str(&format!(" {}#{}[{terms}]", completer.render(c), c.score));
                }
                line
            }
        })
        .collect()
}

fn scratch_snapshot(source: &str) -> Snapshot {
    let db = pex_model::minics::compile(source).expect("final source compiles");
    Snapshot::from_database("scratch".to_owned(), db, Context::empty(), None)
}

fn locals() -> Vec<String> {
    LOCALS.iter().map(|s| (*s).to_owned()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn edited_snapshots_answer_like_a_from_scratch_rebuild(seq in edits()) {
        let mut world = World::initial();
        let mut snap = Arc::new(scratch_snapshot(&world.full_source()));

        for edit in &seq {
            let mut next = world.clone();
            let unit = match edit {
                Edit::Body(v) => {
                    next.alpha_body = *v;
                    next.alpha_unit()
                }
                Edit::RankFlip => {
                    next.alpha_rank_int = !next.alpha_rank_int;
                    next.alpha_unit()
                }
                Edit::BaseToggle => {
                    next.beta_based = !next.beta_based;
                    next.beta_unit()
                }
                Edit::Push => {
                    next.gamma_extras += 1;
                    next.gamma_unit()
                }
                Edit::Pop => {
                    next.gamma_extras = next.gamma_extras.saturating_sub(1);
                    next.gamma_unit()
                }
                Edit::NoopRewrite => world.alpha_unit(),
            };
            let expect_noop = next == world;
            let (patched, stats) = snap
                .apply_update(&unit)
                .unwrap_or_else(|e| panic!("update failed for {edit:?}: {e}\n{unit}"));
            prop_assert_eq!(stats.noop, expect_noop, "noop detection for {:?}", edit);
            if expect_noop {
                // A no-op must leave the snapshot untouched and count
                // zero invalidations.
                prop_assert!(patched.is_none());
                prop_assert_eq!(stats.invalidated.total(), 0);
            } else {
                if matches!(edit, Edit::Body(_)) {
                    // The tentpole guarantee: a signature-identical body
                    // edit invalidates nothing beyond the edited body.
                    prop_assert_eq!(
                        stats.invalidated.total(), 0,
                        "body edit must not invalidate derived state"
                    );
                    prop_assert!(!stats.invalidated.reach_rebuilt);
                }
                snap = Arc::new(patched.expect("non-noop update yields a snapshot"));
            }
            world = next;
        }

        // 1. Byte-identical to a from-scratch compile of the final source.
        let scratch = scratch_snapshot(&world.full_source());
        let scratch_ctx = scratch.context_for(&locals()).unwrap();
        let expected = answers(&scratch, &scratch_ctx);
        let inc_ctx = snap.context_for(&locals()).unwrap();
        prop_assert_eq!(&answers(&snap, &inc_ctx), &expected);

        // 2. Surviving memo entries agree with a cold rebuild over the
        //    *same* database — surgical invalidation kept nothing stale.
        let cold = Snapshot::from_database(
            "cold".to_owned(),
            snap.db.clone(),
            Context::empty(),
            None,
        );
        let cold_ctx = cold.context_for(&locals()).unwrap();
        prop_assert_eq!(&answers(&cold, &cold_ctx), &expected);

        // 3. The same answers hold from threads sharing one EngineCache.
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let snap = Arc::clone(&snap);
                let expected = expected.clone();
                std::thread::spawn(move || {
                    let ctx = snap.context_for(&locals()).unwrap();
                    assert_eq!(answers(&snap, &ctx), expected);
                })
            })
            .collect();
        for w in workers {
            w.join().expect("worker thread panicked");
        }
    }
}
