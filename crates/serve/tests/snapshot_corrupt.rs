//! Hostile-input suite for the `pex-snapshot/1` loader: a snapshot file
//! is untrusted bytes, and the daemon is `forbid(unsafe_code)` — every
//! truncation, bit-flip and header forgery must surface as a clean,
//! human-readable `Err`, never a panic, a hang, or a silently wrong
//! snapshot.

use pex_serve::{persist, Snapshot, SnapshotSource};

fn paint_bytes() -> Vec<u8> {
    let snapshot = Snapshot::load(&SnapshotSource::Paint).unwrap();
    persist::to_bytes(&snapshot)
}

#[test]
fn every_truncation_is_a_clean_error() {
    let bytes = paint_bytes();
    for k in 0..bytes.len() {
        let err = persist::from_bytes(&bytes[..k])
            .err()
            .unwrap_or_else(|| panic!("truncation to {k} bytes decoded successfully"));
        assert!(!err.is_empty(), "truncation to {k}: empty error message");
    }
}

#[test]
fn every_single_bit_flip_is_a_clean_error() {
    let bytes = paint_bytes();
    // One flipped bit per byte offset (rotating which bit) covers the
    // whole file: header, section table and payload. The payload region
    // is guarded by the checksum; the header and table by validation.
    for offset in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[offset] ^= 1 << (offset % 8);
        let result = persist::from_bytes(&bad);
        assert!(
            result.is_err(),
            "bit flip at byte {offset} decoded successfully"
        );
    }
}

#[test]
fn future_versions_are_rejected_with_guidance() {
    let mut bytes = paint_bytes();
    // The version field sits right after the 8 magic bytes (u32 LE).
    let future = persist::VERSION + 1;
    bytes[8..12].copy_from_slice(&future.to_le_bytes());
    let err = persist::from_bytes(&bytes).unwrap_err();
    assert!(
        err.contains(&format!("unsupported snapshot version {future}")),
        "{err}"
    );
    assert!(err.contains("--save-snapshot"), "{err}");
}

#[test]
fn foreign_files_are_rejected_by_magic() {
    let err = persist::from_bytes(b"PNG\r\n\x1a\nnot a snapshot at all").unwrap_err();
    assert!(err.contains("magic"), "{err}");
    let err = persist::from_bytes(&[]).unwrap_err();
    assert!(!err.is_empty());
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut bytes = paint_bytes();
    bytes.extend_from_slice(b"garbage");
    let err = persist::from_bytes(&bytes).unwrap_err();
    assert!(err.contains("trailing"), "{err}");
}

#[test]
fn checksum_catches_silent_payload_swaps() {
    // Swap two distinct payload bytes: lengths all stay valid, so only
    // the checksum can notice. (Find two differing bytes near the end —
    // the payload region — and swap them.)
    let bytes = paint_bytes();
    let payload_start = bytes.len() - 100;
    let mut swapped = None;
    for i in payload_start..bytes.len() {
        for j in (i + 1)..bytes.len() {
            if bytes[i] != bytes[j] {
                swapped = Some((i, j));
                break;
            }
        }
        if swapped.is_some() {
            break;
        }
    }
    let (i, j) = swapped.expect("payload has two differing bytes");
    let mut bad = bytes;
    bad.swap(i, j);
    let err = persist::from_bytes(&bad).unwrap_err();
    assert!(err.contains("checksum") || err.contains("corrupt"), "{err}");
}

#[test]
fn missing_file_errors_cleanly() {
    let err = persist::load(std::path::Path::new("/nonexistent/dir/x.pexsnap")).unwrap_err();
    assert!(err.contains("cannot read"), "{err}");
}
