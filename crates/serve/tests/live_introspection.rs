//! End-to-end tests of the daemon's live introspection surface against
//! the real `pex-serve` binary: `stats`, `health`, `"trace": true`,
//! `"explain": true`, and the periodic `--metrics-interval-s` flush.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use pex_serve::json::{self, Value};

fn spawn(args: &[&str]) -> (Child, BufReader<ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pex-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pex-serve");
    let reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    (child, reader)
}

fn send(child: &mut Child, line: &str) {
    let stdin = child.stdin.as_mut().expect("stdin piped");
    writeln!(stdin, "{line}").expect("write request");
    stdin.flush().expect("flush request");
}

fn recv(reader: &mut BufReader<ChildStdout>) -> Value {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "server closed stdout unexpectedly");
    json::parse(line.trim_end()).unwrap_or_else(|e| panic!("bad JSON ({e}): {line}"))
}

fn wait_exit(mut child: Child) -> i32 {
    for _ in 0..100 {
        if let Some(status) = child.try_wait().expect("wait on child") {
            return status.code().expect("exit code");
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    child.kill().ok();
    panic!("pex-serve did not exit within 10s of stdin EOF");
}

fn u(v: &Value, key: &str) -> u64 {
    v.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing uint `{key}` in {v}"))
}

#[test]
fn explain_breakdowns_sum_exactly_and_trace_returns_the_span_tree() {
    let (mut child, mut reader) = spawn(&["paint", "--workers", "2"]);

    // Explain: every completion carries a six-term breakdown that sums
    // integer-exactly to its score.
    send(
        &mut child,
        r#"{"id":1,"query":"?({img, size})","limit":5,"explain":true}"#,
    );
    let doc = recv(&mut reader);
    assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{doc}");
    let Some(Value::Arr(completions)) = doc.get("completions") else {
        panic!("completions expected: {doc}")
    };
    assert!(!completions.is_empty());
    for c in completions {
        let explain = c.get("explain").unwrap_or_else(|| panic!("explain: {c}"));
        let sum: u64 = ["n", "s", "d", "m", "t", "a"]
            .iter()
            .map(|k| u(explain, k))
            .sum();
        assert_eq!(sum, u(c, "score"), "terms must sum to the score: {c}");
        assert_eq!(u(explain, "total"), u(c, "score"));
    }

    // Trace: a client-supplied trace_id is echoed, the span tree includes
    // the engine's `query` span, and the best-first stats are per-query.
    send(
        &mut child,
        r#"{"id":2,"query":"?","limit":5,"trace":true,"trace_id":"t-itest-1"}"#,
    );
    let doc = recv(&mut reader);
    assert_eq!(
        doc.get("trace_id").and_then(Value::as_str),
        Some("t-itest-1"),
        "{doc}"
    );
    let trace = doc.get("trace").unwrap_or_else(|| panic!("trace: {doc}"));
    let Some(Value::Arr(spans)) = trace.get("spans") else {
        panic!("spans expected: {doc}")
    };
    assert!(
        spans
            .iter()
            .any(|s| s.get("name").and_then(Value::as_str) == Some("query")),
        "query span in the tree: {doc}"
    );
    let search = trace
        .get("search")
        .unwrap_or_else(|| panic!("search: {doc}"));
    assert!(u(search, "expanded") > 0, "{doc}");

    // Untraced requests still get a generated trace_id.
    send(&mut child, r#"{"id":3,"query":"?","limit":1}"#);
    let doc = recv(&mut reader);
    let generated = doc.get("trace_id").and_then(Value::as_str).unwrap();
    assert!(generated.starts_with("t-"), "{doc}");
    assert!(doc.get("trace").is_none());

    drop(child.stdin.take());
    assert_eq!(wait_exit(child), 0);
}

#[test]
fn stats_and_health_report_live_windows_and_the_accounting_identity() {
    let (mut child, mut reader) = spawn(&["paint", "--workers", "2", "--slo-p99-us", "1"]);
    for i in 0..3 {
        send(
            &mut child,
            &format!("{{\"id\":{i},\"query\":\"?\",\"limit\":3}}"),
        );
        let doc = recv(&mut reader);
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{doc}");
    }

    send(&mut child, r#"{"id":10,"cmd":"stats"}"#);
    let doc = recv(&mut reader);
    let stats = doc.get("stats").unwrap_or_else(|| panic!("stats: {doc}"));
    let w60 = stats.get("windows").and_then(|w| w.get("60s")).unwrap();
    assert_eq!(u(w60, "count"), 3, "three queries in the window: {doc}");
    assert!(u(w60, "p99_us") >= u(w60, "p50_us"), "{doc}");
    let metrics = stats.get("metrics").unwrap();
    assert_eq!(
        metrics
            .get("counters")
            .and_then(|c| c.get("serve.requests.ok"))
            .and_then(Value::as_u64),
        Some(3),
        "{doc}"
    );

    send(&mut child, r#"{"id":11,"cmd":"health"}"#);
    let doc = recv(&mut reader);
    let health = doc.get("health").unwrap_or_else(|| panic!("health: {doc}"));
    let requests = health.get("requests").unwrap();
    // 3 queries + stats answered, health itself still pending.
    assert_eq!(u(requests, "received"), 5, "{doc}");
    assert_eq!(u(requests, "pending"), 1, "{doc}");
    assert_eq!(
        u(requests, "received"),
        u(requests, "ok")
            + u(requests, "degraded")
            + u(requests, "shed")
            + u(requests, "errors")
            + u(requests, "pending"),
        "accounting identity: {doc}"
    );
    // A 1µs SLO must be burning after real queries (none completes that
    // fast), proving the flag reads the live window.
    let slo = health.get("slo").unwrap();
    assert_eq!(slo.get("burning"), Some(&Value::Bool(true)), "{doc}");
    assert_eq!(u(slo, "threshold_us"), 1);

    drop(child.stdin.take());
    assert_eq!(wait_exit(child), 0);
}

#[test]
fn metrics_interval_flushes_a_parseable_document_while_serving() {
    let dir = std::env::temp_dir().join(format!("pex-serve-itest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let (mut child, mut reader) = spawn(&[
        "paint",
        "--metrics-out",
        path.to_str().unwrap(),
        "--metrics-interval-s",
        "1",
    ]);
    send(&mut child, r#"{"id":1,"query":"?","limit":3}"#);
    let _ = recv(&mut reader);
    // The daemon is still running (shutdown not requested) when the
    // first interval fires — the old code only wrote at clean exit.
    let mut live_doc = None;
    for _ in 0..80 {
        if let Ok(text) = std::fs::read_to_string(&path) {
            live_doc = Some(text);
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let live_doc = live_doc.expect("periodic flush wrote the metrics file while serving");
    let parsed = json::parse(live_doc.trim()).expect("flushed document parses");
    assert_eq!(
        parsed.get("schema").and_then(Value::as_str),
        Some("pex-serve-metrics/1")
    );

    drop(child.stdin.take());
    assert_eq!(wait_exit(child), 0);
    // The shutdown write still happens and reflects the full run.
    let final_doc = json::parse(std::fs::read_to_string(&path).unwrap().trim()).unwrap();
    let ok = final_doc
        .get("metrics")
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get("serve.requests.ok"))
        .and_then(Value::as_u64);
    assert_eq!(ok, Some(1), "{final_doc}");
    std::fs::remove_dir_all(&dir).ok();
}
