//! End-to-end tests of the `pex-serve` binary over its stdin/stdout
//! transport: real process, real pipes, real JSON-lines framing.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

fn spawn(args: &[&str]) -> (Child, BufReader<ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pex-serve"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pex-serve");
    let reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    (child, reader)
}

fn send(child: &mut Child, line: &str) {
    let stdin = child.stdin.as_mut().expect("stdin piped");
    writeln!(stdin, "{line}").expect("write request");
    stdin.flush().expect("flush request");
}

fn recv(reader: &mut BufReader<ChildStdout>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "server closed stdout unexpectedly");
    line.trim_end().to_owned()
}

fn wait_exit(mut child: Child) -> i32 {
    // The process must exit promptly once stdin is closed; don't hang the
    // test suite if it regresses.
    for _ in 0..100 {
        if let Some(status) = child.try_wait().expect("wait on child") {
            return status.code().expect("exit code");
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    child.kill().ok();
    panic!("pex-serve did not exit within 10s of stdin EOF");
}

#[test]
fn answers_a_well_formed_query_with_a_ranked_completion() {
    let (mut child, mut reader) = spawn(&["paint", "--workers", "2"]);
    send(&mut child, r#"{"id":1,"query":"?({img, size})","limit":3}"#);
    let resp = recv(&mut reader);
    assert!(resp.contains("\"id\":1"), "{resp}");
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(
        resp.contains("ResizeDocument(img, size, 0, 0)"),
        "the paper's #1 completion must appear: {resp}"
    );
    drop(child.stdin.take()); // EOF begins the graceful drain
    assert_eq!(wait_exit(child), 0);
}

#[test]
fn malformed_requests_get_an_error_response_not_a_crash() {
    let (mut child, mut reader) = spawn(&["paint"]);
    send(&mut child, "this is not json");
    let resp = recv(&mut reader);
    assert!(resp.contains("\"error\":\"bad_request\""), "{resp}");
    // The process is still alive and serving.
    send(&mut child, r#"{"id":2,"cmd":"ping"}"#);
    let resp = recv(&mut reader);
    assert!(resp.contains("\"pong\":true"), "{resp}");
    drop(child.stdin.take());
    assert_eq!(wait_exit(child), 0);
}

#[test]
fn zero_deadline_is_reported_as_a_degraded_deadline_outcome() {
    let (mut child, mut reader) = spawn(&["paint"]);
    send(&mut child, r#"{"id":3,"query":"?","deadline_ms":0}"#);
    let resp = recv(&mut reader);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"outcome\":\"deadline\""), "{resp}");
    assert!(resp.contains("\"degraded\":true"), "{resp}");
    drop(child.stdin.take());
    assert_eq!(wait_exit(child), 0);
}

#[test]
fn shutdown_command_drains_and_exits_zero() {
    let (mut child, mut reader) = spawn(&["paint"]);
    send(&mut child, r#"{"id":1,"cmd":"shutdown"}"#);
    let resp = recv(&mut reader);
    assert!(resp.contains("\"shutdown\":true"), "{resp}");
    assert_eq!(wait_exit(child), 0);
}

#[test]
fn unknown_flags_exit_2_with_usage() {
    let out = Command::new(env!("CARGO_BIN_EXE_pex-serve"))
        .arg("--definitely-not-a-flag")
        .output()
        .expect("run pex-serve");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown flag"), "{err}");
    assert!(err.contains("USAGE"), "{err}");
}
