//! End-to-end tests of the `pex-serve` Unix-socket transport: a real
//! process, real connections, and the startup/shutdown lifecycle around
//! the socket path — stale-socket takeover, live-daemon refusal, the
//! `--max-connections` cap, and handle reaping under connection churn.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// A unique socket path per test, short enough for `sockaddr_un`.
fn socket_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pex-{tag}-{}.sock", std::process::id()))
}

fn spawn_daemon(socket: &Path, extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_pex-serve"))
        .arg("paint")
        .args(["--workers", "2", "--socket"])
        .arg(socket)
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pex-serve")
}

/// Polls until the daemon accepts connections on `socket`.
fn connect_ready(socket: &Path) -> UnixStream {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match UnixStream::connect(socket) {
            Ok(s) => return s,
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            Err(e) => panic!("daemon never listened on {}: {e}", socket.display()),
        }
    }
}

/// One request/response round trip over its own connection.
fn roundtrip(socket: &Path, line: &str) -> String {
    let mut stream = connect_ready(socket);
    writeln!(stream, "{line}").expect("write request");
    stream.flush().expect("flush request");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    assert!(!resp.is_empty(), "connection closed without a response");
    resp.trim_end().to_owned()
}

fn wait_exit(mut child: Child) -> i32 {
    for _ in 0..100 {
        if let Some(status) = child.try_wait().expect("wait on child") {
            return status.code().expect("exit code");
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    child.kill().ok();
    panic!("pex-serve did not exit within 10s");
}

fn shutdown(mut child: Child, socket: &Path) {
    drop(child.stdin.take()); // EOF on stdin begins the graceful drain
    assert_eq!(wait_exit(child), 0);
    assert!(
        !socket.exists(),
        "daemon removes its socket on clean shutdown"
    );
}

#[test]
fn connection_churn_answers_every_client_and_exits_clean() {
    let socket = socket_path("churn");
    let child = spawn_daemon(&socket, &[]);
    connect_ready(&socket);
    // Many short-lived connections, several at a time: with per-iteration
    // reaping the daemon holds one handle per *live* connection, and
    // every client still gets its answer.
    for round in 0..10 {
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let socket = socket.clone();
                std::thread::spawn(move || {
                    roundtrip(
                        &socket,
                        &format!(
                            r#"{{"id":{},"query":"?({{img, size}})","limit":3}}"#,
                            round * 4 + i
                        ),
                    )
                })
            })
            .collect();
        for t in threads {
            let resp = t.join().expect("client thread");
            assert!(resp.contains("\"ok\":true"), "{resp}");
        }
    }
    shutdown(child, &socket);
}

#[test]
fn connection_cap_sheds_with_a_clean_error_line() {
    let socket = socket_path("cap");
    let child = spawn_daemon(&socket, &["--max-connections", "1"]);
    // Hold one connection open so the cap is reached...
    let held = connect_ready(&socket);
    // ...then the next connection gets one explicit error line, not a
    // hang and not a silent close.
    let resp = roundtrip(&socket, r#"{"id":9,"cmd":"ping"}"#);
    assert!(resp.contains("\"error\":\"connection_limit\""), "{resp}");
    assert!(resp.contains("\"ok\":false"), "{resp}");
    // Releasing the held connection frees a slot for new clients.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let resp = roundtrip(&socket, r#"{"id":10,"cmd":"ping"}"#);
        if resp.contains("\"pong\":true") {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slot never freed after client disconnect: {resp}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    shutdown(child, &socket);
}

#[test]
fn stale_socket_is_unlinked_and_taken_over() {
    let socket = socket_path("stale");
    // A listener that binds and dies without cleanup leaves a socket file
    // nothing accepts on — exactly what a crashed daemon leaves behind.
    drop(UnixListener::bind(&socket).expect("bind stale socket"));
    assert!(socket.exists(), "stale socket file is on disk");
    let child = spawn_daemon(&socket, &[]);
    let resp = roundtrip(&socket, r#"{"id":1,"cmd":"ping"}"#);
    assert!(resp.contains("\"pong\":true"), "{resp}");
    shutdown(child, &socket);
}

#[test]
fn live_socket_is_refused_with_address_in_use() {
    let socket = socket_path("live");
    let first = spawn_daemon(&socket, &[]);
    connect_ready(&socket);
    // A second daemon pointed at the same socket must not steal it.
    let out = Command::new(env!("CARGO_BIN_EXE_pex-serve"))
        .arg("paint")
        .arg("--socket")
        .arg(&socket)
        .output()
        .expect("run second pex-serve");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("address in use"), "{err}");
    // The first daemon is untouched and still serving.
    let resp = roundtrip(&socket, r#"{"id":2,"cmd":"ping"}"#);
    assert!(resp.contains("\"pong\":true"), "{resp}");
    shutdown(first, &socket);
}

#[test]
fn refuses_to_replace_a_path_that_is_not_a_socket() {
    let socket = socket_path("notasock");
    std::fs::write(&socket, b"precious data\n").expect("plant a regular file");
    let out = Command::new(env!("CARGO_BIN_EXE_pex-serve"))
        .arg("paint")
        .arg("--socket")
        .arg(&socket)
        .output()
        .expect("run pex-serve");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("not a socket"), "{err}");
    assert_eq!(
        std::fs::read(&socket).expect("file survives"),
        b"precious data\n",
        "the daemon must not delete files it did not create"
    );
    std::fs::remove_file(&socket).ok();
}
