//! End-to-end tests of the multi-tenant registry through the real
//! binary: project routing against `--snapshot-dir`, hot swap via
//! `{"cmd":"reload"}` with zero dropped requests under concurrent load,
//! and per-tenant accounting in the introspection commands.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use pex_serve::{persist, Snapshot, SnapshotSource};

/// A fresh directory holding a `geo.pexsnap` tenant snapshot, built with
/// the same persistence codec the daemon's lazy loader reads.
fn snapshot_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pex-mt-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let geo = Snapshot::load(&SnapshotSource::Geometry).expect("geometry snapshot");
    persist::save(&geo, &dir.join("geo.pexsnap")).expect("save geo.pexsnap");
    dir
}

fn spawn_daemon(dir: &std::path::Path) -> (Child, BufReader<ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_pex-serve"))
        .arg("paint")
        .args(["--workers", "2", "--queue-cap", "128", "--snapshot-dir"])
        .arg(dir)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn pex-serve");
    let reader = BufReader::new(child.stdout.take().expect("stdout piped"));
    (child, reader)
}

fn send(child: &mut Child, line: &str) {
    let stdin = child.stdin.as_mut().expect("stdin piped");
    writeln!(stdin, "{line}").expect("write request");
    stdin.flush().expect("flush request");
}

fn recv(reader: &mut BufReader<ChildStdout>) -> String {
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    assert!(!line.is_empty(), "server closed stdout unexpectedly");
    line.trim_end().to_owned()
}

fn wait_exit(mut child: Child) -> i32 {
    for _ in 0..100 {
        if let Some(status) = child.try_wait().expect("wait on child") {
            return status.code().expect("exit code");
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    child.kill().ok();
    panic!("pex-serve did not exit within 10s of stdin EOF");
}

#[test]
fn routes_projects_lazily_from_the_snapshot_dir() {
    let dir = snapshot_dir("route");
    let (mut child, mut reader) = spawn_daemon(&dir);

    // No project field: the default (paint) tenant, byte-for-byte the
    // single-tenant protocol.
    send(&mut child, r#"{"id":1,"query":"?({img, size})","limit":3}"#);
    let resp = recv(&mut reader);
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("ResizeDocument(img, size, 0, 0)"), "{resp}");

    // project "geo" faults in geo.pexsnap on first use and serves from it.
    send(
        &mut child,
        r#"{"id":2,"project":"geo","query":"?","limit":3}"#,
    );
    let resp = recv(&mut reader);
    assert!(resp.contains("\"id\":2"), "{resp}");
    assert!(resp.contains("\"ok\":true"), "{resp}");

    // A project with no snapshot on disk is a clean protocol error.
    send(&mut child, r#"{"id":3,"project":"nope","query":"?"}"#);
    let resp = recv(&mut reader);
    assert!(resp.contains("\"error\":\"unknown_project\""), "{resp}");

    // stats reports the resident tenants with their request accounting.
    send(&mut child, r#"{"id":4,"cmd":"stats"}"#);
    let resp = recv(&mut reader);
    assert!(resp.contains("\"tenants\""), "{resp}");
    assert!(resp.contains("\"geo\""), "{resp}");
    assert!(resp.contains("\"default\""), "{resp}");

    drop(child.stdin.take());
    assert_eq!(wait_exit(child), 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn hot_swap_drops_no_requests_under_concurrent_load() {
    let dir = snapshot_dir("swap");
    let (mut child, mut reader) = spawn_daemon(&dir);

    // Queries stream in back-to-back with reloads of both the default
    // tenant and the geo tenant interleaved mid-stream, so requests are
    // in flight on the old snapshots while the Arcs flip. Every line must
    // come back answered — the accounting identity allows no drops.
    const QUERIES: usize = 40;
    for k in 0..QUERIES {
        if k == 10 {
            send(&mut child, r#"{"id":"swap-default","cmd":"reload"}"#);
        }
        if k == 20 {
            send(
                &mut child,
                r#"{"id":"swap-geo","cmd":"reload","project":"geo"}"#,
            );
        }
        let line = if k % 3 == 0 {
            format!(r#"{{"id":"q{k}","project":"geo","query":"?","limit":3}}"#)
        } else {
            format!(r#"{{"id":"q{k}","query":"?({{img, size}})","limit":3}}"#)
        };
        send(&mut child, &line);
    }

    let mut answered = std::collections::HashSet::new();
    let mut swaps = 0;
    while answered.len() < QUERIES || swaps < 2 {
        let resp = recv(&mut reader);
        assert!(resp.contains("\"ok\":true"), "dropped or failed: {resp}");
        if resp.contains("\"reloaded\":") {
            assert!(resp.contains("\"swapped\":true"), "{resp}");
            swaps += 1;
            continue;
        }
        let id = resp
            .split("\"id\":\"q")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
            .and_then(|n| n.parse::<usize>().ok())
            .unwrap_or_else(|| panic!("unexpected response: {resp}"));
        assert!(answered.insert(id), "duplicate answer for q{id}: {resp}");
    }
    assert_eq!(answered.len(), QUERIES, "every query answered exactly once");

    // The swapped snapshots keep serving correct answers afterwards.
    send(
        &mut child,
        r#"{"id":"after","query":"?({img, size})","limit":3}"#,
    );
    let resp = recv(&mut reader);
    assert!(resp.contains("ResizeDocument(img, size, 0, 0)"), "{resp}");

    drop(child.stdin.take());
    assert_eq!(wait_exit(child), 0);
    std::fs::remove_dir_all(&dir).ok();
}
