//! The JSON-lines request/response protocol and its execution semantics.
//!
//! One request per line, one response per line. Responses carry the
//! request's `id` verbatim (any JSON value), so clients may pipeline
//! requests and match answers out of order.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "query": "?({img, size})", "limit": 5, "deadline_ms": 40}
//! {"id": 2, "query": "p.?f", "locals": ["p:Geo.Point"]}
//! {"id": 3, "query": "?", "trace": true, "explain": true, "trace_id": "t-ide-77"}
//! {"id": 4, "query": "?", "project": "geometry-v2"}
//! {"id": 5, "cmd": "ping"}
//! {"id": 6, "cmd": "stats"}
//! {"id": 7, "cmd": "health"}
//! {"id": 8, "cmd": "reload", "project": "geometry-v2"}
//! {"id": 9, "cmd": "update", "source": "namespace Geo { class Point { int X; } }"}
//! {"id": 10, "cmd": "update", "project": "geometry-v2", "edits": ["...", "..."]}
//! {"cmd": "shutdown"}
//! ```
//!
//! `limit`, `deadline_ms`, `max_steps`, `max_depth`, and `locals` are
//! optional; omitted fields fall back to the server's
//! [`RequestDefaults`]. `max_depth` caps lookup-chain length per query
//! (up to the engine limit) and is rejected as `bad_request` beyond it.
//!
//! `project` selects a tenant from the server's
//! [`SnapshotRegistry`](crate::registry::SnapshotRegistry); when absent
//! the request runs against the default tenant and the response is
//! byte-compatible with the single-tenant protocol. `{"cmd":"reload"}`
//! hot-swaps the named tenant's snapshot (or the default when no
//! `project` is given) without dropping in-flight requests.
//!
//! Introspection fields: every query response echoes a `trace_id`
//! (client-supplied, or generated when absent). `"trace": true`
//! additionally returns the request's span tree and per-query best-first
//! search stats inline; `"explain": true` attaches the per-term score
//! breakdown (the six Figure 7 ranking terms, summing exactly to the
//! score) to each completion. The `stats` and `health` commands are
//! answered by the worker pool from the live registry (see
//! [`crate::obs_json`]).
//!
//! ## Responses
//!
//! ```json
//! {"id":1,"ok":true,"outcome":"limit","degraded":false,"latency_us":812,
//!  "completions":[{"expr":"ResizeDocument(img, size, 0, 0)","score":2}]}
//! {"id":9,"ok":false,"error":"parse","message":"..."}
//! ```
//!
//! Every failure mode has an explicit `error` kind: `bad_request`
//! (malformed JSON or an unusable field), `parse` (the partial-expression
//! query did not parse), `shed` (admission control refused the request),
//! `unknown_project` (the `project` id is invalid or has no snapshot),
//! `reload_failed` (a `reload` could not rebuild the tenant — the old
//! snapshot keeps serving), `dirty` (a plain `reload` refused because
//! the tenant carries unsaved incremental edits; retry with
//! `"force":true`), `parse_error` (an `update`'s mini-C# source did not
//! parse or resolve — the response carries 1-based `line` and `col` and
//! the snapshot is untouched), `update_failed` (any other `update`
//! failure), `connection_limit` (the socket transport is at
//! `--max-connections`), and `shutdown` (the server is draining). A
//! request is **never** dropped without a response on a live connection.

use std::time::{Duration, Instant};

use pex_abstract::AbsTypes;
use pex_core::{CancelToken, CompleteOptions, Completer, QueryBudget, RankConfig};

use crate::json::{self, Value};
use crate::snapshot::Snapshot;

/// Server-side fallbacks for optional request fields.
#[derive(Debug, Clone)]
pub struct RequestDefaults {
    /// Completions returned when the request has no `limit`.
    pub limit: usize,
    /// Wall-clock deadline applied when the request has no `deadline_ms`.
    pub deadline_ms: Option<u64>,
    /// Step budget applied when the request has no `max_steps`.
    pub max_steps: usize,
}

impl Default for RequestDefaults {
    fn default() -> Self {
        RequestDefaults {
            limit: 10,
            deadline_ms: None,
            max_steps: QueryBudget::default().max_steps,
        }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A completion query.
    Query(QueryRequest),
    /// Liveness probe; answered with `{"ok":true,"pong":true}`.
    Ping {
        /// Echoed request id.
        id: Option<Value>,
    },
    /// Live registry snapshot plus rolling-window percentiles.
    Stats {
        /// Echoed request id.
        id: Option<Value>,
    },
    /// Queue depth, windowed shed rate, and the SLO-burn flag.
    Health {
        /// Echoed request id.
        id: Option<Value>,
    },
    /// Hot-swap a tenant's snapshot (the default tenant when `project`
    /// is `None`); in-flight requests drain against the old snapshot.
    Reload {
        /// Echoed request id.
        id: Option<Value>,
        /// The tenant to reload; `None` reloads the default tenant.
        project: Option<String>,
        /// Discard unsaved incremental edits instead of refusing.
        force: bool,
    },
    /// Apply incremental mini-C# edits to a tenant's snapshot with
    /// surgical cache invalidation; the batch is atomic.
    Update {
        /// Echoed request id.
        id: Option<Value>,
        /// The tenant to edit; `None` edits the default tenant.
        project: Option<String>,
        /// The edited compilation units, applied in order.
        edits: Vec<String>,
    },
    /// Graceful-shutdown request: drain in-flight work, then exit.
    Shutdown {
        /// Echoed request id.
        id: Option<Value>,
    },
}

/// How a handled request resolved — the worker pool's accounting signal
/// for the `serve.requests.{ok,degraded,error}` counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Answered successfully, with a complete (non-degraded) result.
    Ok,
    /// Answered successfully, but the enumeration was cut short by a
    /// deadline, budget, or cancellation.
    Degraded,
    /// Answered with an error response.
    Error,
}

/// The payload of a [`Request::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Client-chosen id, echoed on the response.
    pub id: Option<Value>,
    /// Tenant/project id; `None` targets the default tenant.
    pub project: Option<String>,
    /// Partial-expression surface syntax (the paper's Figure 5(b)).
    pub query: String,
    /// Result cap for this request.
    pub limit: Option<usize>,
    /// Per-request wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-request step budget.
    pub max_steps: Option<usize>,
    /// Per-request chain-depth cap (validated against
    /// [`pex_core::MAX_DEPTH_LIMIT`] at execution time).
    pub max_depth: Option<usize>,
    /// `name:Qualified.Type` local declarations replacing the snapshot's
    /// default context.
    pub locals: Vec<String>,
    /// Client-supplied trace id; generated when absent. Echoed on the
    /// response either way.
    pub trace_id: Option<String>,
    /// Return the request's span tree and per-query search stats inline.
    pub trace: bool,
    /// Attach a per-term score breakdown to each completion.
    pub explain: bool,
}

impl QueryRequest {
    /// The in-flight coalescing identity: two requests with the same key
    /// would run the identical engine computation, so a follower can share
    /// the leader's response body. `None` means this request must run
    /// alone: traced/explained requests carry per-run artefacts, and a
    /// client-supplied `trace_id` must be echoed verbatim, not shared.
    pub fn coalesce_key(&self) -> Option<String> {
        if self.trace || self.explain || self.trace_id.is_some() {
            return None;
        }
        // Netstring framing: each component is length-prefixed, so no
        // crafted field content (a JSON \u0001 escape survives parsing)
        // can alias two distinct requests onto one key.
        let mut key = String::new();
        let mut push = |part: &str| {
            key.push_str(&part.len().to_string());
            key.push(':');
            key.push_str(part);
            key.push('\u{1}');
        };
        push(self.project.as_deref().unwrap_or(""));
        push(&self.query);
        push(&self.limit.map(|v| v.to_string()).unwrap_or_default());
        push(&self.deadline_ms.map(|v| v.to_string()).unwrap_or_default());
        push(&self.max_steps.map(|v| v.to_string()).unwrap_or_default());
        push(&self.max_depth.map(|v| v.to_string()).unwrap_or_default());
        for local in &self.locals {
            push(local);
        }
        Some(key)
    }
}

/// Parses one request line. `Err` carries `(echoed id, message)` for the
/// `bad_request` response; the id is recovered when the line is valid JSON
/// with an `id` field even if the rest of the request is unusable.
pub fn parse_request(line: &str) -> Result<Request, (Option<Value>, String)> {
    let doc = json::parse(line).map_err(|e| (None, format!("invalid JSON: {e}")))?;
    let id = doc.get("id").cloned();
    if !matches!(doc, Value::Obj(_)) {
        return Err((id, "request must be a JSON object".to_owned()));
    }
    let project = match doc.get("project") {
        None | Some(Value::Null) => None,
        Some(v) => match v.as_str() {
            Some(s) => Some(s.to_owned()),
            None => return Err((id, "`project` must be a string".to_owned())),
        },
    };
    if let Some(cmd) = doc.get("cmd") {
        return match cmd.as_str() {
            Some("ping") => Ok(Request::Ping { id }),
            Some("stats") => Ok(Request::Stats { id }),
            Some("health") => Ok(Request::Health { id }),
            Some("reload") => {
                let force = match doc.get("force") {
                    None | Some(Value::Null) => false,
                    Some(Value::Bool(b)) => *b,
                    Some(_) => return Err((id, "`force` must be a boolean".to_owned())),
                };
                Ok(Request::Reload { id, project, force })
            }
            Some("update") => {
                let edits = match (doc.get("source"), doc.get("edits")) {
                    (Some(src), None) => match src.as_str() {
                        Some(s) => vec![s.to_owned()],
                        None => return Err((id, "`source` must be a string".to_owned())),
                    },
                    (None, Some(Value::Arr(items))) => {
                        let mut out = Vec::new();
                        for item in items {
                            match item.as_str() {
                                Some(s) => out.push(s.to_owned()),
                                None => {
                                    return Err((id, "`edits` entries must be strings".to_owned()))
                                }
                            }
                        }
                        out
                    }
                    (None, Some(_)) => {
                        return Err((id, "`edits` must be an array of strings".to_owned()))
                    }
                    (Some(_), Some(_)) => {
                        return Err((id, "pass either `source` or `edits`, not both".to_owned()))
                    }
                    (None, None) => {
                        return Err((
                            id,
                            "update requires a `source` string or an `edits` array".to_owned(),
                        ))
                    }
                };
                // `unit` (the edited class, LSP-style) is accepted and
                // ignored: the unit's own declarations say what changed.
                Ok(Request::Update { id, project, edits })
            }
            Some("shutdown") => Ok(Request::Shutdown { id }),
            _ => Err((id, format!("unknown cmd {cmd}"))),
        };
    }
    let Some(query) = doc.get("query") else {
        return Err((id, "missing `query` (or `cmd`) field".to_owned()));
    };
    let Some(query) = query.as_str() else {
        return Err((id, "`query` must be a string".to_owned()));
    };
    let uint = |field: &str| -> Result<Option<u64>, (Option<Value>, String)> {
        match doc.get(field) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                (
                    id.clone(),
                    format!("`{field}` must be a non-negative integer"),
                )
            }),
        }
    };
    let flag = |field: &str| -> Result<bool, (Option<Value>, String)> {
        match doc.get(field) {
            None | Some(Value::Null) => Ok(false),
            Some(Value::Bool(b)) => Ok(*b),
            Some(_) => Err((id.clone(), format!("`{field}` must be a boolean"))),
        }
    };
    let limit = uint("limit")?.map(|n| n as usize);
    let deadline_ms = uint("deadline_ms")?;
    let max_steps = uint("max_steps")?.map(|n| n as usize);
    let max_depth = uint("max_depth")?.map(|n| n as usize);
    let trace = flag("trace")?;
    let explain = flag("explain")?;
    let trace_id = match doc.get("trace_id") {
        None | Some(Value::Null) => None,
        Some(v) => match v.as_str() {
            Some(s) => Some(s.to_owned()),
            None => return Err((id, "`trace_id` must be a string".to_owned())),
        },
    };
    let locals = match doc.get("locals") {
        None | Some(Value::Null) => Vec::new(),
        Some(Value::Arr(items)) => {
            let mut out = Vec::new();
            for item in items {
                match item.as_str() {
                    Some(s) => out.push(s.to_owned()),
                    None => {
                        return Err((id, "`locals` entries must be strings".to_owned()));
                    }
                }
            }
            out
        }
        Some(_) => return Err((id, "`locals` must be an array of strings".to_owned())),
    };
    Ok(Request::Query(QueryRequest {
        id,
        project,
        query: query.to_owned(),
        limit,
        deadline_ms,
        max_steps,
        max_depth,
        locals,
        trace_id,
        trace,
        explain,
    }))
}

fn id_field(id: Option<&Value>) -> String {
    match id {
        Some(v) => format!("\"id\":{v},"),
        None => String::new(),
    }
}

/// Renders an error response *body* — everything after the opening brace
/// and the `id` field (see [`assemble_response`]).
pub fn error_rest(kind: &str, message: &str) -> String {
    format!(
        "\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        json::escape(kind),
        json::escape(message)
    )
}

/// Renders an error response of the given kind.
pub fn error_response(id: Option<&Value>, kind: &str, message: &str) -> String {
    assemble_response(id, &error_rest(kind, message))
}

/// Prepends the per-request `id` to a response body rendered by
/// [`execute_rest`] or [`error_rest`]. Coalesced twins share one body and
/// differ only in this prefix, so the single-request rendering is
/// byte-identical to the pre-coalescing protocol.
pub fn assemble_response(id: Option<&Value>, rest: &str) -> String {
    format!("{{{}{rest}", id_field(id))
}

/// Renders the acknowledgement for a successful `reload`. A forced
/// reload over a tenant with unsaved incremental edits carries an
/// explicit `"discarded_edits":true` marker — edits are never dropped
/// silently.
pub fn reload_response(id: Option<&Value>, info: &crate::registry::ReloadInfo) -> String {
    let discarded = if info.discarded_edits {
        ",\"discarded_edits\":true"
    } else {
        ""
    };
    format!(
        "{{{}\"ok\":true,\"reloaded\":\"{}\",\"bytes\":{},\"swapped\":{}{discarded}}}",
        id_field(id),
        json::escape(&info.project),
        info.bytes,
        info.swapped
    )
}

/// Renders the acknowledgement for a successful `update`: what was
/// applied, whether the batch was a no-op, and exactly what derived
/// state was invalidated (everything else survived the edit).
pub fn update_response(id: Option<&Value>, info: &crate::registry::UpdateInfo) -> String {
    let inv = &info.stats.invalidated;
    format!(
        "{{{}\"ok\":true,\"updated\":\"{}\",\"applied\":{},\"noop\":{},\
         \"invalidated\":{{\"chains\":{},\"candidates\":{},\"conversions\":{},\"reach\":{}}},\
         \"bytes\":{},\"generation\":{}}}",
        id_field(id),
        json::escape(&info.project),
        info.applied,
        info.noop,
        inv.chains,
        inv.candidates,
        inv.conversions,
        u8::from(inv.reach_rebuilt),
        info.bytes,
        info.generation
    )
}

/// Renders the structured `parse_error` response for an `update` whose
/// mini-C# source failed to parse or resolve (1-based position).
pub fn parse_error_response(id: Option<&Value>, line: u32, col: u32, message: &str) -> String {
    format!(
        "{{{}\"ok\":false,\"error\":\"parse_error\",\"line\":{line},\"col\":{col},\
         \"message\":\"{}\"}}",
        id_field(id),
        json::escape(message)
    )
}

/// Renders the shed response for a line refused by admission control. The
/// id is recovered best-effort so pipelining clients can match it.
pub fn shed_response(line: &str) -> String {
    let id = json::parse(line).ok().and_then(|d| d.get("id").cloned());
    error_response(
        id.as_ref(),
        "shed",
        "server overloaded: request queue is full",
    )
}

/// Renders the ping response.
pub fn pong_response(id: Option<&Value>) -> String {
    format!("{{{}\"ok\":true,\"pong\":true}}", id_field(id))
}

/// Renders the shutdown acknowledgement.
pub fn shutdown_response(id: Option<&Value>) -> String {
    format!("{{{}\"ok\":true,\"shutdown\":true}}", id_field(id))
}

/// Serialises a captured span as `{"name","start_ns","wall_ns","children"}`.
fn span_value(s: &pex_obs::SpanRecord) -> Value {
    Value::Obj(vec![
        ("name".to_owned(), Value::Str(s.name.to_owned())),
        ("start_ns".to_owned(), Value::Num(s.start_ns as f64)),
        ("wall_ns".to_owned(), Value::Num(s.duration_ns as f64)),
        (
            "children".to_owned(),
            Value::Arr(s.children.iter().map(span_value).collect()),
        ),
    ])
}

/// Serialises a finished request scope: the span tree plus the per-query
/// best-first search stats the engine attached (`engine.bestfirst.*`
/// counts become `search.{expanded,pruned_bound,pruned_dominated,
/// frontier_max}` — deltas for *this* query, not process lifetime totals).
fn trace_value(report: &pex_obs::ScopeReport) -> Value {
    let search = report
        .counts
        .iter()
        .map(|(k, v)| {
            let short = k.strip_prefix("engine.bestfirst.").unwrap_or(k);
            (short.replace('.', "_"), Value::Num(*v as f64))
        })
        .collect();
    Value::Obj(vec![
        (
            "spans".to_owned(),
            Value::Arr(report.spans.iter().map(span_value).collect()),
        ),
        ("search".to_owned(), Value::Obj(search)),
    ])
}

/// Executes a query against the shared snapshot and renders its response.
///
/// Returns the response line plus its [`Disposition`] (for the
/// `serve.requests.{ok,degraded,error}` counters). The query runs under a
/// [`QueryBudget`] combining the request's own limits with the server's
/// defaults and shutdown [`CancelToken`]; a deadline or budget trip is
/// reported as `"degraded": true` with the exact [`outcome`] label — a
/// cut-short enumeration is never passed off as a complete one.
///
/// `abs` is the worker's prewarmed abstract-type inference over the
/// snapshot's default query site (see [`Snapshot::abs_for_site`]); it only
/// applies when the request uses the default context — custom `locals`
/// have no position in the analysed bodies.
///
/// [`outcome`]: pex_core::QueryOutcome
pub fn execute(
    snapshot: &Snapshot,
    req: &QueryRequest,
    defaults: &RequestDefaults,
    cancel: &CancelToken,
    abs: Option<&AbsTypes<'_>>,
) -> (String, Disposition) {
    let (rest, disposition) = execute_rest(snapshot, req, defaults, cancel, abs);
    (assemble_response(req.id.as_ref(), &rest), disposition)
}

/// [`execute`] without the `id` prefix: renders the response *body* (from
/// `"ok"` to the closing brace) so the coalescer can run the engine once
/// and fan the body out to every waiter under its own `id`.
pub fn execute_rest(
    snapshot: &Snapshot,
    req: &QueryRequest,
    defaults: &RequestDefaults,
    cancel: &CancelToken,
    abs: Option<&AbsTypes<'_>>,
) -> (String, Disposition) {
    let err = |kind, msg: &str| (error_rest(kind, msg), Disposition::Error);
    let ctx = match snapshot.context_for(&req.locals) {
        Ok(ctx) => ctx,
        Err(msg) => return err("bad_request", &msg),
    };
    let started = Instant::now();
    let query = match pex_core::parse_partial(&snapshot.db, &ctx, &req.query) {
        Ok(q) => q,
        Err(e) => return err("parse", &e.to_string()),
    };
    let budget = QueryBudget {
        max_steps: req.max_steps.unwrap_or(defaults.max_steps),
        deadline: req
            .deadline_ms
            .or(defaults.deadline_ms)
            .map(Duration::from_millis),
        cancel: Some(cancel.clone()),
    };
    let mut options = CompleteOptions {
        budget,
        ..Default::default()
    };
    if let Some(depth) = req.max_depth {
        options = match options.with_max_depth(depth) {
            Ok(o) => o,
            Err(e) => return err("bad_request", &e.to_string()),
        };
    }
    let abs = if req.locals.is_empty() { abs } else { None };
    let completer = Completer::new(&snapshot.db, &ctx, &snapshot.index, RankConfig::all(), abs)
        .with_options(options)
        .with_reach(&snapshot.reach)
        .with_cache(&snapshot.cache);
    let limit = req.limit.unwrap_or(defaults.limit);
    let trace_id = req
        .trace_id
        .clone()
        .unwrap_or_else(pex_obs::scope::next_trace_id);
    // The scope opens before the engine runs so the `query` span and the
    // best-first stream's per-query stats (flushed when the stream drops,
    // inside `complete_with_outcome`) land in the capture.
    let scope = if req.trace {
        pex_obs::scope::begin(trace_id.clone())
    } else {
        None
    };
    let (completions, outcome) = completer.complete_with_outcome(&query, limit);
    let report = scope.map(pex_obs::ScopeGuard::finish);
    let latency_us = started.elapsed().as_micros();
    let rendered: Vec<String> = completions
        .iter()
        .map(|c| {
            let mut entry = format!(
                "{{\"expr\":\"{}\",\"score\":{}",
                json::escape(&completer.render(c)),
                c.score
            );
            if req.explain {
                let b = completer
                    .explain(c)
                    .expect("the engine explains its own completions");
                assert_eq!(
                    b.total, c.score,
                    "per-term breakdown must sum to the emitted score"
                );
                entry.push_str(",\"explain\":{");
                for (term, v) in b.terms {
                    entry.push_str(&format!("\"{}\":{v},", term.code()));
                }
                entry.push_str(&format!("\"total\":{}}}", b.total));
            }
            entry.push('}');
            entry
        })
        .collect();
    let mut response = format!(
        "\"ok\":true,\"trace_id\":\"{}\",\"outcome\":\"{}\",\"degraded\":{},\"latency_us\":{},\"completions\":[{}]",
        json::escape(&trace_id),
        outcome.label(),
        outcome.is_degraded(),
        latency_us,
        rendered.join(",")
    );
    if let Some(report) = &report {
        response.push_str(&format!(",\"trace\":{}", trace_value(report)));
    }
    response.push('}');
    let disposition = if outcome.is_degraded() {
        Disposition::Degraded
    } else {
        Disposition::Ok
    };
    (response, disposition)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Snapshot, SnapshotSource};

    fn defaults() -> RequestDefaults {
        RequestDefaults::default()
    }

    #[test]
    fn parses_query_requests_with_all_fields() {
        let req = parse_request(
            r#"{"id":"a1","query":"?","limit":3,"deadline_ms":250,"max_steps":5000,"max_depth":3,"locals":["p:Geo.Point"]}"#,
        )
        .unwrap();
        let Request::Query(q) = req else {
            panic!("query expected")
        };
        assert_eq!(q.id, Some(Value::Str("a1".into())));
        assert_eq!(q.query, "?");
        assert_eq!(q.limit, Some(3));
        assert_eq!(q.deadline_ms, Some(250));
        assert_eq!(q.max_steps, Some(5000));
        assert_eq!(q.max_depth, Some(3));
        assert_eq!(q.locals, vec!["p:Geo.Point".to_owned()]);
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(
            parse_request(r#"{"cmd":"ping","id":5}"#).unwrap(),
            Request::Ping {
                id: Some(Value::Num(5.0))
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown { id: None }
        );
    }

    #[test]
    fn bad_requests_keep_the_id_when_recoverable() {
        let (id, msg) = parse_request(r#"{"id":9,"limit":3}"#).unwrap_err();
        assert_eq!(id, Some(Value::Num(9.0)));
        assert!(msg.contains("query"), "{msg}");
        let (id, msg) = parse_request(r#"{"id":9,"query":"?","deadline_ms":"soon"}"#).unwrap_err();
        assert_eq!(id, Some(Value::Num(9.0)));
        assert!(msg.contains("deadline_ms"), "{msg}");
        let (id, _) = parse_request("not json at all").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn error_responses_are_valid_json() {
        let resp = error_response(
            Some(&Value::Num(3.0)),
            "parse",
            "unexpected `\"` at byte 4\nline 2",
        );
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(doc.get("error").and_then(Value::as_str), Some("parse"));
    }

    #[test]
    fn shed_response_recovers_the_id() {
        let resp = shed_response(r#"{"id":42,"query":"?"}"#);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("id").and_then(Value::as_u64), Some(42));
        assert_eq!(doc.get("error").and_then(Value::as_str), Some("shed"));
        // Unparseable lines still shed, without an id.
        let doc = json::parse(&shed_response("garbage")).unwrap();
        assert!(doc.get("id").is_none());
    }

    #[test]
    fn executes_the_paper_query_end_to_end() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: Some(Value::Num(1.0)),
            project: None,
            query: "?({img, size})".into(),
            limit: Some(5),
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
            trace_id: None,
            trace: false,
            explain: false,
        };
        let abs = snap.abs_for_site();
        let (resp, d) = execute(&snap, &req, &defaults(), &CancelToken::new(), abs.as_ref());
        assert_eq!(d, Disposition::Ok, "{resp}");
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("degraded"), Some(&Value::Bool(false)));
        let Some(Value::Arr(completions)) = doc.get("completions") else {
            panic!("completions expected: {resp}")
        };
        let first = completions[0].get("expr").and_then(Value::as_str).unwrap();
        assert!(first.contains("ResizeDocument"), "{resp}");
    }

    #[test]
    fn zero_deadline_reports_a_degraded_deadline_outcome() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: None,
            project: None,
            query: "?".into(),
            limit: None,
            deadline_ms: Some(0),
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
            trace_id: None,
            trace: false,
            explain: false,
        };
        let (resp, d) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert_eq!(d, Disposition::Degraded);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("outcome").and_then(Value::as_str),
            Some("deadline"),
            "{resp}"
        );
        assert_eq!(doc.get("degraded"), Some(&Value::Bool(true)));
    }

    #[test]
    fn query_parse_failures_are_error_responses() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: Some(Value::Num(2.0)),
            project: None,
            query: "?(((".into(),
            limit: None,
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
            trace_id: None,
            trace: false,
            explain: false,
        };
        let (resp, d) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert_eq!(d, Disposition::Error);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("error").and_then(Value::as_str), Some("parse"));
    }

    #[test]
    fn max_depth_beyond_the_engine_limit_is_a_bad_request() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: Some(Value::Num(7.0)),
            project: None,
            query: "?".into(),
            limit: None,
            deadline_ms: None,
            max_steps: None,
            max_depth: Some(99),
            locals: Vec::new(),
            trace_id: None,
            trace: false,
            explain: false,
        };
        let (resp, d) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert_eq!(d, Disposition::Error);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("error").and_then(Value::as_str),
            Some("bad_request"),
            "{resp}"
        );
        assert!(resp.contains("engine limit"), "{resp}");

        // An in-range depth executes normally.
        let shallow = QueryRequest {
            max_depth: Some(1),
            id: None,
            ..req
        };
        let (resp, d) = execute(&snap, &shallow, &defaults(), &CancelToken::new(), None);
        assert_eq!(d, Disposition::Ok, "{resp}");
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_introspection_fields() {
        let req = parse_request(
            r#"{"id":1,"query":"?","trace":true,"explain":true,"trace_id":"t-ide-7"}"#,
        )
        .unwrap();
        let Request::Query(q) = req else {
            panic!("query expected")
        };
        assert!(q.trace);
        assert!(q.explain);
        assert_eq!(q.trace_id.as_deref(), Some("t-ide-7"));
        let (_, msg) = parse_request(r#"{"query":"?","trace":"yes"}"#).unwrap_err();
        assert!(msg.contains("trace"), "{msg}");
        assert_eq!(
            parse_request(r#"{"cmd":"stats","id":2}"#).unwrap(),
            Request::Stats {
                id: Some(Value::Num(2.0))
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"health"}"#).unwrap(),
            Request::Health { id: None }
        );
    }

    #[test]
    fn explain_breakdowns_sum_exactly_to_each_score() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: None,
            project: None,
            query: "?({img, size})".into(),
            limit: Some(8),
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
            trace_id: None,
            trace: false,
            explain: true,
        };
        let (resp, d) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert_eq!(d, Disposition::Ok, "{resp}");
        let doc = json::parse(&resp).unwrap();
        let Some(Value::Arr(completions)) = doc.get("completions") else {
            panic!("completions expected: {resp}")
        };
        assert!(!completions.is_empty());
        for c in completions {
            let score = c.get("score").and_then(Value::as_u64).unwrap();
            let explain = c.get("explain").expect("explain attached");
            let mut sum = 0;
            for code in ["n", "s", "d", "m", "t", "a"] {
                sum += explain.get(code).and_then(Value::as_u64).unwrap();
            }
            assert_eq!(sum, score, "{c}");
            assert_eq!(explain.get("total").and_then(Value::as_u64), Some(score));
        }
    }

    #[test]
    fn traced_queries_return_their_span_tree_and_search_stats() {
        // No serve test flips the global kill switch, so asserting it on
        // here cannot race another test in this binary.
        pex_obs::set_enabled(true);
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        // A `?` hole takes the best-first path, so the scope captures the
        // stream's per-query expansion stats (call-argument queries run
        // the exhaustive pipeline and report none).
        let req = QueryRequest {
            id: Some(Value::Num(1.0)),
            project: None,
            query: "?".into(),
            limit: Some(5),
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
            trace_id: Some("t-client-1".into()),
            trace: true,
            explain: false,
        };
        let (resp, d) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert_eq!(d, Disposition::Ok, "{resp}");
        let doc = json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("trace_id").and_then(Value::as_str),
            Some("t-client-1")
        );
        let trace = doc.get("trace").expect("trace attached");
        let Some(Value::Arr(spans)) = trace.get("spans") else {
            panic!("spans expected: {resp}")
        };
        assert!(
            spans.iter().any(|s| {
                s.get("name").and_then(Value::as_str) == Some("query")
                    && s.get("wall_ns").and_then(Value::as_u64).unwrap_or(0) > 0
            }),
            "query span captured: {resp}"
        );
        let search = trace.get("search").expect("search stats attached");
        assert!(
            search.get("expanded").and_then(Value::as_u64).unwrap_or(0) > 0,
            "best-first expansion counts for this query: {resp}"
        );

        // Without a client trace_id one is generated, and untraced
        // responses still echo it.
        let req = QueryRequest {
            trace_id: None,
            trace: false,
            id: None,
            ..req
        };
        let (resp, _) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        let doc = json::parse(&resp).unwrap();
        let generated = doc.get("trace_id").and_then(Value::as_str).unwrap();
        assert!(generated.starts_with("t-"), "{resp}");
        assert!(doc.get("trace").is_none(), "no trace unless requested");
    }

    #[test]
    fn parses_project_and_reload() {
        let req = parse_request(r#"{"id":1,"query":"?","project":"geo-v2"}"#).unwrap();
        let Request::Query(q) = req else {
            panic!("query expected")
        };
        assert_eq!(q.project.as_deref(), Some("geo-v2"));
        assert_eq!(
            parse_request(r#"{"cmd":"reload","id":2,"project":"geo-v2"}"#).unwrap(),
            Request::Reload {
                id: Some(Value::Num(2.0)),
                project: Some("geo-v2".into()),
                force: false
            }
        );
        // A reload without a project targets the default tenant.
        assert_eq!(
            parse_request(r#"{"cmd":"reload"}"#).unwrap(),
            Request::Reload {
                id: None,
                project: None,
                force: false
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"reload","force":true}"#).unwrap(),
            Request::Reload {
                id: None,
                project: None,
                force: true
            }
        );
        let (_, msg) = parse_request(r#"{"query":"?","project":7}"#).unwrap_err();
        assert!(msg.contains("project"), "{msg}");
    }

    #[test]
    fn parses_update_requests() {
        assert_eq!(
            parse_request(r#"{"cmd":"update","id":3,"source":"namespace G { class A { } }"}"#)
                .unwrap(),
            Request::Update {
                id: Some(Value::Num(3.0)),
                project: None,
                edits: vec!["namespace G { class A { } }".to_owned()]
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"update","project":"geo","unit":"G.A","edits":["u1","u2"]}"#)
                .unwrap(),
            Request::Update {
                id: None,
                project: Some("geo".into()),
                edits: vec!["u1".to_owned(), "u2".to_owned()]
            }
        );
        for (bad, needle) in [
            (r#"{"cmd":"update","id":4}"#, "source"),
            (r#"{"cmd":"update","source":7}"#, "source"),
            (r#"{"cmd":"update","edits":"x"}"#, "edits"),
            (r#"{"cmd":"update","edits":[7]}"#, "edits"),
            (r#"{"cmd":"update","source":"x","edits":["y"]}"#, "not both"),
        ] {
            let (_, msg) = parse_request(bad).unwrap_err();
            assert!(msg.contains(needle), "{bad}: {msg}");
        }
    }

    #[test]
    fn coalesce_keys_group_identical_work_only() {
        let base = |query: &str| QueryRequest {
            id: Some(Value::Num(1.0)),
            project: None,
            query: query.into(),
            limit: Some(5),
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
            trace_id: None,
            trace: false,
            explain: false,
        };
        let a = base("?");
        // Different ids, same work: the ids are not part of the key.
        let b = QueryRequest {
            id: Some(Value::Num(2.0)),
            ..base("?")
        };
        assert_eq!(a.coalesce_key(), b.coalesce_key());
        // Any knob difference separates the keys.
        assert_ne!(a.coalesce_key(), base("?x").coalesce_key());
        let other_project = QueryRequest {
            project: Some("t1".into()),
            ..base("?")
        };
        assert_ne!(a.coalesce_key(), other_project.coalesce_key());
        let other_limit = QueryRequest {
            limit: Some(6),
            ..base("?")
        };
        assert_ne!(a.coalesce_key(), other_limit.coalesce_key());
        // Locals join the key; a list/one-string confusion cannot alias.
        let two_locals = QueryRequest {
            locals: vec!["a:T.U".into(), "b:T.U".into()],
            ..base("?")
        };
        let one_local = QueryRequest {
            locals: vec!["a:T.U\u{1}b:T.U".into()],
            ..base("?")
        };
        assert_ne!(two_locals.coalesce_key(), one_local.coalesce_key());
        // Traced / explained / client-trace_id requests never coalesce.
        for req in [
            QueryRequest {
                trace: true,
                ..base("?")
            },
            QueryRequest {
                explain: true,
                ..base("?")
            },
            QueryRequest {
                trace_id: Some("t-1".into()),
                ..base("?")
            },
        ] {
            assert_eq!(req.coalesce_key(), None);
        }
    }

    #[test]
    fn assembled_bodies_match_the_direct_rendering() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: Some(Value::Num(7.0)),
            project: None,
            query: "?({img, size})".into(),
            limit: Some(3),
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
            trace_id: None,
            trace: false,
            explain: false,
        };
        let (rest, _) = execute_rest(&snap, &req, &defaults(), &CancelToken::new(), None);
        let assembled = assemble_response(req.id.as_ref(), &rest);
        assert!(
            assembled.starts_with("{\"id\":7,\"ok\":true,"),
            "{assembled}"
        );
        // Re-prefixing under a different waiter id keeps the body intact.
        let twin = assemble_response(Some(&Value::Str("w2".into())), &rest);
        assert!(twin.starts_with("{\"id\":\"w2\","), "{twin}");
        assert_eq!(
            twin.split_once(',').unwrap().1,
            assembled.split_once(',').unwrap().1
        );
    }

    #[test]
    fn request_locals_rebuild_the_context() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: None,
            project: None,
            query: "?".into(),
            limit: Some(3),
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: vec!["bad spec".into()],
            trace_id: None,
            trace: false,
            explain: false,
        };
        let (resp, d) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert_eq!(d, Disposition::Error);
        assert!(resp.contains("bad_request"), "{resp}");
    }
}
