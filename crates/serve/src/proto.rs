//! The JSON-lines request/response protocol and its execution semantics.
//!
//! One request per line, one response per line. Responses carry the
//! request's `id` verbatim (any JSON value), so clients may pipeline
//! requests and match answers out of order.
//!
//! ## Requests
//!
//! ```json
//! {"id": 1, "query": "?({img, size})", "limit": 5, "deadline_ms": 40}
//! {"id": 2, "query": "p.?f", "locals": ["p:Geo.Point"]}
//! {"id": 3, "cmd": "ping"}
//! {"cmd": "shutdown"}
//! ```
//!
//! `limit`, `deadline_ms`, `max_steps`, `max_depth`, and `locals` are
//! optional; omitted fields fall back to the server's
//! [`RequestDefaults`]. `max_depth` caps lookup-chain length per query
//! (up to the engine limit) and is rejected as `bad_request` beyond it.
//!
//! ## Responses
//!
//! ```json
//! {"id":1,"ok":true,"outcome":"limit","degraded":false,"latency_us":812,
//!  "completions":[{"expr":"ResizeDocument(img, size, 0, 0)","score":2}]}
//! {"id":9,"ok":false,"error":"parse","message":"..."}
//! ```
//!
//! Every failure mode has an explicit `error` kind: `bad_request`
//! (malformed JSON or an unusable field), `parse` (the partial-expression
//! query did not parse), `shed` (admission control refused the request),
//! and `shutdown` (the server is draining). A request is **never** dropped
//! without a response on a live connection.

use std::time::{Duration, Instant};

use pex_abstract::AbsTypes;
use pex_core::{CancelToken, CompleteOptions, Completer, QueryBudget, RankConfig};

use crate::json::{self, Value};
use crate::snapshot::Snapshot;

/// Server-side fallbacks for optional request fields.
#[derive(Debug, Clone)]
pub struct RequestDefaults {
    /// Completions returned when the request has no `limit`.
    pub limit: usize,
    /// Wall-clock deadline applied when the request has no `deadline_ms`.
    pub deadline_ms: Option<u64>,
    /// Step budget applied when the request has no `max_steps`.
    pub max_steps: usize,
}

impl Default for RequestDefaults {
    fn default() -> Self {
        RequestDefaults {
            limit: 10,
            deadline_ms: None,
            max_steps: QueryBudget::default().max_steps,
        }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// A completion query.
    Query(QueryRequest),
    /// Liveness probe; answered with `{"ok":true,"pong":true}`.
    Ping {
        /// Echoed request id.
        id: Option<Value>,
    },
    /// Graceful-shutdown request: drain in-flight work, then exit.
    Shutdown {
        /// Echoed request id.
        id: Option<Value>,
    },
}

/// The payload of a [`Request::Query`].
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    /// Client-chosen id, echoed on the response.
    pub id: Option<Value>,
    /// Partial-expression surface syntax (the paper's Figure 5(b)).
    pub query: String,
    /// Result cap for this request.
    pub limit: Option<usize>,
    /// Per-request wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Per-request step budget.
    pub max_steps: Option<usize>,
    /// Per-request chain-depth cap (validated against
    /// [`pex_core::MAX_DEPTH_LIMIT`] at execution time).
    pub max_depth: Option<usize>,
    /// `name:Qualified.Type` local declarations replacing the snapshot's
    /// default context.
    pub locals: Vec<String>,
}

/// Parses one request line. `Err` carries `(echoed id, message)` for the
/// `bad_request` response; the id is recovered when the line is valid JSON
/// with an `id` field even if the rest of the request is unusable.
pub fn parse_request(line: &str) -> Result<Request, (Option<Value>, String)> {
    let doc = json::parse(line).map_err(|e| (None, format!("invalid JSON: {e}")))?;
    let id = doc.get("id").cloned();
    if !matches!(doc, Value::Obj(_)) {
        return Err((id, "request must be a JSON object".to_owned()));
    }
    if let Some(cmd) = doc.get("cmd") {
        return match cmd.as_str() {
            Some("ping") => Ok(Request::Ping { id }),
            Some("shutdown") => Ok(Request::Shutdown { id }),
            _ => Err((id, format!("unknown cmd {cmd}"))),
        };
    }
    let Some(query) = doc.get("query") else {
        return Err((id, "missing `query` (or `cmd`) field".to_owned()));
    };
    let Some(query) = query.as_str() else {
        return Err((id, "`query` must be a string".to_owned()));
    };
    let uint = |field: &str| -> Result<Option<u64>, (Option<Value>, String)> {
        match doc.get(field) {
            None | Some(Value::Null) => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                (
                    id.clone(),
                    format!("`{field}` must be a non-negative integer"),
                )
            }),
        }
    };
    let limit = uint("limit")?.map(|n| n as usize);
    let deadline_ms = uint("deadline_ms")?;
    let max_steps = uint("max_steps")?.map(|n| n as usize);
    let max_depth = uint("max_depth")?.map(|n| n as usize);
    let locals = match doc.get("locals") {
        None | Some(Value::Null) => Vec::new(),
        Some(Value::Arr(items)) => {
            let mut out = Vec::new();
            for item in items {
                match item.as_str() {
                    Some(s) => out.push(s.to_owned()),
                    None => {
                        return Err((id, "`locals` entries must be strings".to_owned()));
                    }
                }
            }
            out
        }
        Some(_) => return Err((id, "`locals` must be an array of strings".to_owned())),
    };
    Ok(Request::Query(QueryRequest {
        id,
        query: query.to_owned(),
        limit,
        deadline_ms,
        max_steps,
        max_depth,
        locals,
    }))
}

fn id_field(id: Option<&Value>) -> String {
    match id {
        Some(v) => format!("\"id\":{v},"),
        None => String::new(),
    }
}

/// Renders an error response of the given kind.
pub fn error_response(id: Option<&Value>, kind: &str, message: &str) -> String {
    format!(
        "{{{}\"ok\":false,\"error\":\"{}\",\"message\":\"{}\"}}",
        id_field(id),
        json::escape(kind),
        json::escape(message)
    )
}

/// Renders the shed response for a line refused by admission control. The
/// id is recovered best-effort so pipelining clients can match it.
pub fn shed_response(line: &str) -> String {
    let id = json::parse(line).ok().and_then(|d| d.get("id").cloned());
    error_response(
        id.as_ref(),
        "shed",
        "server overloaded: request queue is full",
    )
}

/// Renders the ping response.
pub fn pong_response(id: Option<&Value>) -> String {
    format!("{{{}\"ok\":true,\"pong\":true}}", id_field(id))
}

/// Renders the shutdown acknowledgement.
pub fn shutdown_response(id: Option<&Value>) -> String {
    format!("{{{}\"ok\":true,\"shutdown\":true}}", id_field(id))
}

/// Executes a query against the shared snapshot and renders its response.
///
/// Returns the response line plus whether the request succeeded (for the
/// `serve.requests.{ok,error}` counters). The query runs under a
/// [`QueryBudget`] combining the request's own limits with the server's
/// defaults and shutdown [`CancelToken`]; a deadline or budget trip is
/// reported as `"degraded": true` with the exact [`outcome`] label — a
/// cut-short enumeration is never passed off as a complete one.
///
/// `abs` is the worker's prewarmed abstract-type inference over the
/// snapshot's default query site (see [`Snapshot::abs_for_site`]); it only
/// applies when the request uses the default context — custom `locals`
/// have no position in the analysed bodies.
///
/// [`outcome`]: pex_core::QueryOutcome
pub fn execute(
    snapshot: &Snapshot,
    req: &QueryRequest,
    defaults: &RequestDefaults,
    cancel: &CancelToken,
    abs: Option<&AbsTypes<'_>>,
) -> (String, bool) {
    let id = req.id.as_ref();
    let ctx = match snapshot.context_for(&req.locals) {
        Ok(ctx) => ctx,
        Err(msg) => return (error_response(id, "bad_request", &msg), false),
    };
    let started = Instant::now();
    let query = match pex_core::parse_partial(&snapshot.db, &ctx, &req.query) {
        Ok(q) => q,
        Err(e) => return (error_response(id, "parse", &e.to_string()), false),
    };
    let budget = QueryBudget {
        max_steps: req.max_steps.unwrap_or(defaults.max_steps),
        deadline: req
            .deadline_ms
            .or(defaults.deadline_ms)
            .map(Duration::from_millis),
        cancel: Some(cancel.clone()),
    };
    let mut options = CompleteOptions {
        budget,
        ..Default::default()
    };
    if let Some(depth) = req.max_depth {
        options = match options.with_max_depth(depth) {
            Ok(o) => o,
            Err(e) => return (error_response(id, "bad_request", &e.to_string()), false),
        };
    }
    let abs = if req.locals.is_empty() { abs } else { None };
    let completer = Completer::new(&snapshot.db, &ctx, &snapshot.index, RankConfig::all(), abs)
        .with_options(options)
        .with_reach(&snapshot.reach)
        .with_cache(&snapshot.cache);
    let limit = req.limit.unwrap_or(defaults.limit);
    let (completions, outcome) = completer.complete_with_outcome(&query, limit);
    let latency_us = started.elapsed().as_micros();
    let rendered: Vec<String> = completions
        .iter()
        .map(|c| {
            format!(
                "{{\"expr\":\"{}\",\"score\":{}}}",
                json::escape(&completer.render(c)),
                c.score
            )
        })
        .collect();
    let response = format!(
        "{{{}\"ok\":true,\"outcome\":\"{}\",\"degraded\":{},\"latency_us\":{},\"completions\":[{}]}}",
        id_field(id),
        outcome.label(),
        outcome.is_degraded(),
        latency_us,
        rendered.join(",")
    );
    (response, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{Snapshot, SnapshotSource};

    fn defaults() -> RequestDefaults {
        RequestDefaults::default()
    }

    #[test]
    fn parses_query_requests_with_all_fields() {
        let req = parse_request(
            r#"{"id":"a1","query":"?","limit":3,"deadline_ms":250,"max_steps":5000,"max_depth":3,"locals":["p:Geo.Point"]}"#,
        )
        .unwrap();
        let Request::Query(q) = req else {
            panic!("query expected")
        };
        assert_eq!(q.id, Some(Value::Str("a1".into())));
        assert_eq!(q.query, "?");
        assert_eq!(q.limit, Some(3));
        assert_eq!(q.deadline_ms, Some(250));
        assert_eq!(q.max_steps, Some(5000));
        assert_eq!(q.max_depth, Some(3));
        assert_eq!(q.locals, vec!["p:Geo.Point".to_owned()]);
    }

    #[test]
    fn parses_control_commands() {
        assert_eq!(
            parse_request(r#"{"cmd":"ping","id":5}"#).unwrap(),
            Request::Ping {
                id: Some(Value::Num(5.0))
            }
        );
        assert_eq!(
            parse_request(r#"{"cmd":"shutdown"}"#).unwrap(),
            Request::Shutdown { id: None }
        );
    }

    #[test]
    fn bad_requests_keep_the_id_when_recoverable() {
        let (id, msg) = parse_request(r#"{"id":9,"limit":3}"#).unwrap_err();
        assert_eq!(id, Some(Value::Num(9.0)));
        assert!(msg.contains("query"), "{msg}");
        let (id, msg) = parse_request(r#"{"id":9,"query":"?","deadline_ms":"soon"}"#).unwrap_err();
        assert_eq!(id, Some(Value::Num(9.0)));
        assert!(msg.contains("deadline_ms"), "{msg}");
        let (id, _) = parse_request("not json at all").unwrap_err();
        assert_eq!(id, None);
    }

    #[test]
    fn error_responses_are_valid_json() {
        let resp = error_response(
            Some(&Value::Num(3.0)),
            "parse",
            "unexpected `\"` at byte 4\nline 2",
        );
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("id").and_then(Value::as_u64), Some(3));
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)));
        assert_eq!(doc.get("error").and_then(Value::as_str), Some("parse"));
    }

    #[test]
    fn shed_response_recovers_the_id() {
        let resp = shed_response(r#"{"id":42,"query":"?"}"#);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("id").and_then(Value::as_u64), Some(42));
        assert_eq!(doc.get("error").and_then(Value::as_str), Some("shed"));
        // Unparseable lines still shed, without an id.
        let doc = json::parse(&shed_response("garbage")).unwrap();
        assert!(doc.get("id").is_none());
    }

    #[test]
    fn executes_the_paper_query_end_to_end() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: Some(Value::Num(1.0)),
            query: "?({img, size})".into(),
            limit: Some(5),
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
        };
        let abs = snap.abs_for_site();
        let (resp, ok) = execute(&snap, &req, &defaults(), &CancelToken::new(), abs.as_ref());
        assert!(ok, "{resp}");
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("degraded"), Some(&Value::Bool(false)));
        let Some(Value::Arr(completions)) = doc.get("completions") else {
            panic!("completions expected: {resp}")
        };
        let first = completions[0].get("expr").and_then(Value::as_str).unwrap();
        assert!(first.contains("ResizeDocument"), "{resp}");
    }

    #[test]
    fn zero_deadline_reports_a_degraded_deadline_outcome() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: None,
            query: "?".into(),
            limit: None,
            deadline_ms: Some(0),
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
        };
        let (resp, ok) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert!(ok);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("outcome").and_then(Value::as_str),
            Some("deadline"),
            "{resp}"
        );
        assert_eq!(doc.get("degraded"), Some(&Value::Bool(true)));
    }

    #[test]
    fn query_parse_failures_are_error_responses() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: Some(Value::Num(2.0)),
            query: "?(((".into(),
            limit: None,
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: Vec::new(),
        };
        let (resp, ok) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert!(!ok);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("error").and_then(Value::as_str), Some("parse"));
    }

    #[test]
    fn max_depth_beyond_the_engine_limit_is_a_bad_request() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: Some(Value::Num(7.0)),
            query: "?".into(),
            limit: None,
            deadline_ms: None,
            max_steps: None,
            max_depth: Some(99),
            locals: Vec::new(),
        };
        let (resp, ok) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert!(!ok);
        let doc = json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("error").and_then(Value::as_str),
            Some("bad_request"),
            "{resp}"
        );
        assert!(resp.contains("engine limit"), "{resp}");

        // An in-range depth executes normally.
        let shallow = QueryRequest {
            max_depth: Some(1),
            id: None,
            ..req
        };
        let (resp, ok) = execute(&snap, &shallow, &defaults(), &CancelToken::new(), None);
        assert!(ok, "{resp}");
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
    }

    #[test]
    fn request_locals_rebuild_the_context() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let req = QueryRequest {
            id: None,
            query: "?".into(),
            limit: Some(3),
            deadline_ms: None,
            max_steps: None,
            max_depth: None,
            locals: vec!["bad spec".into()],
        };
        let (resp, ok) = execute(&snap, &req, &defaults(), &CancelToken::new(), None);
        assert!(!ok);
        assert!(resp.contains("bad_request"), "{resp}");
    }
}
