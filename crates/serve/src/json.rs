//! A minimal JSON reader/writer for the serve protocol.
//!
//! The workspace vendors every external dependency, so rather than pulling
//! in a serialization framework the protocol layer uses this ~200-line
//! recursive-descent parser. It covers the full JSON grammar (objects,
//! arrays, strings with escapes, numbers, literals) with two deliberate
//! simplifications that are fine for a line-oriented RPC protocol:
//!
//! * numbers are held as `f64` (request ids and limits are small);
//! * object keys keep insertion order (a `Vec`, not a map), so re-emitting
//!   a merged document is stable.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other shapes or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if this is a
    /// non-negative whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            // Strict `<`: `u64::MAX as f64` rounds up to 2^64 exactly, so
            // `<=` would accept 18446744073709551616 and saturate it to
            // `u64::MAX`. Every whole f64 strictly below 2^64 converts
            // exactly.
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Inserts or replaces a key in an object. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: Value) {
        if let Value::Obj(fields) = self {
            if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                fields.push((key.to_owned(), value));
            }
        }
    }
}

impl fmt::Display for Value {
    /// Serializes back to compact JSON.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "\"{}\"", escape(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parse failure: byte offset plus a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub pos: usize,
    /// What was expected.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.pos)
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are rejected rather than
                            // combined: the protocol never emits them.
                            let c = char::from_u32(cp)
                                .ok_or_else(|| self.err("unpaired surrogate in \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the run up to the next quote or escape in one go
                    // (the input is a &str, so the slice is valid UTF-8).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(r#"{"id": 7, "query": "?({img, size})", "limit": 10, "deadline_ms": 0}"#)
            .unwrap();
        assert_eq!(v.get("id").and_then(Value::as_u64), Some(7));
        assert_eq!(
            v.get("query").and_then(Value::as_str),
            Some("?({img, size})")
        );
        assert_eq!(v.get("deadline_ms").and_then(Value::as_u64), Some(0));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_values_and_escapes() {
        let v = parse(r#"{"a": [1, -2.5, true, null], "s": "x\n\"y\"A"}"#).unwrap();
        let Value::Arr(items) = v.get("a").unwrap() else {
            panic!("array expected")
        };
        assert_eq!(items.len(), 4);
        assert_eq!(items[1].as_f64(), Some(-2.5));
        assert_eq!(v.get("s").and_then(Value::as_str), Some("x\n\"y\"A"));
    }

    #[test]
    fn roundtrips_through_display() {
        let src = r#"{"id":1,"ok":true,"results":[{"expr":"a.b","score":2}],"note":null}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        // Escaped content survives a round trip.
        let v2 = parse(&Value::Str("line\n\"quoted\"".into()).to_string()).unwrap();
        assert_eq!(v2.as_str(), Some("line\n\"quoted\""));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "nul",
            "\"open",
            "{\"a\":1} trailing",
            "{'single': 1}",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn numbers_convert_conservatively() {
        assert_eq!(parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
    }

    #[test]
    fn out_of_range_integers_are_rejected_not_saturated() {
        // 2^64 itself: representable as f64 (u64::MAX rounds up to it),
        // but not as a u64 — must be None, not a saturated u64::MAX.
        assert_eq!(parse("18446744073709551616").unwrap().as_u64(), None);
        assert_eq!(parse("1e300").unwrap().as_u64(), None);
        // The largest whole f64 below 2^64 still converts exactly.
        assert_eq!(
            parse("18446744073709549568").unwrap().as_u64(),
            Some(18446744073709549568)
        );
    }

    #[test]
    fn set_inserts_and_replaces() {
        let mut v = parse(r#"{"a":1}"#).unwrap();
        v.set("b", Value::Num(2.0));
        v.set("a", Value::Num(9.0));
        assert_eq!(v.to_string(), r#"{"a":9,"b":2}"#);
    }
}
