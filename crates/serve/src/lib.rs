//! # pex-serve
//!
//! The deployment shape the paper sketches in its future work — an
//! always-on assistant answering partial-expression queries at keystroke
//! latency — as a long-lived daemon for the pex engine.
//!
//! A serve process loads one [`Snapshot`] (code model + prewarmed method,
//! conversion, and reachability indexes), then answers completion queries
//! over a JSON-lines protocol from a fixed worker pool:
//!
//! * [`snapshot`] — the shared immutable artefact and its prewarming;
//! * [`persist`] — the `pex-snapshot/1` binary format: save a prewarmed
//!   snapshot to disk, reload it on boot skipping parse + build + prewarm;
//! * [`proto`] — the request/response schema and query execution, mapping
//!   per-request `deadline_ms` / `max_steps` / `limit` onto the engine's
//!   [`pex_core::QueryBudget`];
//! * [`registry`] — the multi-tenant snapshot registry: project ids →
//!   `Arc<Snapshot>` with lazy load from a `--snapshot-dir`, LRU eviction
//!   under a byte budget, and atomic hot swap via the `reload` command;
//! * [`server`] — the bounded admission queue, the worker pool, in-flight
//!   request coalescing, explicit load shedding, and graceful
//!   drain-then-exit shutdown;
//! * [`obs_json`] — live introspection: the `stats`/`health` command
//!   bodies (rolling-window percentiles, shed rate, SLO burn) and the
//!   `--metrics-out` document, built from the `pex-obs` registry;
//! * [`json`] — the dependency-free JSON reader/writer the protocol uses.
//!
//! The `pex-serve` binary fronts this with two transports: stdin/stdout
//! framing (one request per line, one response per line) and an optional
//! Unix-domain socket listener for concurrent clients.
//!
//! ```console
//! $ echo '{"id":1,"query":"?({img, size})","limit":3}' | pex-serve paint
//! {"id":1,"ok":true,"outcome":"limit","degraded":false,...}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod obs_json;
pub mod persist;
pub mod proto;
pub mod queue;
pub mod registry;
pub mod server;
pub mod snapshot;

pub use proto::{Disposition, Request, RequestDefaults};
pub use registry::{DefaultOrigin, SnapshotRegistry, DEFAULT_TENANT};
pub use server::{ServeConfig, Server, ServerClient};
pub use snapshot::{Snapshot, SnapshotSource};
