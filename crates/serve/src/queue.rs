//! A bounded multi-producer/multi-consumer job queue with explicit
//! admission control.
//!
//! The serve path must never drop a request silently: when the queue is
//! full the *producer* is told so immediately ([`PushError::Full`]) and
//! turns that into a `shed` error response. Consumers block on a condvar;
//! closing the queue wakes them all, and a closed queue still drains —
//! [`Bounded::pop`] keeps returning queued items until empty, which is what
//! makes graceful shutdown ("finish what was admitted, admit nothing new")
//! a one-line policy in the server.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back so the caller can
    /// shed it explicitly.
    Full(T),
    /// The queue was closed (shutdown in progress); no new admissions.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO shared between transports (producers) and the worker
/// pool (consumers).
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Admits an item, or refuses with [`PushError::Full`] /
    /// [`PushError::Closed`]. On success returns the queue depth *after*
    /// the push, for the caller's depth gauge.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed {
            return Err(PushError::Closed(item));
        }
        if s.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Takes the next item, blocking while the queue is open and empty.
    /// Returns `None` only when the queue is closed **and** drained.
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue lock");
        }
    }

    /// Closes admission. Already-queued items remain poppable; blocked
    /// consumers wake up. Idempotent.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Current number of queued items.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queues_refuse_and_hand_the_item_back() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(2));
    }

    #[test]
    fn closed_queues_drain_but_admit_nothing() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
        // close is idempotent.
        q.close();
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let waiter = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }

    #[test]
    fn items_cross_threads_in_fifo_order() {
        let q = Arc::new(Bounded::new(64));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..50 {
            loop {
                match q.try_push(i) {
                    Ok(_) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => unreachable!(),
                }
            }
        }
        q.close();
        assert_eq!(consumer.join().unwrap(), (0..50).collect::<Vec<_>>());
    }
}
