//! The worker pool: a fixed set of threads answering protocol requests
//! from a shared [`SnapshotRegistry`] behind a bounded admission queue.
//!
//! Design invariants:
//!
//! * **One registry, many workers.** Workers share one
//!   [`Arc<SnapshotRegistry>`]; a request resolves its `Arc<Snapshot>`
//!   exactly once, so a concurrent `reload` swaps tenants atomically —
//!   in-flight requests drain against the snapshot they resolved, and
//!   nothing per-request touches mutable global state.
//! * **Explicit load shedding.** [`Server::submit`] either admits a
//!   request or immediately replies with a `shed`/`shutdown` error — a
//!   request on a live connection is never silently dropped.
//! * **In-flight coalescing.** Identical queries (same tenant, query
//!   text, and knobs; no tracing artefacts) admitted while a twin is
//!   executing share one engine run: the leader renders the response body
//!   once and fans it out to every waiter under its own `id`. Followers
//!   still resolve with their own disposition counters and latency
//!   samples, so the accounting identity is coalescing-blind.
//! * **Graceful shutdown.** [`Server::shutdown`] closes admission, lets
//!   the workers drain everything already queued, and joins them. The
//!   shared [`CancelToken`] is only tripped by [`Server::shutdown_now`],
//!   which additionally stops in-flight enumerations at their next budget
//!   poll (each then answers with a degraded `cancelled` outcome).
//!
//! Observability (all through `pex-obs`):
//! `serve.requests.{received,ok,degraded,error,shed,coalesced}` counters
//! (`received` counts every submitted line; `ok+degraded+error+shed`
//! count resolutions — their difference is the in-flight count the
//! `health` command reports; `coalesced` counts followers absorbed into a
//! leader's run), per-tenant `serve.tenant.<id>.*` counters,
//! `serve.queue.depth` / `serve.queue.depth.max` gauges,
//! `serve.queue.wait.ns` and `serve.request.ns` latency histograms, a
//! `serve.request` tracing span per executed request, and the rolling
//! windows behind `stats`/`health` (see [`crate::obs_json`]).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use pex_abstract::AbsTypes;
use pex_core::CancelToken;

use crate::json::Value;
use crate::proto::{self, Disposition, QueryRequest, Request, RequestDefaults};
use crate::queue::{Bounded, PushError};
use crate::registry::{self, SnapshotRegistry, DEFAULT_TENANT};
use crate::snapshot::Snapshot;

/// Server sizing and per-request defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Admission queue capacity; a full queue sheds (it never blocks the
    /// transport and never drops silently).
    pub queue_cap: usize,
    /// Fallbacks for optional request fields.
    pub defaults: RequestDefaults,
    /// SLO threshold for the `health` command's burn flag: burning when
    /// the rolling-window p99 latency (µs) exceeds this. `None` disables
    /// the flag.
    pub slo_p99_us: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServeConfig {
            workers,
            queue_cap: workers * 16,
            defaults: RequestDefaults::default(),
            slo_p99_us: None,
        }
    }
}

/// One admitted request: the raw line, where to send the response, and
/// when it was admitted (for queue-wait accounting).
struct Job {
    line: String,
    reply: Sender<String>,
    admitted: Instant,
}

/// One request absorbed into a coalesced run, waiting for the leader's
/// response body.
struct Waiter {
    id: Option<Value>,
    reply: Sender<String>,
    admitted: Instant,
    tenant: String,
}

/// In-flight coalescing state: key → waiters absorbed behind the leader
/// currently executing that key. The leader registers before running and
/// collects (removing the entry) after, so a request arriving later finds
/// no entry and simply becomes the next leader — coalescing only ever
/// shares work that is genuinely concurrent.
#[derive(Default)]
struct Coalescer {
    inflight: Mutex<HashMap<String, Vec<Waiter>>>,
}

enum Admitted {
    /// No twin executing: the caller runs the engine and must call
    /// [`Coalescer::collect`] afterwards.
    Leader,
    /// A twin is executing; the waiter was parked behind it.
    Follower,
}

impl Coalescer {
    fn admit(&self, key: &str, waiter: Waiter) -> Admitted {
        let mut map = self.inflight.lock().expect("coalescer lock");
        match map.entry(key.to_owned()) {
            Entry::Occupied(mut e) => {
                e.get_mut().push(waiter);
                Admitted::Follower
            }
            Entry::Vacant(e) => {
                e.insert(Vec::new());
                Admitted::Leader
            }
        }
    }

    fn collect(&self, key: &str) -> Vec<Waiter> {
        let mut map = self.inflight.lock().expect("coalescer lock");
        map.remove(key).unwrap_or_default()
    }
}

/// A running worker pool. Dropping without calling [`Server::shutdown`]
/// aborts the drain (the queue closes and workers finish the items they
/// already hold), so call `shutdown` for a clean exit.
pub struct Server {
    queue: Arc<Bounded<Job>>,
    workers: Vec<JoinHandle<()>>,
    cancel: CancelToken,
    shutdown_flag: Arc<AtomicBool>,
}

/// A cheap, cloneable, thread-safe handle for submitting requests — what
/// transports (socket connections, load-generator clients) hold while the
/// [`Server`] itself stays with the thread that will join it.
#[derive(Clone)]
pub struct ServerClient {
    queue: Arc<Bounded<Job>>,
    shutdown_flag: Arc<AtomicBool>,
}

impl ServerClient {
    /// Admits one request line, or replies immediately with an explicit
    /// `shed` (queue full) or `shutdown` (draining) error. The response —
    /// whichever kind — arrives on `reply`.
    pub fn submit(&self, line: String, reply: &Sender<String>) {
        // `received` counts before any resolution counter can fire, so
        // `received - (ok+degraded+shed+errors)` is a true in-flight count.
        pex_obs::counter!("serve.requests.received", 1);
        if pex_obs::enabled() {
            pex_obs::registry()
                .windowed(crate::obs_json::RECEIVED_WINDOW)
                .record(1);
        }
        let job = Job {
            line,
            reply: reply.clone(),
            admitted: Instant::now(),
        };
        match self.queue.try_push(job) {
            Ok(depth) => {
                if pex_obs::enabled() {
                    pex_obs::registry()
                        .gauge("serve.queue.depth")
                        .set(depth as u64);
                }
                pex_obs::gauge_max!("serve.queue.depth.max", depth as u64);
            }
            Err(PushError::Full(job)) => {
                pex_obs::counter!("serve.requests.shed", 1);
                if pex_obs::enabled() {
                    pex_obs::registry()
                        .windowed(crate::obs_json::SHED_WINDOW)
                        .record(1);
                    registry::tenant_counter(&tenant_of_line(&job.line), "requests.shed", 1);
                }
                let _ = job.reply.send(proto::shed_response(&job.line));
            }
            Err(PushError::Closed(job)) => {
                pex_obs::counter!("serve.requests.error", 1);
                let id = crate::json::parse(&job.line)
                    .ok()
                    .and_then(|d| d.get("id").cloned());
                let _ = job.reply.send(proto::error_response(
                    id.as_ref(),
                    "shutdown",
                    "server is shutting down",
                ));
            }
        }
    }

    /// Whether shutdown has been requested (see [`Server::shutdown_requested`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }

    /// Marks the server as shutting down, so transports stop accepting.
    pub fn request_shutdown(&self) {
        self.shutdown_flag.store(true, Ordering::Relaxed);
    }
}

/// Best-effort tenant of a raw request line, for shed accounting (the
/// line never reached a worker, so it was never fully parsed).
fn tenant_of_line(line: &str) -> String {
    crate::json::parse(line)
        .ok()
        .and_then(|d| d.get("project").and_then(|p| p.as_str().map(str::to_owned)))
        .unwrap_or_else(|| DEFAULT_TENANT.to_owned())
}

impl Server {
    /// Spawns `config.workers` workers over the shared registry.
    pub fn start(registry: Arc<SnapshotRegistry>, config: ServeConfig) -> Server {
        let queue = Arc::new(Bounded::new(config.queue_cap));
        let cancel = CancelToken::new();
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let coalescer = Arc::new(Coalescer::default());
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let ctx = WorkerCtx {
                    queue: Arc::clone(&queue),
                    registry: Arc::clone(&registry),
                    coalescer: Arc::clone(&coalescer),
                    defaults: config.defaults.clone(),
                    slo_p99_us: config.slo_p99_us,
                    cancel: cancel.clone(),
                    shutdown_flag: Arc::clone(&shutdown_flag),
                };
                std::thread::Builder::new()
                    .name(format!("pex-serve-worker-{i}"))
                    .spawn(move || worker_loop(&ctx))
                    .expect("spawn worker thread")
            })
            .collect();
        Server {
            queue,
            workers,
            cancel,
            shutdown_flag,
        }
    }

    /// Spawns a single-tenant pool over one snapshot — the PR 8 server
    /// shape (no tenant directory, no reload origin), for tests and the
    /// in-process bench.
    pub fn start_single(snapshot: Arc<Snapshot>, config: ServeConfig) -> Server {
        Server::start(Arc::new(SnapshotRegistry::single(snapshot)), config)
    }

    /// Admits one request line, or replies immediately with an explicit
    /// `shed` (queue full) or `shutdown` (draining) error. The response —
    /// whichever kind — arrives on `reply`.
    pub fn submit(&self, line: String, reply: &Sender<String>) {
        self.client().submit(line, reply)
    }

    /// A cheap cloneable handle over the transport surface (submit +
    /// shutdown flag), for threads that must outlive borrows of `self`.
    pub fn client(&self) -> ServerClient {
        ServerClient {
            queue: Arc::clone(&self.queue),
            shutdown_flag: Arc::clone(&self.shutdown_flag),
        }
    }

    /// The cancel token shared with every in-flight query.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether a client has requested shutdown (a `{"cmd":"shutdown"}`
    /// handled by a worker) or [`Server::request_shutdown`] was called.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }

    /// Marks the server as shutting down, so transports stop accepting.
    /// Admission stays open until [`Server::shutdown`] to let responses
    /// already promised (e.g. the shutdown ack) flow.
    pub fn request_shutdown(&self) {
        self.shutdown_flag.store(true, Ordering::Relaxed);
    }

    /// Graceful shutdown: close admission, drain everything already
    /// queued, join the workers.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Hard shutdown: additionally cancels in-flight enumerations, which
    /// then answer with a degraded `cancelled` outcome before the workers
    /// drain and join.
    pub fn shutdown_now(self) {
        self.cancel.cancel();
        self.shutdown();
    }
}

/// Everything one worker thread needs, cloned per worker at spawn.
struct WorkerCtx {
    queue: Arc<Bounded<Job>>,
    registry: Arc<SnapshotRegistry>,
    coalescer: Arc<Coalescer>,
    defaults: RequestDefaults,
    slo_p99_us: Option<u64>,
    cancel: CancelToken,
    shutdown_flag: Arc<AtomicBool>,
}

fn worker_loop(ctx: &WorkerCtx) {
    // Per-worker warmed state: the abstract-type inference for the default
    // tenant's query site borrows its database, so it cannot be stored in
    // the registry — each worker builds it against its own pinned
    // `Arc<Snapshot>` and rebuilds both together when the registry's
    // default generation moves (a `reload`). A job popped after the swap
    // but before the rebuild is carried across the rebuild, never answered
    // from mismatched snapshot/inference state.
    let mut carried: Option<Job> = None;
    'rebuild: loop {
        let generation = ctx.registry.default_generation();
        let default_snapshot = ctx.registry.default_snapshot();
        let default_abs = default_snapshot.abs_for_site();
        loop {
            let job = match carried.take() {
                Some(job) => job,
                None => match ctx.queue.pop() {
                    Some(job) => job,
                    None => return,
                },
            };
            if ctx.registry.default_generation() != generation {
                carried = Some(job);
                continue 'rebuild;
            }
            handle_job(ctx, job, &default_snapshot, default_abs.as_ref());
        }
    }
}

fn handle_job(
    ctx: &WorkerCtx,
    job: Job,
    default_snapshot: &Arc<Snapshot>,
    default_abs: Option<&AbsTypes<'_>>,
) {
    let wait_ns = job.admitted.elapsed().as_nanos() as u64;
    pex_obs::histogram!("serve.queue.wait.ns", wait_ns);
    if pex_obs::enabled() {
        pex_obs::registry()
            .gauge("serve.queue.depth")
            .set(ctx.queue.depth() as u64);
    }
    let span = pex_obs::span("serve.request");
    let parsed = proto::parse_request(&job.line);
    let (response, disposition) = match parsed {
        Ok(Request::Query(q)) => {
            handle_query(ctx, job, q, default_snapshot, default_abs);
            return; // the query path does its own accounting and delivery
        }
        Ok(Request::Ping { id }) => (proto::pong_response(id.as_ref()), Disposition::Ok),
        Ok(Request::Stats { id }) => (
            crate::obs_json::stats_response(id.as_ref(), ctx.queue.depth(), &ctx.registry),
            Disposition::Ok,
        ),
        Ok(Request::Health { id }) => (
            crate::obs_json::health_response(
                id.as_ref(),
                ctx.queue.depth(),
                ctx.slo_p99_us,
                &ctx.registry,
            ),
            Disposition::Ok,
        ),
        Ok(Request::Reload { id, project, force }) => {
            match ctx.registry.reload(project.as_deref(), force) {
                Ok(info) => (proto::reload_response(id.as_ref(), &info), Disposition::Ok),
                Err(e @ crate::registry::ReloadError::Dirty { .. }) => (
                    proto::error_response(id.as_ref(), "dirty", &e.to_string()),
                    Disposition::Error,
                ),
                Err(crate::registry::ReloadError::Failed(msg)) => (
                    proto::error_response(id.as_ref(), "reload_failed", &msg),
                    Disposition::Error,
                ),
            }
        }
        Ok(Request::Update { id, project, edits }) => {
            pex_obs::counter!("serve.edits.received", 1);
            match ctx.registry.update(project.as_deref(), &edits) {
                Ok(info) => {
                    pex_obs::counter!("serve.edits.applied", 1);
                    if info.noop {
                        pex_obs::counter!("serve.edits.noop", 1);
                    }
                    crate::registry::tenant_counter(&info.project, "edits.applied", 1);
                    (proto::update_response(id.as_ref(), &info), Disposition::Ok)
                }
                Err(e) => {
                    pex_obs::counter!("serve.edits.rejected", 1);
                    let tenant = project.as_deref().unwrap_or(DEFAULT_TENANT);
                    crate::registry::tenant_counter(tenant, "edits.rejected", 1);
                    let response = match e {
                        crate::registry::UpdateError::Parse { line, col, message } => {
                            proto::parse_error_response(id.as_ref(), line, col, &message)
                        }
                        crate::registry::UpdateError::Failed(msg) => {
                            proto::error_response(id.as_ref(), "update_failed", &msg)
                        }
                    };
                    (response, Disposition::Error)
                }
            }
        }
        Ok(Request::Shutdown { id }) => {
            ctx.shutdown_flag.store(true, Ordering::Relaxed);
            (proto::shutdown_response(id.as_ref()), Disposition::Ok)
        }
        Err((id, msg)) => (
            proto::error_response(id.as_ref(), "bad_request", &msg),
            Disposition::Error,
        ),
    };
    drop(span);
    let total_ns = job.admitted.elapsed().as_nanos() as u64;
    pex_obs::histogram!("serve.request.ns", total_ns);
    match disposition {
        Disposition::Ok => pex_obs::counter!("serve.requests.ok", 1),
        Disposition::Degraded => pex_obs::counter!("serve.requests.degraded", 1),
        Disposition::Error => pex_obs::counter!("serve.requests.error", 1),
    }
    // A gone client (dropped receiver) is not an error; the response
    // simply has nowhere to go.
    let _ = job.reply.send(response);
}

/// Resolves the tenant, coalesces with an in-flight twin when possible,
/// runs the engine, and delivers + accounts every response this run owns.
fn handle_query(
    ctx: &WorkerCtx,
    job: Job,
    q: QueryRequest,
    default_snapshot: &Arc<Snapshot>,
    default_abs: Option<&AbsTypes<'_>>,
) {
    let tenant = q
        .project
        .clone()
        .unwrap_or_else(|| DEFAULT_TENANT.to_owned());
    // Resolve the snapshot once; everything below (including a concurrent
    // `reload`) works against this Arc, which is what makes the swap
    // drain-safe. The default tenant uses the worker's pinned snapshot so
    // the cached inference always matches the database it borrows.
    let is_default = q
        .project
        .as_deref()
        .filter(|p| *p != DEFAULT_TENANT)
        .is_none();
    let snapshot = if is_default {
        Arc::clone(default_snapshot)
    } else {
        match ctx.registry.get(q.project.as_deref()) {
            Ok(s) => s,
            Err(msg) => {
                let rest = proto::error_rest("unknown_project", &msg);
                deliver(
                    &tenant,
                    q.id.as_ref(),
                    &rest,
                    Disposition::Error,
                    job.admitted,
                    &job.reply,
                );
                return;
            }
        }
    };
    let run = |abs: Option<&AbsTypes<'_>>| {
        proto::execute_rest(&snapshot, &q, &ctx.defaults, &ctx.cancel, abs)
    };
    // Named tenants build their site inference per request: it is a
    // unification pass over one method body, small next to the engine run
    // it sharpens, and caching it per (worker, tenant) would pin evicted
    // snapshots. The default tenant — the hot path — stays prewarmed.
    let execute = || {
        if is_default {
            run(default_abs)
        } else {
            let abs = snapshot.abs_for_site();
            run(abs.as_ref())
        }
    };
    let Some(key) = q.coalesce_key() else {
        let (rest, disposition) = execute();
        deliver(
            &tenant,
            q.id.as_ref(),
            &rest,
            disposition,
            job.admitted,
            &job.reply,
        );
        return;
    };
    match ctx.coalescer.admit(
        &key,
        Waiter {
            id: q.id.clone(),
            reply: job.reply.clone(),
            admitted: job.admitted,
            tenant: tenant.clone(),
        },
    ) {
        Admitted::Follower => {
            // Parked behind the executing leader, which will deliver and
            // account for this request at fan-out. Nothing more to do on
            // this worker — it is free for non-identical work.
            pex_obs::counter!("serve.requests.coalesced", 1);
            registry::tenant_counter(&tenant, "coalesced", 1);
        }
        Admitted::Leader => {
            let (rest, disposition) = execute();
            // Collect *after* executing: twins admitted during the run are
            // in the list; twins arriving after this line find no entry
            // and lead their own run.
            let waiters = ctx.coalescer.collect(&key);
            for w in waiters {
                deliver(
                    &w.tenant,
                    w.id.as_ref(),
                    &rest,
                    disposition,
                    w.admitted,
                    &w.reply,
                );
            }
            deliver(
                &tenant,
                q.id.as_ref(),
                &rest,
                disposition,
                job.admitted,
                &job.reply,
            );
        }
    }
}

/// Assembles a response body under one request's `id`, records that
/// request's resolution (global + per-tenant counters, latency windows),
/// and sends it. Every query response — solo, leader, or coalesced
/// follower — resolves through here exactly once, which is what keeps the
/// accounting identity immune to coalescing.
fn deliver(
    tenant: &str,
    id: Option<&Value>,
    rest: &str,
    disposition: Disposition,
    admitted: Instant,
    reply: &Sender<String>,
) {
    let response = proto::assemble_response(id, rest);
    let total_ns = admitted.elapsed().as_nanos() as u64;
    pex_obs::histogram!("serve.request.ns", total_ns);
    if pex_obs::enabled() {
        // Admission-to-response in µs — the same interval a client
        // measures, so the `stats` window percentiles cross-check
        // against client-side tallies.
        pex_obs::registry()
            .windowed(crate::obs_json::REQUEST_WINDOW)
            .record(total_ns / 1_000);
    }
    let suffix = match disposition {
        Disposition::Ok => {
            pex_obs::counter!("serve.requests.ok", 1);
            "requests.ok"
        }
        Disposition::Degraded => {
            pex_obs::counter!("serve.requests.degraded", 1);
            "requests.degraded"
        }
        Disposition::Error => {
            pex_obs::counter!("serve.requests.error", 1);
            "requests.error"
        }
    };
    registry::tenant_counter(tenant, suffix, 1);
    let _ = reply.send(response);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use crate::snapshot::SnapshotSource;
    use std::sync::mpsc::channel;

    fn server(workers: usize, queue_cap: usize) -> Server {
        let snapshot = Snapshot::load(&SnapshotSource::Paint).unwrap();
        Server::start_single(
            snapshot,
            ServeConfig {
                workers,
                queue_cap,
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn answers_concurrent_queries_from_a_shared_snapshot() {
        let s = server(4, 64);
        let (tx, rx) = channel();
        const N: usize = 24;
        for i in 0..N {
            s.submit(
                format!("{{\"id\":{i},\"query\":\"?({{img, size}})\",\"limit\":3}}"),
                &tx,
            );
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..N {
            let resp = rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
            let doc = json::parse(&resp).unwrap();
            assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{resp}");
            seen.insert(doc.get("id").and_then(Value::as_u64).unwrap());
            let Some(Value::Arr(completions)) = doc.get("completions") else {
                panic!("completions expected: {resp}")
            };
            assert!(completions[0]
                .get("expr")
                .and_then(Value::as_str)
                .unwrap()
                .contains("ResizeDocument"));
        }
        assert_eq!(seen.len(), N, "every request answered exactly once");
        s.shutdown();
    }

    /// One round-trip: submit a line, wait for its response.
    fn roundtrip(s: &Server, line: &str) -> Value {
        let (tx, rx) = channel();
        s.submit(line.to_owned(), &tx);
        let resp = rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap();
        json::parse(&resp).unwrap_or_else(|e| panic!("bad response {resp}: {e}"))
    }

    #[test]
    fn updates_flip_completions_and_report_surgical_invalidations() {
        let s = server(2, 64);
        let query = r#"{"id":1,"query":"?({img, size})","limit":3}"#;
        let top_expr = |doc: &Value| -> String {
            let Some(Value::Arr(completions)) = doc.get("completions") else {
                panic!("completions expected: {doc}")
            };
            completions[0]
                .get("expr")
                .and_then(Value::as_str)
                .unwrap()
                .to_owned()
        };
        let before = roundtrip(&s, query);
        assert!(top_expr(&before).contains("ResizeDocument"), "{before}");
        // Change `Normalize`'s return type: the abstract-type boost that
        // puts ResizeDocument first flows through `Normalize(doc)`, so
        // the edit demotes it — the paper query's answer changes.
        let unit = r#"namespace PaintDotNet.Client { class DocumentUtils { static System.Drawing.Size Normalize(PaintDotNet.Document d); static System.Drawing.Size Clamp(System.Drawing.Size s) { return s; } } }"#;
        let update = format!(
            "{{\"id\":2,\"cmd\":\"update\",\"source\":\"{}\"}}",
            json::escape(unit)
        );
        let doc = roundtrip(&s, &update);
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{doc}");
        assert_eq!(doc.get("noop"), Some(&Value::Bool(false)));
        let invalidated = doc.get("invalidated").expect("invalidation report");
        assert!(
            invalidated
                .get("candidates")
                .and_then(Value::as_u64)
                .unwrap()
                > 0,
            "a signature change must invalidate candidate memo rows: {doc}"
        );
        let after = roundtrip(&s, query);
        assert_ne!(
            top_expr(&before),
            top_expr(&after),
            "the edit must change the paper query's top completion"
        );
        // Re-sending the same unit is a no-op: zero invalidations.
        let doc = roundtrip(&s, &update);
        assert_eq!(doc.get("noop"), Some(&Value::Bool(true)), "{doc}");
        let invalidated = doc.get("invalidated").expect("invalidation report");
        for key in ["chains", "candidates", "conversions", "reach"] {
            assert_eq!(
                invalidated.get(key).and_then(Value::as_u64),
                Some(0),
                "no-op update invalidated {key}: {doc}"
            );
        }
        s.shutdown();
    }

    #[test]
    fn garbled_updates_answer_parse_error_and_change_nothing() {
        let s = server(2, 64);
        let query = r#"{"id":1,"query":"?({img, size})","limit":5}"#;
        let before = roundtrip(&s, query);
        let doc = roundtrip(
            &s,
            r#"{"id":2,"cmd":"update","source":"namespace X {\n  class Broken {"}"#,
        );
        assert_eq!(doc.get("ok"), Some(&Value::Bool(false)), "{doc}");
        assert_eq!(
            doc.get("error").and_then(Value::as_str),
            Some("parse_error"),
            "{doc}"
        );
        assert!(
            doc.get("line").and_then(Value::as_u64).unwrap() >= 1,
            "{doc}"
        );
        assert!(
            doc.get("col").and_then(Value::as_u64).unwrap() >= 1,
            "{doc}"
        );
        // The snapshot is untouched: the same query answers with the
        // byte-identical completion list (exprs, scores, order).
        let after = roundtrip(&s, query);
        assert_eq!(
            before.get("completions"),
            after.get("completions"),
            "completions changed across a rejected update"
        );
        assert_eq!(before.get("outcome"), after.get("outcome"));
        s.shutdown();
    }

    #[test]
    fn full_queue_sheds_explicitly() {
        // One worker and a tiny queue; flood it faster than one worker can
        // drain. Every submission gets *some* response: ok or shed.
        // Distinct ids keep the requests from coalescing (the id is not in
        // the coalesce key, but the limit knob here is) — vary the limit so
        // each request is genuinely distinct work.
        let s = server(1, 1);
        let (tx, rx) = channel();
        const N: usize = 40;
        for i in 0..N {
            s.submit(
                format!("{{\"id\":{i},\"query\":\"?\",\"limit\":{}}}", 50 + i),
                &tx,
            );
        }
        let mut ok = 0;
        let mut shed = 0;
        for _ in 0..N {
            let resp = rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap();
            let doc = json::parse(&resp).unwrap();
            match doc.get("error").and_then(Value::as_str) {
                Some("shed") => shed += 1,
                None => ok += 1,
                Some(other) => panic!("unexpected error kind {other}: {resp}"),
            }
        }
        assert_eq!(ok + shed, N);
        assert!(ok > 0, "the worker must make progress");
        assert!(
            shed > 0,
            "a 1-deep queue under a 40-request burst must shed"
        );
        s.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let s = server(2, 64);
        let (tx, rx) = channel();
        for i in 0..10 {
            s.submit(format!("{{\"id\":{i},\"query\":\"img.?f\"}}"), &tx);
        }
        s.shutdown();
        drop(tx);
        let responses: Vec<String> = rx.iter().collect();
        assert_eq!(
            responses.len(),
            10,
            "graceful shutdown answers everything admitted"
        );
    }

    #[test]
    fn submissions_after_close_get_a_shutdown_error() {
        let s = server(1, 8);
        let (tx, rx) = channel();
        s.queue.close();
        s.submit("{\"id\":1,\"query\":\"?\"}".into(), &tx);
        let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert!(resp.contains("\"error\":\"shutdown\""), "{resp}");
        s.shutdown();
    }

    #[test]
    fn workers_ack_shutdown_commands_and_raise_the_flag() {
        let s = server(1, 8);
        let (tx, rx) = channel();
        assert!(!s.shutdown_requested());
        s.submit("{\"id\":7,\"cmd\":\"shutdown\"}".into(), &tx);
        let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert!(resp.contains("\"shutdown\":true"), "{resp}");
        assert!(s.shutdown_requested());
        s.shutdown();
    }

    #[test]
    fn malformed_lines_get_bad_request_not_a_crash() {
        let s = server(2, 8);
        let (tx, rx) = channel();
        s.submit("this is not json".into(), &tx);
        s.submit("{\"id\":3}".into(), &tx);
        for _ in 0..2 {
            let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
            let doc = json::parse(&resp).unwrap();
            assert_eq!(
                doc.get("error").and_then(Value::as_str),
                Some("bad_request"),
                "{resp}"
            );
        }
        // The pool survives and still answers real queries.
        s.submit("{\"id\":4,\"cmd\":\"ping\"}".into(), &tx);
        let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert!(resp.contains("\"pong\":true"), "{resp}");
        s.shutdown();
    }

    #[test]
    fn stats_and_health_commands_answer_from_the_live_registry() {
        pex_obs::set_enabled(true);
        let s = server(2, 16);
        let (tx, rx) = channel();
        let timeout = std::time::Duration::from_secs(30);
        s.submit("{\"id\":1,\"query\":\"?\",\"limit\":3}".into(), &tx);
        let resp = rx.recv_timeout(timeout).unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");

        s.submit("{\"id\":2,\"cmd\":\"stats\"}".into(), &tx);
        let resp = rx.recv_timeout(timeout).unwrap();
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{resp}");
        let stats = doc.get("stats").expect("stats body");
        assert!(stats.get("queue_depth").and_then(Value::as_u64).is_some());
        let w60 = stats
            .get("windows")
            .and_then(|w| w.get("60s"))
            .expect("60s window");
        assert!(
            w60.get("count").and_then(Value::as_u64).unwrap() >= 1,
            "the query latency landed in the window: {resp}"
        );

        s.submit("{\"id\":3,\"cmd\":\"health\"}".into(), &tx);
        let resp = rx.recv_timeout(timeout).unwrap();
        let doc = json::parse(&resp).unwrap();
        let health = doc.get("health").expect("health body");
        let requests = health.get("requests").expect("request accounting");
        let field = |k: &str| requests.get(k).and_then(Value::as_u64).unwrap();
        assert_eq!(
            field("received"),
            field("ok") + field("degraded") + field("shed") + field("errors") + field("pending"),
            "accounting identity: {resp}"
        );
        assert!(health.get("slo").is_some(), "{resp}");
        // The tenant table lists at least the pinned default tenant.
        let tenants = health.get("tenants").expect("tenant table: {resp}");
        assert!(tenants.get(DEFAULT_TENANT).is_some(), "{resp}");
        s.shutdown();
    }

    #[test]
    fn project_queries_route_to_their_tenant_snapshot() {
        let registry = Arc::new(SnapshotRegistry::single(
            Snapshot::load(&SnapshotSource::Paint).unwrap(),
        ));
        registry
            .insert("geo", Snapshot::load(&SnapshotSource::Geometry).unwrap())
            .unwrap();
        let s = Server::start(Arc::clone(&registry), ServeConfig::default());
        let (tx, rx) = channel();
        let timeout = std::time::Duration::from_secs(30);
        // The geometry context knows `point` (a Point local); paint does not.
        s.submit(
            "{\"id\":1,\"query\":\"point.?f\",\"project\":\"geo\",\"limit\":3}".into(),
            &tx,
        );
        let resp = rx.recv_timeout(timeout).unwrap();
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{resp}");
        // The same query against the default (paint) tenant fails to parse:
        // proof the `project` field selected a different snapshot.
        s.submit("{\"id\":2,\"query\":\"point.?f\",\"limit\":3}".into(), &tx);
        let resp = rx.recv_timeout(timeout).unwrap();
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("error").and_then(Value::as_str), Some("parse"));
        // Unknown tenants get the explicit error kind.
        s.submit(
            "{\"id\":3,\"query\":\"?\",\"project\":\"nope\"}".into(),
            &tx,
        );
        let resp = rx.recv_timeout(timeout).unwrap();
        let doc = json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("error").and_then(Value::as_str),
            Some("unknown_project"),
            "{resp}"
        );
        // A reload with no origin reports `reload_failed`, keeps serving.
        s.submit("{\"id\":4,\"cmd\":\"reload\"}".into(), &tx);
        let resp = rx.recv_timeout(timeout).unwrap();
        let doc = json::parse(&resp).unwrap();
        assert_eq!(
            doc.get("error").and_then(Value::as_str),
            Some("reload_failed"),
            "{resp}"
        );
        s.submit("{\"id\":5,\"cmd\":\"ping\"}".into(), &tx);
        assert!(rx.recv_timeout(timeout).unwrap().contains("pong"));
        s.shutdown();
    }

    #[test]
    fn identical_inflight_queries_coalesce_into_one_run() {
        pex_obs::set_enabled(true);
        // Coalescing needs genuine overlap: a worker must pop a twin while
        // the leader is mid-run. Under a loaded test host a fast run can
        // finish before the second worker ever wakes, so burst a few times
        // and require at least one burst to overlap.
        const N: usize = 32;
        const ATTEMPTS: usize = 5;
        let mut coalesced = 0u64;
        for attempt in 0..ATTEMPTS {
            let before = pex_obs::registry()
                .counter("serve.requests.coalesced")
                .get();
            // Two workers: one leads the expensive run, the other drains
            // the queue into the coalescer while the leader executes.
            let s = server(2, 64);
            let (tx, rx) = channel();
            for i in 0..N {
                // Identical work (same key); distinct ids (not in the key).
                s.submit(
                    format!("{{\"id\":{i},\"query\":\"?\",\"limit\":400,\"max_steps\":2000000}}"),
                    &tx,
                );
            }
            let mut bodies = std::collections::HashSet::new();
            let mut seen = std::collections::HashSet::new();
            for _ in 0..N {
                let resp = rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap();
                let doc = json::parse(&resp).unwrap();
                assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{resp}");
                seen.insert(doc.get("id").and_then(Value::as_u64).unwrap());
                // Strip the id prefix: coalesced twins share the body bytes.
                bodies.insert(resp.split_once(',').unwrap().1.to_owned());
            }
            s.shutdown();
            assert_eq!(seen.len(), N, "every twin answered under its own id");
            coalesced = pex_obs::registry()
                .counter("serve.requests.coalesced")
                .get()
                - before;
            assert!(
                (bodies.len() as u64) <= N as u64 - coalesced,
                "each coalesced follower shares a leader's body: {} bodies, {coalesced} coalesced",
                bodies.len()
            );
            if coalesced >= 1 {
                break;
            }
            eprintln!("attempt {attempt}: no overlap, retrying");
        }
        assert!(
            coalesced >= 1,
            "identical in-flight queries never coalesced in {ATTEMPTS} bursts"
        );
    }

    #[test]
    fn default_reload_rebuilds_workers_without_dropping_requests() {
        use crate::registry::DefaultOrigin;
        // A registry whose default can be rebuilt from its source.
        let registry = Arc::new(SnapshotRegistry::new(
            Snapshot::load(&SnapshotSource::Paint).unwrap(),
            DefaultOrigin::Source {
                source: SnapshotSource::Paint,
                locals: Vec::new(),
            },
            None,
            None,
        ));
        // Explicit queue headroom: on a single-core runner the default
        // cap (workers * 16) can be exactly the burst size, and whether
        // the lone worker drains a slot mid-burst is a scheduler race.
        let config = ServeConfig {
            queue_cap: 64,
            ..ServeConfig::default()
        };
        let s = Server::start(Arc::clone(&registry), config);
        let (tx, rx) = channel();
        let timeout = std::time::Duration::from_secs(60);
        const BEFORE: usize = 8;
        const AFTER: usize = 8;
        for i in 0..BEFORE {
            s.submit(
                format!(
                    "{{\"id\":{i},\"query\":\"?({{img, size}})\",\"limit\":{}}}",
                    3 + i
                ),
                &tx,
            );
        }
        s.submit("{\"id\":100,\"cmd\":\"reload\"}".into(), &tx);
        for i in 0..AFTER {
            s.submit(
                format!(
                    "{{\"id\":{},\"query\":\"?({{img, size}})\",\"limit\":{}}}",
                    200 + i,
                    3 + i
                ),
                &tx,
            );
        }
        let mut answered = 0;
        let mut reloaded = false;
        for _ in 0..(BEFORE + AFTER + 1) {
            let resp = rx.recv_timeout(timeout).unwrap();
            let doc = json::parse(&resp).unwrap();
            assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{resp}");
            if doc.get("reloaded").is_some() {
                reloaded = true;
            } else {
                answered += 1;
            }
        }
        assert!(reloaded, "the reload was acknowledged");
        assert_eq!(
            answered,
            BEFORE + AFTER,
            "zero requests dropped across the hot swap"
        );
        assert!(registry.default_generation() >= 1);
        s.shutdown();
    }
}
