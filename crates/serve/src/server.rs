//! The worker pool: a fixed set of threads answering protocol requests
//! from a shared [`Snapshot`] behind a bounded admission queue.
//!
//! Design invariants:
//!
//! * **One snapshot, many workers.** Workers share one `Arc<Snapshot>`;
//!   nothing per-request touches mutable global state, so adding workers
//!   scales reads without locks.
//! * **Explicit load shedding.** [`Server::submit`] either admits a
//!   request or immediately replies with a `shed`/`shutdown` error — a
//!   request on a live connection is never silently dropped.
//! * **Graceful shutdown.** [`Server::shutdown`] closes admission, lets
//!   the workers drain everything already queued, and joins them. The
//!   shared [`CancelToken`] is only tripped by [`Server::shutdown_now`],
//!   which additionally stops in-flight enumerations at their next budget
//!   poll (each then answers with a degraded `cancelled` outcome).
//!
//! Observability (all through `pex-obs`):
//! `serve.requests.{received,ok,degraded,error,shed}` counters (`received`
//! counts every submitted line, the rest its resolution — their difference
//! is the in-flight count the `health` command reports), `serve.queue.depth`
//! / `serve.queue.depth.max` gauges, `serve.queue.wait.ns` and
//! `serve.request.ns` latency histograms, a `serve.request` tracing span
//! per executed request, and the rolling windows behind `stats`/`health`
//! (see [`crate::obs_json`] for the window names).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use pex_core::CancelToken;

use crate::proto::{self, Request, RequestDefaults};
use crate::queue::{Bounded, PushError};
use crate::snapshot::Snapshot;

/// Server sizing and per-request defaults.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads. Defaults to the machine's available parallelism.
    pub workers: usize,
    /// Admission queue capacity; a full queue sheds (it never blocks the
    /// transport and never drops silently).
    pub queue_cap: usize,
    /// Fallbacks for optional request fields.
    pub defaults: RequestDefaults,
    /// SLO threshold for the `health` command's burn flag: burning when
    /// the rolling-window p99 latency (µs) exceeds this. `None` disables
    /// the flag.
    pub slo_p99_us: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServeConfig {
            workers,
            queue_cap: workers * 16,
            defaults: RequestDefaults::default(),
            slo_p99_us: None,
        }
    }
}

/// One admitted request: the raw line, where to send the response, and
/// when it was admitted (for queue-wait accounting).
struct Job {
    line: String,
    reply: Sender<String>,
    admitted: Instant,
}

/// A running worker pool. Dropping without calling [`Server::shutdown`]
/// aborts the drain (the queue closes and workers finish the items they
/// already hold), so call `shutdown` for a clean exit.
pub struct Server {
    queue: Arc<Bounded<Job>>,
    workers: Vec<JoinHandle<()>>,
    cancel: CancelToken,
    shutdown_flag: Arc<AtomicBool>,
}

/// A cheap, cloneable, thread-safe handle for submitting requests — what
/// transports (socket connections, load-generator clients) hold while the
/// [`Server`] itself stays with the thread that will join it.
#[derive(Clone)]
pub struct ServerClient {
    queue: Arc<Bounded<Job>>,
    shutdown_flag: Arc<AtomicBool>,
}

impl ServerClient {
    /// Admits one request line, or replies immediately with an explicit
    /// `shed` (queue full) or `shutdown` (draining) error. The response —
    /// whichever kind — arrives on `reply`.
    pub fn submit(&self, line: String, reply: &Sender<String>) {
        // `received` counts before any resolution counter can fire, so
        // `received - (ok+degraded+shed+errors)` is a true in-flight count.
        pex_obs::counter!("serve.requests.received", 1);
        if pex_obs::enabled() {
            pex_obs::registry()
                .windowed(crate::obs_json::RECEIVED_WINDOW)
                .record(1);
        }
        let job = Job {
            line,
            reply: reply.clone(),
            admitted: Instant::now(),
        };
        match self.queue.try_push(job) {
            Ok(depth) => {
                if pex_obs::enabled() {
                    pex_obs::registry()
                        .gauge("serve.queue.depth")
                        .set(depth as u64);
                }
                pex_obs::gauge_max!("serve.queue.depth.max", depth as u64);
            }
            Err(PushError::Full(job)) => {
                pex_obs::counter!("serve.requests.shed", 1);
                if pex_obs::enabled() {
                    pex_obs::registry()
                        .windowed(crate::obs_json::SHED_WINDOW)
                        .record(1);
                }
                let _ = job.reply.send(proto::shed_response(&job.line));
            }
            Err(PushError::Closed(job)) => {
                pex_obs::counter!("serve.requests.error", 1);
                let id = crate::json::parse(&job.line)
                    .ok()
                    .and_then(|d| d.get("id").cloned());
                let _ = job.reply.send(proto::error_response(
                    id.as_ref(),
                    "shutdown",
                    "server is shutting down",
                ));
            }
        }
    }

    /// Whether shutdown has been requested (see [`Server::shutdown_requested`]).
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }

    /// Marks the server as shutting down, so transports stop accepting.
    pub fn request_shutdown(&self) {
        self.shutdown_flag.store(true, Ordering::Relaxed);
    }
}

impl Server {
    /// Spawns `config.workers` workers over the shared snapshot.
    pub fn start(snapshot: Arc<Snapshot>, config: ServeConfig) -> Server {
        let queue = Arc::new(Bounded::new(config.queue_cap));
        let cancel = CancelToken::new();
        let shutdown_flag = Arc::new(AtomicBool::new(false));
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let snapshot = Arc::clone(&snapshot);
                let defaults = config.defaults.clone();
                let slo_p99_us = config.slo_p99_us;
                let cancel = cancel.clone();
                let shutdown_flag = Arc::clone(&shutdown_flag);
                std::thread::Builder::new()
                    .name(format!("pex-serve-worker-{i}"))
                    .spawn(move || {
                        worker_loop(
                            &queue,
                            &snapshot,
                            &defaults,
                            slo_p99_us,
                            &cancel,
                            &shutdown_flag,
                        )
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Server {
            queue,
            workers,
            cancel,
            shutdown_flag,
        }
    }

    /// Admits one request line, or replies immediately with an explicit
    /// `shed` (queue full) or `shutdown` (draining) error. The response —
    /// whichever kind — arrives on `reply`.
    pub fn submit(&self, line: String, reply: &Sender<String>) {
        self.client().submit(line, reply)
    }

    /// A cheap cloneable handle over the transport surface (submit +
    /// shutdown flag), for threads that must outlive borrows of `self`.
    pub fn client(&self) -> ServerClient {
        ServerClient {
            queue: Arc::clone(&self.queue),
            shutdown_flag: Arc::clone(&self.shutdown_flag),
        }
    }

    /// The cancel token shared with every in-flight query.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Whether a client has requested shutdown (a `{"cmd":"shutdown"}`
    /// handled by a worker) or [`Server::request_shutdown`] was called.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_flag.load(Ordering::Relaxed)
    }

    /// Marks the server as shutting down, so transports stop accepting.
    /// Admission stays open until [`Server::shutdown`] to let responses
    /// already promised (e.g. the shutdown ack) flow.
    pub fn request_shutdown(&self) {
        self.shutdown_flag.store(true, Ordering::Relaxed);
    }

    /// Graceful shutdown: close admission, drain everything already
    /// queued, join the workers.
    pub fn shutdown(self) {
        self.request_shutdown();
        self.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Hard shutdown: additionally cancels in-flight enumerations, which
    /// then answer with a degraded `cancelled` outcome before the workers
    /// drain and join.
    pub fn shutdown_now(self) {
        self.cancel.cancel();
        self.shutdown();
    }
}

fn worker_loop(
    queue: &Bounded<Job>,
    snapshot: &Snapshot,
    defaults: &RequestDefaults,
    slo_p99_us: Option<u64>,
    cancel: &CancelToken,
    shutdown_flag: &AtomicBool,
) {
    use proto::Disposition;
    // Per-worker warmed state: the abstract-type inference for the default
    // query site borrows the database, so it lives here rather than in the
    // snapshot. Built once, reused for every default-context request.
    let abs = snapshot.abs_for_site();
    while let Some(job) = queue.pop() {
        let wait_ns = job.admitted.elapsed().as_nanos() as u64;
        pex_obs::histogram!("serve.queue.wait.ns", wait_ns);
        if pex_obs::enabled() {
            pex_obs::registry()
                .gauge("serve.queue.depth")
                .set(queue.depth() as u64);
        }
        let span = pex_obs::span("serve.request");
        let parsed = proto::parse_request(&job.line);
        let is_query = matches!(parsed, Ok(Request::Query(_)));
        let (response, disposition) = match parsed {
            Ok(Request::Query(q)) => proto::execute(snapshot, &q, defaults, cancel, abs.as_ref()),
            Ok(Request::Ping { id }) => (proto::pong_response(id.as_ref()), Disposition::Ok),
            Ok(Request::Stats { id }) => (
                crate::obs_json::stats_response(id.as_ref(), queue.depth()),
                Disposition::Ok,
            ),
            Ok(Request::Health { id }) => (
                crate::obs_json::health_response(id.as_ref(), queue.depth(), slo_p99_us),
                Disposition::Ok,
            ),
            Ok(Request::Shutdown { id }) => {
                shutdown_flag.store(true, Ordering::Relaxed);
                (proto::shutdown_response(id.as_ref()), Disposition::Ok)
            }
            Err((id, msg)) => (
                proto::error_response(id.as_ref(), "bad_request", &msg),
                Disposition::Error,
            ),
        };
        drop(span);
        let total_ns = job.admitted.elapsed().as_nanos() as u64;
        pex_obs::histogram!("serve.request.ns", total_ns);
        if is_query && pex_obs::enabled() {
            // Admission-to-response in µs — the same interval a client
            // measures, so the `stats` window percentiles cross-check
            // against client-side tallies.
            pex_obs::registry()
                .windowed(crate::obs_json::REQUEST_WINDOW)
                .record(total_ns / 1_000);
        }
        match disposition {
            Disposition::Ok => pex_obs::counter!("serve.requests.ok", 1),
            Disposition::Degraded => pex_obs::counter!("serve.requests.degraded", 1),
            Disposition::Error => pex_obs::counter!("serve.requests.error", 1),
        }
        // A gone client (dropped receiver) is not an error; the response
        // simply has nowhere to go.
        let _ = job.reply.send(response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{self, Value};
    use crate::snapshot::SnapshotSource;
    use std::sync::mpsc::channel;

    fn server(workers: usize, queue_cap: usize) -> Server {
        let snapshot = Snapshot::load(&SnapshotSource::Paint).unwrap();
        Server::start(
            snapshot,
            ServeConfig {
                workers,
                queue_cap,
                ..ServeConfig::default()
            },
        )
    }

    #[test]
    fn answers_concurrent_queries_from_a_shared_snapshot() {
        let s = server(4, 64);
        let (tx, rx) = channel();
        const N: usize = 24;
        for i in 0..N {
            s.submit(
                format!("{{\"id\":{i},\"query\":\"?({{img, size}})\",\"limit\":3}}"),
                &tx,
            );
        }
        let mut seen = std::collections::HashSet::new();
        for _ in 0..N {
            let resp = rx.recv_timeout(std::time::Duration::from_secs(30)).unwrap();
            let doc = json::parse(&resp).unwrap();
            assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{resp}");
            seen.insert(doc.get("id").and_then(Value::as_u64).unwrap());
            let Some(Value::Arr(completions)) = doc.get("completions") else {
                panic!("completions expected: {resp}")
            };
            assert!(completions[0]
                .get("expr")
                .and_then(Value::as_str)
                .unwrap()
                .contains("ResizeDocument"));
        }
        assert_eq!(seen.len(), N, "every request answered exactly once");
        s.shutdown();
    }

    #[test]
    fn full_queue_sheds_explicitly() {
        // One worker and a tiny queue; flood it faster than one worker can
        // drain. Every submission gets *some* response: ok or shed.
        let s = server(1, 1);
        let (tx, rx) = channel();
        const N: usize = 40;
        for i in 0..N {
            s.submit(format!("{{\"id\":{i},\"query\":\"?\",\"limit\":50}}"), &tx);
        }
        let mut ok = 0;
        let mut shed = 0;
        for _ in 0..N {
            let resp = rx.recv_timeout(std::time::Duration::from_secs(60)).unwrap();
            let doc = json::parse(&resp).unwrap();
            match doc.get("error").and_then(Value::as_str) {
                Some("shed") => shed += 1,
                None => ok += 1,
                Some(other) => panic!("unexpected error kind {other}: {resp}"),
            }
        }
        assert_eq!(ok + shed, N);
        assert!(ok > 0, "the worker must make progress");
        assert!(
            shed > 0,
            "a 1-deep queue under a 40-request burst must shed"
        );
        s.shutdown();
    }

    #[test]
    fn shutdown_drains_admitted_requests() {
        let s = server(2, 64);
        let (tx, rx) = channel();
        for i in 0..10 {
            s.submit(format!("{{\"id\":{i},\"query\":\"img.?f\"}}"), &tx);
        }
        s.shutdown();
        drop(tx);
        let responses: Vec<String> = rx.iter().collect();
        assert_eq!(
            responses.len(),
            10,
            "graceful shutdown answers everything admitted"
        );
    }

    #[test]
    fn submissions_after_close_get_a_shutdown_error() {
        let s = server(1, 8);
        let (tx, rx) = channel();
        s.queue.close();
        s.submit("{\"id\":1,\"query\":\"?\"}".into(), &tx);
        let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert!(resp.contains("\"error\":\"shutdown\""), "{resp}");
        s.shutdown();
    }

    #[test]
    fn workers_ack_shutdown_commands_and_raise_the_flag() {
        let s = server(1, 8);
        let (tx, rx) = channel();
        assert!(!s.shutdown_requested());
        s.submit("{\"id\":7,\"cmd\":\"shutdown\"}".into(), &tx);
        let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert!(resp.contains("\"shutdown\":true"), "{resp}");
        assert!(s.shutdown_requested());
        s.shutdown();
    }

    #[test]
    fn malformed_lines_get_bad_request_not_a_crash() {
        let s = server(2, 8);
        let (tx, rx) = channel();
        s.submit("this is not json".into(), &tx);
        s.submit("{\"id\":3}".into(), &tx);
        for _ in 0..2 {
            let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
            let doc = json::parse(&resp).unwrap();
            assert_eq!(
                doc.get("error").and_then(Value::as_str),
                Some("bad_request"),
                "{resp}"
            );
        }
        // The pool survives and still answers real queries.
        s.submit("{\"id\":4,\"cmd\":\"ping\"}".into(), &tx);
        let resp = rx.recv_timeout(std::time::Duration::from_secs(5)).unwrap();
        assert!(resp.contains("\"pong\":true"), "{resp}");
        s.shutdown();
    }

    #[test]
    fn stats_and_health_commands_answer_from_the_live_registry() {
        pex_obs::set_enabled(true);
        let s = server(2, 16);
        let (tx, rx) = channel();
        let timeout = std::time::Duration::from_secs(30);
        s.submit("{\"id\":1,\"query\":\"?\",\"limit\":3}".into(), &tx);
        let resp = rx.recv_timeout(timeout).unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");

        s.submit("{\"id\":2,\"cmd\":\"stats\"}".into(), &tx);
        let resp = rx.recv_timeout(timeout).unwrap();
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)), "{resp}");
        let stats = doc.get("stats").expect("stats body");
        assert!(stats.get("queue_depth").and_then(Value::as_u64).is_some());
        let w60 = stats
            .get("windows")
            .and_then(|w| w.get("60s"))
            .expect("60s window");
        assert!(
            w60.get("count").and_then(Value::as_u64).unwrap() >= 1,
            "the query latency landed in the window: {resp}"
        );

        s.submit("{\"id\":3,\"cmd\":\"health\"}".into(), &tx);
        let resp = rx.recv_timeout(timeout).unwrap();
        let doc = json::parse(&resp).unwrap();
        let health = doc.get("health").expect("health body");
        let requests = health.get("requests").expect("request accounting");
        let field = |k: &str| requests.get(k).and_then(Value::as_u64).unwrap();
        assert_eq!(
            field("received"),
            field("ok") + field("degraded") + field("shed") + field("errors") + field("pending"),
            "accounting identity: {resp}"
        );
        assert!(health.get("slo").is_some(), "{resp}");
        s.shutdown();
    }
}
