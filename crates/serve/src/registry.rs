//! The multi-tenant snapshot registry: many projects, one process.
//!
//! A [`SnapshotRegistry`] maps project ids to [`Arc<Snapshot>`]s so a
//! fleet of independent corpora can share one daemon:
//!
//! * **Default tenant.** The snapshot the process booted with (corpus
//!   argument or `--load-snapshot`) serves every request that carries no
//!   `project` field — the single-tenant protocol is the degenerate case,
//!   byte-for-byte. The default is pinned: it never counts against the
//!   byte budget and is never evicted.
//! * **Lazy load.** A request naming a project not yet resident loads
//!   `<project>.pexsnap` from `--snapshot-dir` on demand (the
//!   `pex-snapshot/1` format, full validation — see [`crate::persist`]).
//!   Project ids are validated against a conservative alphabet first, so
//!   a request can never path-traverse out of the snapshot directory.
//! * **LRU eviction.** Each resident tenant is accounted at its snapshot
//!   file's byte length (or [`Snapshot::approx_bytes`] for tenants
//!   inserted in memory). When residency would exceed
//!   `--max-snapshot-bytes`, least-recently-used tenants are dropped
//!   from the map. In-flight requests keep their own `Arc` clones, so an
//!   evicted snapshot's memory is actually released when the last request
//!   against it completes — eviction never interrupts a query.
//! * **Hot swap.** [`SnapshotRegistry::reload`] rebuilds a tenant from
//!   its origin (the snapshot file, or the default's corpus source) and
//!   atomically flips the `Arc` in the map. Requests admitted before the
//!   flip drain against the old snapshot; requests admitted after see the
//!   new one. No request is ever dropped or answered from a half-swapped
//!   state, because a worker resolves its `Arc<Snapshot>` exactly once
//!   per request.
//!
//! Observability: `serve.registry.{loads,evictions,reloads}` counters,
//! `serve.registry.{resident,resident_bytes}` gauges, and per-tenant
//! `serve.tenant.<id>.*` counters named via [`pex_obs::scoped_name`].

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use pex_model::minics::MiniCsError;

use crate::persist;
use crate::snapshot::{Snapshot, SnapshotSource, UpdateStats};

/// The tenant id requests without a `project` field resolve to, used in
/// per-tenant metrics and the `stats`/`health` tenant tables.
pub const DEFAULT_TENANT: &str = "default";

/// Where the default tenant's snapshot came from, so `reload` (without a
/// `project`) can rebuild it the same way the process booted.
#[derive(Debug, Clone)]
pub enum DefaultOrigin {
    /// Built from a corpus source (builtin name or mini-C# file), with the
    /// `--local` declarations applied on top.
    Source {
        /// The corpus the daemon booted from.
        source: SnapshotSource,
        /// `--local name:Type` declarations folded into the default context.
        locals: Vec<String>,
    },
    /// Loaded from a `pex-snapshot/1` file (`--load-snapshot`).
    File {
        /// The snapshot file the daemon booted from.
        path: PathBuf,
        /// `--local name:Type` declarations folded into the default context.
        locals: Vec<String>,
    },
    /// Handed in as an in-memory `Arc` with no rebuildable origin (the
    /// in-process bench and tests); `reload` of the default is an error.
    Fixed,
}

impl DefaultOrigin {
    /// Rebuilds the default snapshot from its origin.
    fn rebuild(&self) -> Result<Arc<Snapshot>, String> {
        let (loaded, locals) = match self {
            DefaultOrigin::Source { source, locals } => (Snapshot::load(source)?, locals),
            DefaultOrigin::File { path, locals } => (persist::load(path)?, locals),
            DefaultOrigin::Fixed => {
                return Err(
                    "the default tenant was created in memory and has no reload origin".to_owned(),
                )
            }
        };
        apply_locals(loaded, locals)
    }
}

/// Rebuilds a freshly loaded snapshot's default context from `--local`
/// declarations (the same transformation `pex-serve` applies at boot).
pub fn apply_locals(snapshot: Arc<Snapshot>, locals: &[String]) -> Result<Arc<Snapshot>, String> {
    if locals.is_empty() {
        return Ok(snapshot);
    }
    let ctx = snapshot.context_for(locals)?;
    let inner = Arc::try_unwrap(snapshot)
        .unwrap_or_else(|_| panic!("freshly loaded snapshot has one owner"));
    Ok(Arc::new(Snapshot {
        default_ctx: ctx,
        ..inner
    }))
}

/// One resident tenant: the live snapshot, its byte accounting, and its
/// LRU clock reading.
struct TenantEntry {
    snapshot: Arc<Snapshot>,
    bytes: u64,
    last_used: u64,
    /// The snapshot carries incremental edits not present in its origin
    /// (`.pexsnap` file or boot source). Dirty tenants are exempt from
    /// LRU eviction and refuse a plain `reload` — both would silently
    /// discard the edits.
    dirty: bool,
}

struct Inner {
    default: Arc<Snapshot>,
    tenants: HashMap<String, TenantEntry>,
    resident_bytes: u64,
    /// The default snapshot carries incremental edits; a plain `reload`
    /// (which rebuilds from the boot origin) refuses without `force`.
    default_dirty: bool,
}

/// What a successful [`SnapshotRegistry::reload`] reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadInfo {
    /// The tenant that was swapped.
    pub project: String,
    /// Accounted size of the fresh snapshot, in bytes.
    pub bytes: u64,
    /// Whether the tenant was already resident (a true hot swap) rather
    /// than a first load.
    pub swapped: bool,
    /// Whether the reload discarded unsaved incremental edits (only
    /// possible with `force`).
    pub discarded_edits: bool,
}

/// Why a [`SnapshotRegistry::reload`] was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReloadError {
    /// The tenant carries incremental edits a plain reload would silently
    /// discard; retry with `force` to discard them explicitly.
    Dirty {
        /// The tenant that refused.
        project: String,
    },
    /// The rebuild itself failed (missing origin, bad file, invalid id).
    Failed(String),
}

impl std::fmt::Display for ReloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReloadError::Dirty { project } => write!(
                f,
                "tenant `{project}` has unsaved incremental edits; \
                 reload with \"force\":true to discard them"
            ),
            ReloadError::Failed(msg) => f.write_str(msg),
        }
    }
}

/// What a successful [`SnapshotRegistry::update`] reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateInfo {
    /// The tenant that was edited.
    pub project: String,
    /// How many edits in the batch were applied (no-ops included).
    pub applied: usize,
    /// Whether the whole batch was a no-op (snapshot untouched).
    pub noop: bool,
    /// Accounted size of the edited snapshot, in bytes.
    pub bytes: u64,
    /// The default-swap generation after the update (0 for named
    /// tenants, which have no generation counter).
    pub generation: u64,
    /// Aggregated per-edit statistics: what was invalidated and what
    /// survived.
    pub stats: UpdateStats,
}

/// Why a [`SnapshotRegistry::update`] was refused. Either way the
/// tenant's snapshot is untouched and subsequent queries answer exactly
/// as before the attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The edited source failed to parse or resolve; position is 1-based.
    Parse {
        /// Line of the first error.
        line: u32,
        /// Column of the first error.
        col: u32,
        /// Human-readable description.
        message: String,
    },
    /// Anything else: unknown tenant, invalid project id, empty batch.
    Failed(String),
}

impl From<MiniCsError> for UpdateError {
    fn from(e: MiniCsError) -> UpdateError {
        UpdateError::Parse {
            line: e.line,
            col: e.col,
            message: e.msg,
        }
    }
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::Parse { line, col, message } => {
                write!(f, "{line}:{col}: {message}")
            }
            UpdateError::Failed(msg) => f.write_str(msg),
        }
    }
}

/// Point-in-time description of one tenant for `stats`/`health`.
#[derive(Debug, Clone)]
pub struct TenantInfo {
    /// The tenant id (`default` for the pinned default tenant).
    pub project: String,
    /// Accounted bytes (0 for the exempt default tenant).
    pub bytes: u64,
    /// Whether this is the pinned, budget-exempt default tenant.
    pub pinned: bool,
    /// Whether the tenant carries incremental edits not yet persisted to
    /// its origin.
    pub dirty: bool,
}

/// The tenant map: default snapshot + named tenants with lazy load, LRU
/// eviction under a byte budget, and atomic hot swap. See the module docs
/// for the full semantics.
pub struct SnapshotRegistry {
    inner: Mutex<Inner>,
    /// Serializes incremental updates: each edit reads the current
    /// snapshot, patches it, and swaps — holding this across the
    /// read-patch-swap keeps concurrent edits from losing each other.
    /// Queries never take it.
    update_lock: Mutex<()>,
    origin: DefaultOrigin,
    snapshot_dir: Option<PathBuf>,
    max_bytes: Option<u64>,
    /// Bumped on every default-tenant swap so workers can cheaply detect
    /// that their cached per-worker state (the abstract-type inference
    /// borrowing the default snapshot) is stale.
    default_generation: AtomicU64,
    /// LRU clock: monotonically increasing tick, one per tenant access.
    clock: AtomicU64,
}

impl SnapshotRegistry {
    /// A registry over a default snapshot, its rebuild origin, and the
    /// optional tenant directory and byte budget.
    pub fn new(
        default: Arc<Snapshot>,
        origin: DefaultOrigin,
        snapshot_dir: Option<PathBuf>,
        max_bytes: Option<u64>,
    ) -> SnapshotRegistry {
        SnapshotRegistry {
            inner: Mutex::new(Inner {
                default,
                tenants: HashMap::new(),
                resident_bytes: 0,
                default_dirty: false,
            }),
            update_lock: Mutex::new(()),
            origin,
            snapshot_dir,
            max_bytes,
            default_generation: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// A single-tenant registry with no tenant directory and no reload
    /// origin — the exact PR 8 daemon shape, for tests and the in-process
    /// bench.
    pub fn single(default: Arc<Snapshot>) -> SnapshotRegistry {
        SnapshotRegistry::new(default, DefaultOrigin::Fixed, None, None)
    }

    /// The current default snapshot (requests without a `project` field).
    pub fn default_snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.inner.lock().expect("registry lock").default)
    }

    /// The default-swap generation; changes exactly when
    /// [`SnapshotRegistry::default_snapshot`] starts returning a new `Arc`.
    pub fn default_generation(&self) -> u64 {
        self.default_generation.load(Ordering::Acquire)
    }

    /// Resolves the snapshot for a request. `None` (or the literal
    /// `default` id) is the default tenant; anything else is looked up in
    /// the tenant map and lazily loaded from `--snapshot-dir` on a miss.
    pub fn get(&self, project: Option<&str>) -> Result<Arc<Snapshot>, String> {
        let Some(project) = project.filter(|p| *p != DEFAULT_TENANT) else {
            return Ok(self.default_snapshot());
        };
        validate_project_id(project)?;
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut inner = self.inner.lock().expect("registry lock");
            if let Some(entry) = inner.tenants.get_mut(project) {
                entry.last_used = tick;
                tenant_counter(project, "hits", 1);
                return Ok(Arc::clone(&entry.snapshot));
            }
        }
        // Miss: load outside the lock so resident tenants keep serving
        // while the file is read and validated. Two racing loaders may
        // both decode the file; `admit` keeps whichever lands second and
        // both callers get a working snapshot — wasted work, never a
        // wrong answer.
        let (snapshot, bytes) = self.load_from_dir(project)?;
        self.admit(project, snapshot.clone(), bytes, false);
        Ok(snapshot)
    }

    /// Reads and validates `<project>.pexsnap` from the snapshot dir.
    fn load_from_dir(&self, project: &str) -> Result<(Arc<Snapshot>, u64), String> {
        let Some(dir) = &self.snapshot_dir else {
            return Err(format!(
                "unknown project `{project}` (no --snapshot-dir configured; \
                 resident tenants: {})",
                self.resident_names().join(", ")
            ));
        };
        let path = dir.join(format!("{project}.pexsnap"));
        let bytes_len = std::fs::metadata(&path)
            .map_err(|e| {
                format!(
                    "unknown project `{project}`: cannot read {}: {e}",
                    path.display()
                )
            })?
            .len();
        let snapshot = persist::load(&path)?;
        pex_obs::counter!("serve.registry.loads", 1);
        tenant_counter(project, "loads", 1);
        Ok((snapshot, bytes_len))
    }

    /// Inserts (or replaces) a resident tenant and evicts past the budget.
    fn admit(&self, project: &str, snapshot: Arc<Snapshot>, bytes: u64, dirty: bool) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(old) = inner.tenants.remove(project) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        inner.tenants.insert(
            project.to_owned(),
            TenantEntry {
                snapshot,
                bytes,
                last_used: tick,
                dirty,
            },
        );
        // Evict least-recently-used tenants until the budget holds. The
        // newly admitted tenant is exempt from its own admission round —
        // refusing a query because one snapshot alone exceeds the budget
        // would turn a tuning knob into an outage. Dirty tenants are
        // likewise exempt: eviction would silently discard unsaved edits
        // (reload them back from a stale `.pexsnap`), so an edited tenant
        // stays resident until it is force-reloaded or persisted.
        if let Some(budget) = self.max_bytes {
            while inner.resident_bytes > budget && inner.tenants.len() > 1 {
                let victim = inner
                    .tenants
                    .iter()
                    .filter(|(name, e)| name.as_str() != project && !e.dirty)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(name, _)| name.clone());
                let Some(victim) = victim else { break };
                let entry = inner.tenants.remove(&victim).expect("victim is resident");
                inner.resident_bytes -= entry.bytes;
                pex_obs::counter!("serve.registry.evictions", 1);
                tenant_counter(&victim, "evictions", 1);
                // The Arc drops here; memory is released once in-flight
                // requests holding clones complete.
            }
        }
        if pex_obs::enabled() {
            let registry = pex_obs::registry();
            registry
                .gauge("serve.registry.resident")
                .set(inner.tenants.len() as u64);
            registry
                .gauge("serve.registry.resident_bytes")
                .set(inner.resident_bytes);
        }
    }

    /// Registers an in-memory tenant (bench and tests), accounted at
    /// [`Snapshot::approx_bytes`]. Subject to the same LRU budget as
    /// lazily loaded tenants.
    pub fn insert(&self, project: &str, snapshot: Arc<Snapshot>) -> Result<(), String> {
        validate_project_id(project)?;
        let bytes = snapshot.approx_bytes();
        self.admit(project, snapshot, bytes, false);
        Ok(())
    }

    /// Hot-swaps a tenant: rebuilds its snapshot from the origin (the
    /// `--snapshot-dir` file, or the default tenant's boot source) and
    /// atomically flips the `Arc`. In-flight requests drain against the
    /// old snapshot; zero requests are dropped.
    ///
    /// A tenant carrying incremental edits (see
    /// [`SnapshotRegistry::update`]) refuses a plain reload with
    /// [`ReloadError::Dirty`] — rebuilding from the origin would silently
    /// revert the edits. Pass `force: true` to discard them explicitly;
    /// the returned [`ReloadInfo::discarded_edits`] records that it
    /// happened.
    pub fn reload(&self, project: Option<&str>, force: bool) -> Result<ReloadInfo, ReloadError> {
        // Hold the update lock so a reload cannot interleave with an
        // in-flight edit's read-patch-swap (the edit would resurrect the
        // pre-reload snapshot).
        let _edits = self.update_lock.lock().expect("update lock");
        match project.filter(|p| *p != DEFAULT_TENANT) {
            None => {
                let was_dirty = {
                    let inner = self.inner.lock().expect("registry lock");
                    inner.default_dirty
                };
                if was_dirty && !force {
                    return Err(ReloadError::Dirty {
                        project: DEFAULT_TENANT.to_owned(),
                    });
                }
                let fresh = self.origin.rebuild().map_err(ReloadError::Failed)?;
                let bytes = fresh.approx_bytes();
                let mut inner = self.inner.lock().expect("registry lock");
                inner.default = fresh;
                inner.default_dirty = false;
                drop(inner);
                self.default_generation.fetch_add(1, Ordering::Release);
                pex_obs::counter!("serve.registry.reloads", 1);
                tenant_counter(DEFAULT_TENANT, "reloads", 1);
                Ok(ReloadInfo {
                    project: DEFAULT_TENANT.to_owned(),
                    bytes,
                    swapped: true,
                    discarded_edits: was_dirty,
                })
            }
            Some(project) => {
                validate_project_id(project).map_err(ReloadError::Failed)?;
                let (swapped, was_dirty) = {
                    let inner = self.inner.lock().expect("registry lock");
                    match inner.tenants.get(project) {
                        Some(e) => (true, e.dirty),
                        None => (false, false),
                    }
                };
                if was_dirty && !force {
                    return Err(ReloadError::Dirty {
                        project: project.to_owned(),
                    });
                }
                let (snapshot, bytes) = self.load_from_dir(project).map_err(ReloadError::Failed)?;
                self.admit(project, snapshot, bytes, false);
                pex_obs::counter!("serve.registry.reloads", 1);
                tenant_counter(project, "reloads", 1);
                Ok(ReloadInfo {
                    project: project.to_owned(),
                    bytes,
                    swapped,
                    discarded_edits: was_dirty,
                })
            }
        }
    }

    /// Applies a batch of incremental edits to a tenant and atomically
    /// swaps the patched snapshot in. Each edit is one mini-C# unit that
    /// is re-resolved against the current snapshot; derived state
    /// (conversion rows, candidate memo cells, successor/reach memos) is
    /// invalidated surgically — see [`Snapshot::apply_update`].
    ///
    /// The batch is atomic: if any edit fails to parse or resolve, the
    /// whole batch is discarded and the tenant's snapshot is untouched.
    /// Edits serialize against each other and against `reload` via the
    /// update lock; queries never block. For the default tenant the swap
    /// bumps the generation counter so workers re-pin — in-flight
    /// requests drain on the pre-edit snapshot with zero drops, exactly
    /// like a reload.
    pub fn update(
        &self,
        project: Option<&str>,
        sources: &[String],
    ) -> Result<UpdateInfo, UpdateError> {
        if sources.is_empty() {
            return Err(UpdateError::Failed(
                "update requires a `source` string or a non-empty `edits` array".to_owned(),
            ));
        }
        let _edits = self.update_lock.lock().expect("update lock");
        match project.filter(|p| *p != DEFAULT_TENANT) {
            None => {
                let base = self.default_snapshot();
                let (patched, stats) = apply_edits(&base, sources)?;
                let Some(patched) = patched else {
                    // Whole batch was a no-op: snapshot untouched, no swap,
                    // no generation bump, nothing invalidated.
                    return Ok(UpdateInfo {
                        project: DEFAULT_TENANT.to_owned(),
                        applied: sources.len(),
                        noop: true,
                        bytes: base.approx_bytes(),
                        generation: self.default_generation(),
                        stats,
                    });
                };
                let patched = Arc::new(patched);
                let bytes = patched.approx_bytes();
                let mut inner = self.inner.lock().expect("registry lock");
                inner.default = patched;
                inner.default_dirty = true;
                drop(inner);
                let generation = self.default_generation.fetch_add(1, Ordering::Release) + 1;
                pex_obs::counter!("serve.registry.updates", 1);
                tenant_counter(DEFAULT_TENANT, "updates", 1);
                Ok(UpdateInfo {
                    project: DEFAULT_TENANT.to_owned(),
                    applied: sources.len(),
                    noop: false,
                    bytes,
                    generation,
                    stats,
                })
            }
            Some(project) => {
                // `get` lazily loads the tenant if needed, so an update can
                // target a snapshot-dir tenant that has never served.
                let base = self.get(Some(project)).map_err(UpdateError::Failed)?;
                let (patched, stats) = apply_edits(&base, sources)?;
                let Some(patched) = patched else {
                    return Ok(UpdateInfo {
                        project: project.to_owned(),
                        applied: sources.len(),
                        noop: true,
                        bytes: base.approx_bytes(),
                        generation: 0,
                        stats,
                    });
                };
                let patched = Arc::new(patched);
                // Re-account at in-memory size: the on-disk `.pexsnap`
                // length no longer describes this tenant.
                let bytes = patched.approx_bytes();
                self.admit(project, patched, bytes, true);
                pex_obs::counter!("serve.registry.updates", 1);
                tenant_counter(project, "updates", 1);
                Ok(UpdateInfo {
                    project: project.to_owned(),
                    applied: sources.len(),
                    noop: false,
                    bytes,
                    generation: 0,
                    stats,
                })
            }
        }
    }

    /// Resident tenant ids, sorted (excluding the default).
    pub fn resident_names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("registry lock");
        let mut names: Vec<String> = inner.tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// A sorted description of every resident tenant, default first — the
    /// `stats`/`health` tenant table.
    pub fn describe(&self) -> Vec<TenantInfo> {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = vec![TenantInfo {
            project: DEFAULT_TENANT.to_owned(),
            bytes: 0,
            pinned: true,
            dirty: inner.default_dirty,
        }];
        let mut named: Vec<TenantInfo> = inner
            .tenants
            .iter()
            .map(|(name, e)| TenantInfo {
                project: name.clone(),
                bytes: e.bytes,
                pinned: false,
                dirty: e.dirty,
            })
            .collect();
        named.sort_by(|a, b| a.project.cmp(&b.project));
        out.extend(named);
        out
    }

    /// Total accounted bytes across resident named tenants.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("registry lock").resident_bytes
    }

    /// The configured byte budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }
}

/// Folds a batch of edits over a base snapshot. Returns `Ok((None, _))`
/// when every edit was a no-op. Intermediate snapshots are dropped as
/// soon as the next edit lands; an error anywhere discards the batch.
fn apply_edits(
    base: &Arc<Snapshot>,
    sources: &[String],
) -> Result<(Option<Snapshot>, UpdateStats), UpdateError> {
    let mut stats = UpdateStats {
        noop: true,
        ..UpdateStats::default()
    };
    let mut current: Option<Snapshot> = None;
    for source in sources {
        let working = current.as_ref().unwrap_or(base);
        let (next, step) = working.apply_update(source)?;
        stats.absorb(&step);
        if let Some(next) = next {
            current = Some(next);
        }
    }
    Ok((current, stats))
}

/// Bumps `serve.tenant.<project>.<suffix>` (dynamic-name counter; the
/// handle lookup is a cold-path mutex, fine off the per-token hot path).
pub fn tenant_counter(project: &str, suffix: &str, n: u64) {
    if pex_obs::enabled() {
        pex_obs::registry()
            .counter(&pex_obs::scoped_name("serve.tenant", project, suffix))
            .add(n);
    }
}

/// Validates a protocol `project` id before it can touch the filesystem
/// or the metric registry: 1–64 chars of `[A-Za-z0-9._-]`, not starting
/// with a dot (no hidden files, no `..` traversal, no path separators).
pub fn validate_project_id(project: &str) -> Result<(), String> {
    let ok_len = !project.is_empty() && project.len() <= 64;
    let ok_chars = project
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if !ok_len || !ok_chars || project.starts_with('.') {
        return Err(format!(
            "invalid project id `{project}`: use 1-64 characters of \
             [A-Za-z0-9._-], not starting with `.`"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSource;

    fn paint() -> Arc<Snapshot> {
        Snapshot::load(&SnapshotSource::Paint).unwrap()
    }

    fn tenant_dir(tag: &str, names: &[&str]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pex-registry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = paint();
        for name in names {
            persist::save(&snap, &dir.join(format!("{name}.pexsnap"))).unwrap();
        }
        dir
    }

    #[test]
    fn default_tenant_serves_without_a_project_field() {
        let registry = SnapshotRegistry::single(paint());
        let a = registry.get(None).unwrap();
        let b = registry.get(Some(DEFAULT_TENANT)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "default id aliases the default tenant");
        assert_eq!(registry.default_generation(), 0);
    }

    #[test]
    fn unknown_projects_error_without_a_snapshot_dir() {
        let registry = SnapshotRegistry::single(paint());
        let err = registry.get(Some("nope")).unwrap_err();
        assert!(err.contains("unknown project `nope`"), "{err}");
    }

    #[test]
    fn lazy_loads_tenants_from_the_snapshot_dir() {
        let dir = tenant_dir("lazy", &["alpha"]);
        let registry =
            SnapshotRegistry::new(paint(), DefaultOrigin::Fixed, Some(dir.clone()), None);
        assert!(registry.resident_names().is_empty());
        let snap = registry.get(Some("alpha")).unwrap();
        assert_eq!(snap.name, "paint");
        assert_eq!(registry.resident_names(), vec!["alpha".to_owned()]);
        // Second hit returns the same Arc without re-reading the file.
        let again = registry.get(Some("alpha")).unwrap();
        assert!(Arc::ptr_eq(&snap, &again));
        let err = registry.get(Some("missing")).unwrap_err();
        assert!(err.contains("unknown project `missing`"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_traversal_project_ids_are_rejected() {
        let dir = tenant_dir("traversal", &[]);
        let registry =
            SnapshotRegistry::new(paint(), DefaultOrigin::Fixed, Some(dir.clone()), None);
        for bad in ["../alpha", "a/b", ".hidden", "", "a b", &"x".repeat(65)] {
            let err = registry.get(Some(bad)).unwrap_err();
            assert!(err.contains("invalid project id"), "{bad}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_eviction_honours_the_byte_budget_and_recency() {
        let dir = tenant_dir("lru", &["a", "b", "c"]);
        let one = std::fs::metadata(dir.join("a.pexsnap")).unwrap().len();
        // Room for two resident tenants, not three.
        let registry = SnapshotRegistry::new(
            paint(),
            DefaultOrigin::Fixed,
            Some(dir.clone()),
            Some(one * 2),
        );
        registry.get(Some("a")).unwrap();
        registry.get(Some("b")).unwrap();
        assert_eq!(registry.resident_names(), vec!["a", "b"]);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        registry.get(Some("a")).unwrap();
        registry.get(Some("c")).unwrap();
        assert_eq!(registry.resident_names(), vec!["a", "c"]);
        assert!(registry.resident_bytes() <= one * 2);
        // An evicted tenant transparently reloads on next use.
        registry.get(Some("b")).unwrap();
        assert!(registry.resident_names().contains(&"b".to_owned()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_tenant_larger_than_the_budget_still_serves() {
        let dir = tenant_dir("oversize", &["big"]);
        let registry = SnapshotRegistry::new(
            paint(),
            DefaultOrigin::Fixed,
            Some(dir.clone()),
            Some(1), // absurd budget: everything is over it
        );
        let snap = registry.get(Some("big")).unwrap();
        assert_eq!(snap.name, "paint");
        assert_eq!(registry.resident_names(), vec!["big"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_swaps_the_arc_and_bumps_the_default_generation() {
        let dir = tenant_dir("reload", &["alpha"]);
        let registry = SnapshotRegistry::new(
            paint(),
            DefaultOrigin::Source {
                source: SnapshotSource::Paint,
                locals: Vec::new(),
            },
            Some(dir.clone()),
            None,
        );
        // Named tenant: the resident Arc is replaced; old clones live on.
        let before = registry.get(Some("alpha")).unwrap();
        let info = registry.reload(Some("alpha"), false).unwrap();
        assert!(info.swapped);
        assert_eq!(info.project, "alpha");
        let after = registry.get(Some("alpha")).unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "reload must flip the Arc");
        assert_eq!(before.name, after.name, "old snapshot still answers");
        // Reloading a non-resident tenant is a first load, not a swap.
        let registry2 =
            SnapshotRegistry::new(paint(), DefaultOrigin::Fixed, Some(dir.clone()), None);
        assert!(!registry2.reload(Some("alpha"), false).unwrap().swapped);
        // Default tenant: rebuilt from the boot source, generation bumps.
        let d0 = registry.default_snapshot();
        let gen0 = registry.default_generation();
        let info = registry.reload(None, false).unwrap();
        assert_eq!(info.project, DEFAULT_TENANT);
        assert!(!info.discarded_edits);
        assert!(!Arc::ptr_eq(&d0, &registry.default_snapshot()));
        assert_eq!(registry.default_generation(), gen0 + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fixed_default_origin_cannot_reload() {
        let registry = SnapshotRegistry::single(paint());
        let err = registry.reload(None, false).unwrap_err();
        assert!(err.to_string().contains("no reload origin"), "{err}");
    }

    /// The `DocumentUtils` fragment exactly as the paint corpus declares
    /// it — re-resolving it against the paint snapshot is a no-op.
    const DOCUTILS_NOOP: &str = r#"
namespace PaintDotNet.Client {
    class DocumentUtils {
        static PaintDotNet.Document Normalize(PaintDotNet.Document d) { return d; }
        static System.Drawing.Size Clamp(System.Drawing.Size s) { return s; }
    }
}
"#;

    /// Same surface, different `Normalize` body: a signature-identical
    /// body edit.
    const DOCUTILS_BODY_EDIT: &str = r#"
namespace PaintDotNet.Client {
    class DocumentUtils {
        static PaintDotNet.Document Normalize(PaintDotNet.Document d) { return PaintDotNet.Client.DocumentUtils.Normalize(d); }
        static System.Drawing.Size Clamp(System.Drawing.Size s) { return s; }
    }
}
"#;

    #[test]
    fn update_marks_dirty_and_gates_reload_behind_force() {
        let registry = SnapshotRegistry::new(
            paint(),
            DefaultOrigin::Source {
                source: SnapshotSource::Paint,
                locals: Vec::new(),
            },
            None,
            None,
        );
        let before = registry.default_snapshot();
        let gen0 = registry.default_generation();
        let info = registry
            .update(None, &[DOCUTILS_BODY_EDIT.to_owned()])
            .unwrap();
        assert!(!info.noop);
        assert_eq!(info.project, DEFAULT_TENANT);
        assert_eq!(info.applied, 1);
        assert_eq!(registry.default_generation(), gen0 + 1, "workers re-pin");
        assert!(
            !Arc::ptr_eq(&before, &registry.default_snapshot()),
            "the edit swapped the Arc; in-flight requests drain on `before`"
        );
        assert!(registry.describe()[0].dirty);
        // A plain reload refuses rather than silently reverting the edit.
        let err = registry.reload(None, false).unwrap_err();
        assert_eq!(
            err,
            ReloadError::Dirty {
                project: DEFAULT_TENANT.to_owned()
            }
        );
        // A forced reload discards explicitly and clears the dirty flag.
        let info = registry.reload(None, true).unwrap();
        assert!(info.discarded_edits);
        assert!(!registry.describe()[0].dirty);
    }

    #[test]
    fn noop_updates_touch_nothing() {
        let registry = SnapshotRegistry::single(paint());
        let before = registry.default_snapshot();
        let gen0 = registry.default_generation();
        let info = registry.update(None, &[DOCUTILS_NOOP.to_owned()]).unwrap();
        assert!(info.noop);
        assert_eq!(info.stats.invalidated.total(), 0, "zero invalidations");
        assert_eq!(registry.default_generation(), gen0, "no generation bump");
        assert!(Arc::ptr_eq(&before, &registry.default_snapshot()));
        assert!(!registry.describe()[0].dirty);
    }

    #[test]
    fn failed_updates_leave_the_snapshot_untouched() {
        let registry = SnapshotRegistry::single(paint());
        let before = registry.default_snapshot();
        let err = registry
            .update(None, &["namespace X { class ".to_owned()])
            .unwrap_err();
        let UpdateError::Parse { line, col, .. } = &err else {
            panic!("parse error expected: {err}")
        };
        assert!(*line >= 1 && *col >= 1, "1-based position: {err}");
        assert!(Arc::ptr_eq(&before, &registry.default_snapshot()));
        assert!(!registry.describe()[0].dirty);
        // A batch is atomic: a bad edit discards the good ones before it.
        let err = registry
            .update(None, &[DOCUTILS_BODY_EDIT.to_owned(), "garbled".to_owned()])
            .unwrap_err();
        assert!(matches!(err, UpdateError::Parse { .. }), "{err}");
        assert!(Arc::ptr_eq(&before, &registry.default_snapshot()));
        // An empty batch is refused up front.
        let err = registry.update(None, &[]).unwrap_err();
        assert!(matches!(err, UpdateError::Failed(_)), "{err}");
    }

    #[test]
    fn named_tenant_updates_reaccount_bytes_and_resist_eviction() {
        let dir = tenant_dir("update", &["a", "b", "c"]);
        let one = std::fs::metadata(dir.join("a.pexsnap")).unwrap().len();
        let registry = SnapshotRegistry::new(
            paint(),
            DefaultOrigin::Fixed,
            Some(dir.clone()),
            Some(one * 2),
        );
        registry.get(Some("a")).unwrap();
        let info = registry
            .update(Some("a"), &[DOCUTILS_BODY_EDIT.to_owned()])
            .unwrap();
        assert!(!info.noop);
        let edited = registry.get(Some("a")).unwrap();
        // Accounting switched from the stale file length to the live
        // in-memory size.
        assert_eq!(info.bytes, edited.approx_bytes());
        assert!(registry
            .describe()
            .iter()
            .any(|t| t.project == "a" && t.dirty));
        // Under LRU pressure `a` would be the oldest victim, but dirty
        // tenants are exempt — evicting one would silently discard edits.
        registry.get(Some("b")).unwrap();
        registry.get(Some("c")).unwrap();
        assert!(
            registry.resident_names().contains(&"a".to_owned()),
            "dirty tenant survived eviction pressure: {:?}",
            registry.resident_names()
        );
        // Reload gating works per-tenant, and force reverts to the file.
        let err = registry.reload(Some("a"), false).unwrap_err();
        assert!(matches!(err, ReloadError::Dirty { .. }), "{err}");
        let info = registry.reload(Some("a"), true).unwrap();
        assert!(info.discarded_edits);
        let reverted = registry.get(Some("a")).unwrap();
        assert!(!Arc::ptr_eq(&edited, &reverted));
        assert!(registry
            .describe()
            .iter()
            .all(|t| t.project != "a" || !t.dirty));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn describe_lists_default_first_with_byte_accounting() {
        let dir = tenant_dir("describe", &["alpha"]);
        let registry =
            SnapshotRegistry::new(paint(), DefaultOrigin::Fixed, Some(dir.clone()), None);
        registry.get(Some("alpha")).unwrap();
        let info = registry.describe();
        assert_eq!(info[0].project, DEFAULT_TENANT);
        assert!(info[0].pinned);
        assert_eq!(info[1].project, "alpha");
        assert!(info[1].bytes > 0);
        assert!(!info[1].pinned);
        std::fs::remove_dir_all(&dir).ok();
    }
}
