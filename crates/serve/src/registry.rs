//! The multi-tenant snapshot registry: many projects, one process.
//!
//! A [`SnapshotRegistry`] maps project ids to [`Arc<Snapshot>`]s so a
//! fleet of independent corpora can share one daemon:
//!
//! * **Default tenant.** The snapshot the process booted with (corpus
//!   argument or `--load-snapshot`) serves every request that carries no
//!   `project` field — the single-tenant protocol is the degenerate case,
//!   byte-for-byte. The default is pinned: it never counts against the
//!   byte budget and is never evicted.
//! * **Lazy load.** A request naming a project not yet resident loads
//!   `<project>.pexsnap` from `--snapshot-dir` on demand (the
//!   `pex-snapshot/1` format, full validation — see [`crate::persist`]).
//!   Project ids are validated against a conservative alphabet first, so
//!   a request can never path-traverse out of the snapshot directory.
//! * **LRU eviction.** Each resident tenant is accounted at its snapshot
//!   file's byte length (or [`Snapshot::approx_bytes`] for tenants
//!   inserted in memory). When residency would exceed
//!   `--max-snapshot-bytes`, least-recently-used tenants are dropped
//!   from the map. In-flight requests keep their own `Arc` clones, so an
//!   evicted snapshot's memory is actually released when the last request
//!   against it completes — eviction never interrupts a query.
//! * **Hot swap.** [`SnapshotRegistry::reload`] rebuilds a tenant from
//!   its origin (the snapshot file, or the default's corpus source) and
//!   atomically flips the `Arc` in the map. Requests admitted before the
//!   flip drain against the old snapshot; requests admitted after see the
//!   new one. No request is ever dropped or answered from a half-swapped
//!   state, because a worker resolves its `Arc<Snapshot>` exactly once
//!   per request.
//!
//! Observability: `serve.registry.{loads,evictions,reloads}` counters,
//! `serve.registry.{resident,resident_bytes}` gauges, and per-tenant
//! `serve.tenant.<id>.*` counters named via [`pex_obs::scoped_name`].

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::persist;
use crate::snapshot::{Snapshot, SnapshotSource};

/// The tenant id requests without a `project` field resolve to, used in
/// per-tenant metrics and the `stats`/`health` tenant tables.
pub const DEFAULT_TENANT: &str = "default";

/// Where the default tenant's snapshot came from, so `reload` (without a
/// `project`) can rebuild it the same way the process booted.
#[derive(Debug, Clone)]
pub enum DefaultOrigin {
    /// Built from a corpus source (builtin name or mini-C# file), with the
    /// `--local` declarations applied on top.
    Source {
        /// The corpus the daemon booted from.
        source: SnapshotSource,
        /// `--local name:Type` declarations folded into the default context.
        locals: Vec<String>,
    },
    /// Loaded from a `pex-snapshot/1` file (`--load-snapshot`).
    File {
        /// The snapshot file the daemon booted from.
        path: PathBuf,
        /// `--local name:Type` declarations folded into the default context.
        locals: Vec<String>,
    },
    /// Handed in as an in-memory `Arc` with no rebuildable origin (the
    /// in-process bench and tests); `reload` of the default is an error.
    Fixed,
}

impl DefaultOrigin {
    /// Rebuilds the default snapshot from its origin.
    fn rebuild(&self) -> Result<Arc<Snapshot>, String> {
        let (loaded, locals) = match self {
            DefaultOrigin::Source { source, locals } => (Snapshot::load(source)?, locals),
            DefaultOrigin::File { path, locals } => (persist::load(path)?, locals),
            DefaultOrigin::Fixed => {
                return Err(
                    "the default tenant was created in memory and has no reload origin".to_owned(),
                )
            }
        };
        apply_locals(loaded, locals)
    }
}

/// Rebuilds a freshly loaded snapshot's default context from `--local`
/// declarations (the same transformation `pex-serve` applies at boot).
pub fn apply_locals(snapshot: Arc<Snapshot>, locals: &[String]) -> Result<Arc<Snapshot>, String> {
    if locals.is_empty() {
        return Ok(snapshot);
    }
    let ctx = snapshot.context_for(locals)?;
    let inner = Arc::try_unwrap(snapshot)
        .unwrap_or_else(|_| panic!("freshly loaded snapshot has one owner"));
    Ok(Arc::new(Snapshot {
        default_ctx: ctx,
        ..inner
    }))
}

/// One resident tenant: the live snapshot, its byte accounting, and its
/// LRU clock reading.
struct TenantEntry {
    snapshot: Arc<Snapshot>,
    bytes: u64,
    last_used: u64,
}

struct Inner {
    default: Arc<Snapshot>,
    tenants: HashMap<String, TenantEntry>,
    resident_bytes: u64,
}

/// What a successful [`SnapshotRegistry::reload`] reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReloadInfo {
    /// The tenant that was swapped.
    pub project: String,
    /// Accounted size of the fresh snapshot, in bytes.
    pub bytes: u64,
    /// Whether the tenant was already resident (a true hot swap) rather
    /// than a first load.
    pub swapped: bool,
}

/// Point-in-time description of one tenant for `stats`/`health`.
#[derive(Debug, Clone)]
pub struct TenantInfo {
    /// The tenant id (`default` for the pinned default tenant).
    pub project: String,
    /// Accounted bytes (0 for the exempt default tenant).
    pub bytes: u64,
    /// Whether this is the pinned, budget-exempt default tenant.
    pub pinned: bool,
}

/// The tenant map: default snapshot + named tenants with lazy load, LRU
/// eviction under a byte budget, and atomic hot swap. See the module docs
/// for the full semantics.
pub struct SnapshotRegistry {
    inner: Mutex<Inner>,
    origin: DefaultOrigin,
    snapshot_dir: Option<PathBuf>,
    max_bytes: Option<u64>,
    /// Bumped on every default-tenant swap so workers can cheaply detect
    /// that their cached per-worker state (the abstract-type inference
    /// borrowing the default snapshot) is stale.
    default_generation: AtomicU64,
    /// LRU clock: monotonically increasing tick, one per tenant access.
    clock: AtomicU64,
}

impl SnapshotRegistry {
    /// A registry over a default snapshot, its rebuild origin, and the
    /// optional tenant directory and byte budget.
    pub fn new(
        default: Arc<Snapshot>,
        origin: DefaultOrigin,
        snapshot_dir: Option<PathBuf>,
        max_bytes: Option<u64>,
    ) -> SnapshotRegistry {
        SnapshotRegistry {
            inner: Mutex::new(Inner {
                default,
                tenants: HashMap::new(),
                resident_bytes: 0,
            }),
            origin,
            snapshot_dir,
            max_bytes,
            default_generation: AtomicU64::new(0),
            clock: AtomicU64::new(0),
        }
    }

    /// A single-tenant registry with no tenant directory and no reload
    /// origin — the exact PR 8 daemon shape, for tests and the in-process
    /// bench.
    pub fn single(default: Arc<Snapshot>) -> SnapshotRegistry {
        SnapshotRegistry::new(default, DefaultOrigin::Fixed, None, None)
    }

    /// The current default snapshot (requests without a `project` field).
    pub fn default_snapshot(&self) -> Arc<Snapshot> {
        Arc::clone(&self.inner.lock().expect("registry lock").default)
    }

    /// The default-swap generation; changes exactly when
    /// [`SnapshotRegistry::default_snapshot`] starts returning a new `Arc`.
    pub fn default_generation(&self) -> u64 {
        self.default_generation.load(Ordering::Acquire)
    }

    /// Resolves the snapshot for a request. `None` (or the literal
    /// `default` id) is the default tenant; anything else is looked up in
    /// the tenant map and lazily loaded from `--snapshot-dir` on a miss.
    pub fn get(&self, project: Option<&str>) -> Result<Arc<Snapshot>, String> {
        let Some(project) = project.filter(|p| *p != DEFAULT_TENANT) else {
            return Ok(self.default_snapshot());
        };
        validate_project_id(project)?;
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut inner = self.inner.lock().expect("registry lock");
            if let Some(entry) = inner.tenants.get_mut(project) {
                entry.last_used = tick;
                tenant_counter(project, "hits", 1);
                return Ok(Arc::clone(&entry.snapshot));
            }
        }
        // Miss: load outside the lock so resident tenants keep serving
        // while the file is read and validated. Two racing loaders may
        // both decode the file; `admit` keeps whichever lands second and
        // both callers get a working snapshot — wasted work, never a
        // wrong answer.
        let (snapshot, bytes) = self.load_from_dir(project)?;
        self.admit(project, snapshot.clone(), bytes);
        Ok(snapshot)
    }

    /// Reads and validates `<project>.pexsnap` from the snapshot dir.
    fn load_from_dir(&self, project: &str) -> Result<(Arc<Snapshot>, u64), String> {
        let Some(dir) = &self.snapshot_dir else {
            return Err(format!(
                "unknown project `{project}` (no --snapshot-dir configured; \
                 resident tenants: {})",
                self.resident_names().join(", ")
            ));
        };
        let path = dir.join(format!("{project}.pexsnap"));
        let bytes_len = std::fs::metadata(&path)
            .map_err(|e| {
                format!(
                    "unknown project `{project}`: cannot read {}: {e}",
                    path.display()
                )
            })?
            .len();
        let snapshot = persist::load(&path)?;
        pex_obs::counter!("serve.registry.loads", 1);
        tenant_counter(project, "loads", 1);
        Ok((snapshot, bytes_len))
    }

    /// Inserts (or replaces) a resident tenant and evicts past the budget.
    fn admit(&self, project: &str, snapshot: Arc<Snapshot>, bytes: u64) {
        let tick = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = self.inner.lock().expect("registry lock");
        if let Some(old) = inner.tenants.remove(project) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        inner.tenants.insert(
            project.to_owned(),
            TenantEntry {
                snapshot,
                bytes,
                last_used: tick,
            },
        );
        // Evict least-recently-used tenants until the budget holds. The
        // newly admitted tenant is exempt from its own admission round —
        // refusing a query because one snapshot alone exceeds the budget
        // would turn a tuning knob into an outage.
        if let Some(budget) = self.max_bytes {
            while inner.resident_bytes > budget && inner.tenants.len() > 1 {
                let victim = inner
                    .tenants
                    .iter()
                    .filter(|(name, _)| name.as_str() != project)
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(name, _)| name.clone());
                let Some(victim) = victim else { break };
                let entry = inner.tenants.remove(&victim).expect("victim is resident");
                inner.resident_bytes -= entry.bytes;
                pex_obs::counter!("serve.registry.evictions", 1);
                tenant_counter(&victim, "evictions", 1);
                // The Arc drops here; memory is released once in-flight
                // requests holding clones complete.
            }
        }
        if pex_obs::enabled() {
            let registry = pex_obs::registry();
            registry
                .gauge("serve.registry.resident")
                .set(inner.tenants.len() as u64);
            registry
                .gauge("serve.registry.resident_bytes")
                .set(inner.resident_bytes);
        }
    }

    /// Registers an in-memory tenant (bench and tests), accounted at
    /// [`Snapshot::approx_bytes`]. Subject to the same LRU budget as
    /// lazily loaded tenants.
    pub fn insert(&self, project: &str, snapshot: Arc<Snapshot>) -> Result<(), String> {
        validate_project_id(project)?;
        let bytes = snapshot.approx_bytes();
        self.admit(project, snapshot, bytes);
        Ok(())
    }

    /// Hot-swaps a tenant: rebuilds its snapshot from the origin (the
    /// `--snapshot-dir` file, or the default tenant's boot source) and
    /// atomically flips the `Arc`. In-flight requests drain against the
    /// old snapshot; zero requests are dropped.
    pub fn reload(&self, project: Option<&str>) -> Result<ReloadInfo, String> {
        match project.filter(|p| *p != DEFAULT_TENANT) {
            None => {
                let fresh = self.origin.rebuild()?;
                let bytes = fresh.approx_bytes();
                let mut inner = self.inner.lock().expect("registry lock");
                inner.default = fresh;
                drop(inner);
                self.default_generation.fetch_add(1, Ordering::Release);
                pex_obs::counter!("serve.registry.reloads", 1);
                tenant_counter(DEFAULT_TENANT, "reloads", 1);
                Ok(ReloadInfo {
                    project: DEFAULT_TENANT.to_owned(),
                    bytes,
                    swapped: true,
                })
            }
            Some(project) => {
                validate_project_id(project)?;
                let (snapshot, bytes) = self.load_from_dir(project)?;
                let swapped = {
                    let inner = self.inner.lock().expect("registry lock");
                    inner.tenants.contains_key(project)
                };
                self.admit(project, snapshot, bytes);
                pex_obs::counter!("serve.registry.reloads", 1);
                tenant_counter(project, "reloads", 1);
                Ok(ReloadInfo {
                    project: project.to_owned(),
                    bytes,
                    swapped,
                })
            }
        }
    }

    /// Resident tenant ids, sorted (excluding the default).
    pub fn resident_names(&self) -> Vec<String> {
        let inner = self.inner.lock().expect("registry lock");
        let mut names: Vec<String> = inner.tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// A sorted description of every resident tenant, default first — the
    /// `stats`/`health` tenant table.
    pub fn describe(&self) -> Vec<TenantInfo> {
        let inner = self.inner.lock().expect("registry lock");
        let mut out = vec![TenantInfo {
            project: DEFAULT_TENANT.to_owned(),
            bytes: 0,
            pinned: true,
        }];
        let mut named: Vec<TenantInfo> = inner
            .tenants
            .iter()
            .map(|(name, e)| TenantInfo {
                project: name.clone(),
                bytes: e.bytes,
                pinned: false,
            })
            .collect();
        named.sort_by(|a, b| a.project.cmp(&b.project));
        out.extend(named);
        out
    }

    /// Total accounted bytes across resident named tenants.
    pub fn resident_bytes(&self) -> u64 {
        self.inner.lock().expect("registry lock").resident_bytes
    }

    /// The configured byte budget, if any.
    pub fn max_bytes(&self) -> Option<u64> {
        self.max_bytes
    }
}

/// Bumps `serve.tenant.<project>.<suffix>` (dynamic-name counter; the
/// handle lookup is a cold-path mutex, fine off the per-token hot path).
pub fn tenant_counter(project: &str, suffix: &str, n: u64) {
    if pex_obs::enabled() {
        pex_obs::registry()
            .counter(&pex_obs::scoped_name("serve.tenant", project, suffix))
            .add(n);
    }
}

/// Validates a protocol `project` id before it can touch the filesystem
/// or the metric registry: 1–64 chars of `[A-Za-z0-9._-]`, not starting
/// with a dot (no hidden files, no `..` traversal, no path separators).
pub fn validate_project_id(project: &str) -> Result<(), String> {
    let ok_len = !project.is_empty() && project.len() <= 64;
    let ok_chars = project
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if !ok_len || !ok_chars || project.starts_with('.') {
        return Err(format!(
            "invalid project id `{project}`: use 1-64 characters of \
             [A-Za-z0-9._-], not starting with `.`"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSource;

    fn paint() -> Arc<Snapshot> {
        Snapshot::load(&SnapshotSource::Paint).unwrap()
    }

    fn tenant_dir(tag: &str, names: &[&str]) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pex-registry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap = paint();
        for name in names {
            persist::save(&snap, &dir.join(format!("{name}.pexsnap"))).unwrap();
        }
        dir
    }

    #[test]
    fn default_tenant_serves_without_a_project_field() {
        let registry = SnapshotRegistry::single(paint());
        let a = registry.get(None).unwrap();
        let b = registry.get(Some(DEFAULT_TENANT)).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "default id aliases the default tenant");
        assert_eq!(registry.default_generation(), 0);
    }

    #[test]
    fn unknown_projects_error_without_a_snapshot_dir() {
        let registry = SnapshotRegistry::single(paint());
        let err = registry.get(Some("nope")).unwrap_err();
        assert!(err.contains("unknown project `nope`"), "{err}");
    }

    #[test]
    fn lazy_loads_tenants_from_the_snapshot_dir() {
        let dir = tenant_dir("lazy", &["alpha"]);
        let registry =
            SnapshotRegistry::new(paint(), DefaultOrigin::Fixed, Some(dir.clone()), None);
        assert!(registry.resident_names().is_empty());
        let snap = registry.get(Some("alpha")).unwrap();
        assert_eq!(snap.name, "paint");
        assert_eq!(registry.resident_names(), vec!["alpha".to_owned()]);
        // Second hit returns the same Arc without re-reading the file.
        let again = registry.get(Some("alpha")).unwrap();
        assert!(Arc::ptr_eq(&snap, &again));
        let err = registry.get(Some("missing")).unwrap_err();
        assert!(err.contains("unknown project `missing`"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn path_traversal_project_ids_are_rejected() {
        let dir = tenant_dir("traversal", &[]);
        let registry =
            SnapshotRegistry::new(paint(), DefaultOrigin::Fixed, Some(dir.clone()), None);
        for bad in ["../alpha", "a/b", ".hidden", "", "a b", &"x".repeat(65)] {
            let err = registry.get(Some(bad)).unwrap_err();
            assert!(err.contains("invalid project id"), "{bad}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_eviction_honours_the_byte_budget_and_recency() {
        let dir = tenant_dir("lru", &["a", "b", "c"]);
        let one = std::fs::metadata(dir.join("a.pexsnap")).unwrap().len();
        // Room for two resident tenants, not three.
        let registry = SnapshotRegistry::new(
            paint(),
            DefaultOrigin::Fixed,
            Some(dir.clone()),
            Some(one * 2),
        );
        registry.get(Some("a")).unwrap();
        registry.get(Some("b")).unwrap();
        assert_eq!(registry.resident_names(), vec!["a", "b"]);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        registry.get(Some("a")).unwrap();
        registry.get(Some("c")).unwrap();
        assert_eq!(registry.resident_names(), vec!["a", "c"]);
        assert!(registry.resident_bytes() <= one * 2);
        // An evicted tenant transparently reloads on next use.
        registry.get(Some("b")).unwrap();
        assert!(registry.resident_names().contains(&"b".to_owned()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_tenant_larger_than_the_budget_still_serves() {
        let dir = tenant_dir("oversize", &["big"]);
        let registry = SnapshotRegistry::new(
            paint(),
            DefaultOrigin::Fixed,
            Some(dir.clone()),
            Some(1), // absurd budget: everything is over it
        );
        let snap = registry.get(Some("big")).unwrap();
        assert_eq!(snap.name, "paint");
        assert_eq!(registry.resident_names(), vec!["big"]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_swaps_the_arc_and_bumps_the_default_generation() {
        let dir = tenant_dir("reload", &["alpha"]);
        let registry = SnapshotRegistry::new(
            paint(),
            DefaultOrigin::Source {
                source: SnapshotSource::Paint,
                locals: Vec::new(),
            },
            Some(dir.clone()),
            None,
        );
        // Named tenant: the resident Arc is replaced; old clones live on.
        let before = registry.get(Some("alpha")).unwrap();
        let info = registry.reload(Some("alpha")).unwrap();
        assert!(info.swapped);
        assert_eq!(info.project, "alpha");
        let after = registry.get(Some("alpha")).unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "reload must flip the Arc");
        assert_eq!(before.name, after.name, "old snapshot still answers");
        // Reloading a non-resident tenant is a first load, not a swap.
        let registry2 =
            SnapshotRegistry::new(paint(), DefaultOrigin::Fixed, Some(dir.clone()), None);
        assert!(!registry2.reload(Some("alpha")).unwrap().swapped);
        // Default tenant: rebuilt from the boot source, generation bumps.
        let d0 = registry.default_snapshot();
        let gen0 = registry.default_generation();
        let info = registry.reload(None).unwrap();
        assert_eq!(info.project, DEFAULT_TENANT);
        assert!(!Arc::ptr_eq(&d0, &registry.default_snapshot()));
        assert_eq!(registry.default_generation(), gen0 + 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fixed_default_origin_cannot_reload() {
        let registry = SnapshotRegistry::single(paint());
        let err = registry.reload(None).unwrap_err();
        assert!(err.contains("no reload origin"), "{err}");
    }

    #[test]
    fn describe_lists_default_first_with_byte_accounting() {
        let dir = tenant_dir("describe", &["alpha"]);
        let registry =
            SnapshotRegistry::new(paint(), DefaultOrigin::Fixed, Some(dir.clone()), None);
        registry.get(Some("alpha")).unwrap();
        let info = registry.describe();
        assert_eq!(info[0].project, DEFAULT_TENANT);
        assert!(info[0].pinned);
        assert_eq!(info[1].project, "alpha");
        assert!(info[1].bytes > 0);
        assert!(!info[1].pinned);
        std::fs::remove_dir_all(&dir).ok();
    }
}
