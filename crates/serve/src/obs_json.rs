//! Bridges the `pex-obs` registry into protocol JSON.
//!
//! Everything the daemon reports about itself — the `stats` and `health`
//! commands, and the `--metrics-out` document — is built here as a
//! [`Value`] tree and serialised by the same emitter as every protocol
//! response, so metric names and labels are escaped correctly no matter
//! what characters they contain (the old `--metrics-out` path spliced
//! pre-rendered JSON into a `format!`).
//!
//! Rolling windows: the worker pool records per-request latencies into
//! [`pex_obs::WindowedHistogram`]s under the names below, and
//! [`stats_response`] reads the last-1s/10s/60s merges with interpolated
//! percentiles — a live view the lifetime histograms cannot give.

use pex_obs::{HistogramSnapshot, MetricsSnapshot};

use crate::json::Value;
use crate::registry::SnapshotRegistry;

/// Windowed per-request latency in microseconds (admission to response),
/// recorded by the worker pool for every answered query.
pub const REQUEST_WINDOW: &str = "serve.request.window.us";

/// Windowed admissions: one sample per submitted request line.
pub const RECEIVED_WINDOW: &str = "serve.requests.received.window";

/// Windowed sheds: one sample per request refused by admission control.
pub const SHED_WINDOW: &str = "serve.requests.shed.window";

/// The window (seconds) health checks evaluate shed rate and SLO burn over.
pub const HEALTH_WINDOW_S: u64 = 10;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn num(n: u64) -> Value {
    Value::Num(n as f64)
}

/// A lifetime [`MetricsSnapshot`] as a `{"counters","gauges","histograms"}`
/// object. Histograms carry exact count/sum/max, bucket-bound p50/p90/p99,
/// and their non-empty buckets as `[upper bound, count]` pairs — the same
/// shape [`MetricsSnapshot::to_json`] renders, built as a [`Value`] so it
/// can embed in protocol responses.
pub fn metrics_value(snap: &MetricsSnapshot) -> Value {
    let counters = snap
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), num(*v)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(k, v)| (k.clone(), num(*v)))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|(k, h)| {
            let buckets = h
                .buckets
                .iter()
                .map(|&(i, c)| Value::Arr(vec![num(pex_obs::Histogram::bucket_upper(i)), num(c)]))
                .collect();
            let body = obj(vec![
                ("count", num(h.count)),
                ("sum", num(h.sum)),
                ("max", num(h.max)),
                ("p50", num(h.percentile(50.0))),
                ("p90", num(h.percentile(90.0))),
                ("p99", num(h.percentile(99.0))),
                ("buckets", Value::Arr(buckets)),
            ]);
            (k.clone(), body)
        })
        .collect();
    Value::Obj(vec![
        ("counters".to_owned(), Value::Obj(counters)),
        ("gauges".to_owned(), Value::Obj(gauges)),
        ("histograms".to_owned(), Value::Obj(histograms)),
    ])
}

/// One rolling window of the request-latency histogram: sample count, the
/// implied request rate, and interpolated percentiles in microseconds.
pub fn window_value(w: &HistogramSnapshot, seconds: u64) -> Value {
    obj(vec![
        ("seconds", num(seconds)),
        ("count", num(w.count)),
        (
            "rate_rps",
            Value::Num(w.count as f64 / seconds.max(1) as f64),
        ),
        ("p50_us", num(w.percentile_interp(50.0))),
        ("p90_us", num(w.percentile_interp(90.0))),
        ("p99_us", num(w.percentile_interp(99.0))),
        ("max_us", num(w.max)),
    ])
}

/// The per-tenant table embedded in `stats` and `health`: one entry per
/// resident tenant (default first) with its byte accounting and the
/// `serve.tenant.<id>.*` resolution counters, so the per-tenant
/// identities `sent == ok + degraded + shed + errors` (queries) and
/// `sent == applied + rejected` (edits) can be checked externally.
pub fn tenants_value(registry: &SnapshotRegistry) -> Value {
    let obs = pex_obs::registry();
    let entries = registry
        .describe()
        .into_iter()
        .map(|t| {
            let c = |suffix: &str| {
                num(obs
                    .counter(&pex_obs::scoped_name("serve.tenant", &t.project, suffix))
                    .get())
            };
            let body = obj(vec![
                ("bytes", num(t.bytes)),
                ("pinned", Value::Bool(t.pinned)),
                ("dirty", Value::Bool(t.dirty)),
                (
                    "requests",
                    obj(vec![
                        ("ok", c("requests.ok")),
                        ("degraded", c("requests.degraded")),
                        ("shed", c("requests.shed")),
                        ("errors", c("requests.error")),
                    ]),
                ),
                (
                    "edits",
                    obj(vec![
                        ("applied", c("edits.applied")),
                        ("rejected", c("edits.rejected")),
                    ]),
                ),
                ("coalesced", c("coalesced")),
            ]);
            (t.project, body)
        })
        .collect();
    Value::Obj(entries)
}

/// The registry-wide residency summary for `stats`.
fn registry_value(registry: &SnapshotRegistry) -> Value {
    obj(vec![
        ("resident", num(registry.resident_names().len() as u64)),
        ("resident_bytes", num(registry.resident_bytes())),
        ("max_bytes", registry.max_bytes().map_or(Value::Null, num)),
    ])
}

/// The `{"cmd":"stats"}` response: the full lifetime registry snapshot
/// plus last-1s/10s/60s request-latency windows and the tenant table.
pub fn stats_response(
    id: Option<&Value>,
    queue_depth: usize,
    registry: &SnapshotRegistry,
) -> String {
    let latency = pex_obs::registry().windowed(REQUEST_WINDOW);
    let windows = obj(vec![
        ("1s", window_value(&latency.window(1), 1)),
        ("10s", window_value(&latency.window(10), 10)),
        ("60s", window_value(&latency.window(60), 60)),
    ]);
    let stats = obj(vec![
        ("queue_depth", num(queue_depth as u64)),
        ("windows", windows),
        ("registry", registry_value(registry)),
        ("tenants", tenants_value(registry)),
        ("metrics", metrics_value(&pex_obs::registry().snapshot())),
    ]);
    respond(id, "stats", stats)
}

/// The `{"cmd":"health"}` response: queue depth, the windowed shed rate,
/// the request-accounting identity, and the SLO-burn flag.
///
/// Accounting: `received` counts every submitted line; `ok`, `degraded`,
/// `shed`, and `errors` count resolutions. `pending` is the difference —
/// requests admitted but not yet answered, **including this health check
/// itself**, so on an otherwise idle server `pending` is exactly 1 and
/// `received == ok + degraded + shed + errors + pending` holds.
pub fn health_response(
    id: Option<&Value>,
    queue_depth: usize,
    slo_p99_us: Option<u64>,
    snapshot_registry: &SnapshotRegistry,
) -> String {
    let registry = pex_obs::registry();
    let counter = |name: &str| registry.counter(name).get();
    // Resolution counters first, `received` last: a request increments
    // `received` before it can resolve, so this read order keeps
    // `pending` non-negative even while other workers are mid-request.
    let ok = counter("serve.requests.ok");
    let degraded = counter("serve.requests.degraded");
    let shed = counter("serve.requests.shed");
    let errors = counter("serve.requests.error");
    let received = counter("serve.requests.received");
    let pending = received.saturating_sub(ok + degraded + shed + errors);

    let received_w = registry.windowed(RECEIVED_WINDOW).window(HEALTH_WINDOW_S);
    let shed_w = registry.windowed(SHED_WINDOW).window(HEALTH_WINDOW_S);
    let shed_rate = if received_w.count == 0 {
        0.0
    } else {
        shed_w.count as f64 / received_w.count as f64
    };

    let p99_us = registry
        .windowed(REQUEST_WINDOW)
        .window(HEALTH_WINDOW_S)
        .percentile_interp(99.0);
    let burning = slo_p99_us.is_some_and(|slo| p99_us > slo);

    let health = obj(vec![
        ("queue_depth", num(queue_depth as u64)),
        ("window_s", num(HEALTH_WINDOW_S)),
        (
            "requests",
            obj(vec![
                ("received", num(received)),
                ("ok", num(ok)),
                ("degraded", num(degraded)),
                ("shed", num(shed)),
                ("errors", num(errors)),
                ("pending", num(pending)),
            ]),
        ),
        ("shed_rate", Value::Num(shed_rate)),
        ("tenants", tenants_value(snapshot_registry)),
        (
            "slo",
            obj(vec![
                ("p99_us", num(p99_us)),
                ("threshold_us", slo_p99_us.map_or(Value::Null, num)),
                ("burning", Value::Bool(burning)),
            ]),
        ),
    ]);
    respond(id, "health", health)
}

/// The `--metrics-out` document (`pex-serve-metrics/1`), emitted through
/// the protocol serialiser.
pub fn metrics_document() -> String {
    let doc = Value::Obj(vec![
        (
            "schema".to_owned(),
            Value::Str("pex-serve-metrics/1".to_owned()),
        ),
        (
            "metrics".to_owned(),
            metrics_value(&pex_obs::registry().snapshot()),
        ),
    ]);
    format!("{doc}\n")
}

fn respond(id: Option<&Value>, key: &str, body: Value) -> String {
    let mut fields = Vec::new();
    if let Some(id) = id {
        fields.push(("id".to_owned(), id.clone()));
    }
    fields.push(("ok".to_owned(), Value::Bool(true)));
    fields.push((key.to_owned(), body));
    Value::Obj(fields).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::snapshot::{Snapshot, SnapshotSource};

    fn test_registry() -> SnapshotRegistry {
        SnapshotRegistry::single(Snapshot::load(&SnapshotSource::Paint).unwrap())
    }

    #[test]
    fn metrics_value_round_trips_through_the_parser() {
        let registry = pex_obs::registry();
        registry.counter("obsjson.hits").add(3);
        registry.histogram("obsjson.lat").record(100);
        let v = metrics_value(&registry.snapshot());
        let parsed = json::parse(&v.to_string()).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("obsjson.hits"))
                .and_then(Value::as_u64),
            Some(3)
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("obsjson.lat"))
            .unwrap();
        assert_eq!(hist.get("count").and_then(Value::as_u64), Some(1));
        assert_eq!(hist.get("max").and_then(Value::as_u64), Some(100));
    }

    #[test]
    fn stats_response_reports_recorded_windows() {
        pex_obs::set_enabled(true);
        pex_obs::registry().windowed(REQUEST_WINDOW).record(500);
        let resp = stats_response(Some(&Value::Num(9.0)), 2, &test_registry());
        let doc = json::parse(&resp).unwrap();
        assert_eq!(doc.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("id").and_then(Value::as_u64), Some(9));
        let stats = doc.get("stats").unwrap();
        assert_eq!(stats.get("queue_depth").and_then(Value::as_u64), Some(2));
        let w60 = stats.get("windows").and_then(|w| w.get("60s")).unwrap();
        assert!(w60.get("count").and_then(Value::as_u64).unwrap() >= 1);
        let p50 = w60.get("p50_us").and_then(Value::as_u64).unwrap();
        assert!((256..=511).contains(&p50), "bucket-bounded p50: {p50}");
    }

    #[test]
    fn health_response_carries_the_accounting_identity_and_slo_flag() {
        pex_obs::set_enabled(true);
        let registry = test_registry();
        let resp = health_response(None, 0, Some(1), &registry);
        let doc = json::parse(&resp).unwrap();
        let health = doc.get("health").unwrap();
        let r = health.get("requests").unwrap();
        let total = ["ok", "degraded", "shed", "errors", "pending"]
            .iter()
            .map(|k| r.get(k).and_then(Value::as_u64).unwrap())
            .sum::<u64>();
        assert_eq!(r.get("received").and_then(Value::as_u64), Some(total));
        let slo = health.get("slo").unwrap();
        assert_eq!(slo.get("threshold_us").and_then(Value::as_u64), Some(1));
        // A 1µs SLO burns as soon as any window sample exceeds it; with no
        // samples it must not burn.
        let p99 = slo.get("p99_us").and_then(Value::as_u64).unwrap();
        assert_eq!(slo.get("burning"), Some(&Value::Bool(p99 > 1)), "{resp}");
        // No threshold: never burning.
        let resp = health_response(None, 0, None, &registry);
        let doc = json::parse(&resp).unwrap();
        let slo = doc.get("health").and_then(|h| h.get("slo")).unwrap();
        assert_eq!(slo.get("threshold_us"), Some(&Value::Null));
        assert_eq!(slo.get("burning"), Some(&Value::Bool(false)));
    }

    #[test]
    fn tenant_tables_list_the_pinned_default_with_resolution_counters() {
        pex_obs::set_enabled(true);
        let v = tenants_value(&test_registry());
        let parsed = json::parse(&v.to_string()).unwrap();
        let def = parsed.get("default").expect("default tenant entry");
        assert_eq!(def.get("pinned"), Some(&Value::Bool(true)));
        let requests = def.get("requests").expect("per-tenant accounting");
        for k in ["ok", "degraded", "shed", "errors"] {
            assert!(requests.get(k).and_then(Value::as_u64).is_some(), "{k}");
        }
        assert!(def.get("coalesced").and_then(Value::as_u64).is_some());
    }

    #[test]
    fn metrics_document_is_parseable_with_escaped_names() {
        pex_obs::registry().counter("obsjson.weird\"name").add(1);
        let doc = metrics_document();
        let parsed = json::parse(doc.trim()).unwrap();
        assert_eq!(
            parsed.get("schema").and_then(Value::as_str),
            Some("pex-serve-metrics/1")
        );
        assert_eq!(
            parsed
                .get("metrics")
                .and_then(|m| m.get("counters"))
                .and_then(|c| c.get("obsjson.weird\"name"))
                .and_then(Value::as_u64),
            Some(1)
        );
    }
}
