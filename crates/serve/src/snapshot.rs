//! The shared, immutable artefact a serve process answers queries from.
//!
//! A [`Snapshot`] is loaded **once** at startup — code model, method index,
//! reachability index, default query context — and then shared by every
//! worker behind an `Arc`. Loading also *prewarms* the lazily built caches
//! (the [`pex_types`] conversion index and the per-type candidate memo), so
//! the first request a client sends pays the same latency as the
//! thousandth: no cold-cache cliff inside the serving path.

use std::path::PathBuf;
use std::sync::Arc;

use pex_abstract::AbsTypes;
use pex_core::{EngineCache, InvalidationStats, MethodIndex, ReachIndex};
use pex_corpus::builtin;
use pex_model::minics::MiniCsError;
use pex_model::{Context, Database, Local, MethodId};

/// Where a snapshot's code model comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotSource {
    /// The builtin mini Paint.NET corpus (the paper's running example).
    Paint,
    /// The builtin dynamic-geometry corpus (Figure 3).
    Geometry,
    /// The builtin Family.Show corpus.
    FamilyShow,
    /// A mini-C# source file.
    File(PathBuf),
}

impl SnapshotSource {
    /// Parses a CLI corpus argument (same surface as `pex-repl`).
    pub fn from_arg(arg: &str) -> SnapshotSource {
        match arg {
            "paint" => SnapshotSource::Paint,
            "geometry" => SnapshotSource::Geometry,
            "familyshow" => SnapshotSource::FamilyShow,
            path => SnapshotSource::File(PathBuf::from(path)),
        }
    }

    /// Short display name for logs and metrics config.
    pub fn name(&self) -> String {
        match self {
            SnapshotSource::Paint => "paint".into(),
            SnapshotSource::Geometry => "geometry".into(),
            SnapshotSource::FamilyShow => "familyshow".into(),
            SnapshotSource::File(p) => p.display().to_string(),
        }
    }
}

/// What one incremental update did to a snapshot: the model-level edit
/// accounting plus exactly how much derived state it invalidated.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// The update changed nothing: no new snapshot was produced and zero
    /// cache entries were invalidated.
    pub noop: bool,
    /// Per-cache invalidation counts (all zero for a no-op or a pure
    /// body edit).
    pub invalidated: InvalidationStats,
    /// Types declared by the update that did not exist before.
    pub types_added: usize,
    /// Members added by the update.
    pub members_added: usize,
    /// Members tombstoned by the update.
    pub members_removed: usize,
    /// Member signatures overwritten in place.
    pub signatures_changed: usize,
    /// Method bodies changed under an untouched signature.
    pub bodies_edited: usize,
}

impl UpdateStats {
    /// Folds another edit's stats into this one (batch `edits` form).
    pub fn absorb(&mut self, other: &UpdateStats) {
        self.noop = self.noop && other.noop;
        self.invalidated.chains += other.invalidated.chains;
        self.invalidated.chains_kept += other.invalidated.chains_kept;
        self.invalidated.candidates += other.invalidated.candidates;
        self.invalidated.candidates_kept += other.invalidated.candidates_kept;
        self.invalidated.conversions += other.invalidated.conversions;
        self.invalidated.reach_rebuilt |= other.invalidated.reach_rebuilt;
        self.types_added += other.types_added;
        self.members_added += other.members_added;
        self.members_removed += other.members_removed;
        self.signatures_changed += other.signatures_changed;
        self.bodies_edited += other.bodies_edited;
    }
}

/// The immutable state shared by all serve workers: one code model plus
/// every index the engine consults, fully warmed.
#[derive(Debug)]
pub struct Snapshot {
    /// The code model under completion.
    pub db: Database,
    /// The Figure 8 parameter-type → method index (built once).
    pub index: MethodIndex,
    /// Type-reachability index for chain pruning (built once).
    pub reach: ReachIndex,
    /// The context used when a request does not carry its own locals.
    pub default_ctx: Context,
    /// The enclosing method of the default context, if any.
    pub enclosing: Option<MethodId>,
    /// Shared engine cache: the hash-consed expression arena and the chain
    /// successor memo. Every request completes through this cache, so
    /// expressions and member walks interned by one request are free for
    /// the next — including concurrent requests on other workers.
    pub cache: EngineCache,
    /// Human-readable source label.
    pub name: String,
}

impl Snapshot {
    /// Loads and prewarms a snapshot. Errors are human-readable strings
    /// (unreadable file, mini-C# compile error).
    pub fn load(source: &SnapshotSource) -> Result<Arc<Snapshot>, String> {
        let (db, default_ctx, enclosing) = match source {
            SnapshotSource::Paint => {
                let db = builtin::paint_dot_net();
                let (ctx, m) = builtin::paint_query_site(&db);
                (db, ctx, Some(m))
            }
            SnapshotSource::Geometry => {
                let db = builtin::dynamic_geometry();
                let ctx = builtin::geometry_fig3_context(&db);
                (db, ctx, None)
            }
            SnapshotSource::FamilyShow => {
                let db = builtin::family_show();
                (db, Context::empty(), None)
            }
            SnapshotSource::File(path) => {
                // A misspelled builtin name ("piant") falls through
                // `from_arg` to the file branch, so the read error also
                // names the builtins the caller may have meant.
                let source = std::fs::read_to_string(path).map_err(|e| {
                    format!(
                        "cannot read {}: {e} (builtin corpora: paint, geometry, familyshow)",
                        path.display()
                    )
                })?;
                let db = pex_model::minics::compile(&source)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                (db, Context::empty(), None)
            }
        };
        Ok(Arc::new(Snapshot::from_database(
            source.name(),
            db,
            default_ctx,
            enclosing,
        )))
    }

    /// Builds and prewarms a snapshot around an already-compiled database
    /// (used by the in-process `serve-bench` load generator).
    pub fn from_database(
        name: String,
        db: Database,
        default_ctx: Context,
        enclosing: Option<MethodId>,
    ) -> Snapshot {
        let _span = pex_obs::span("serve.snapshot.load");
        let index = MethodIndex::build(&db);
        let reach = ReachIndex::build(&db);
        let snapshot = Snapshot {
            db,
            index,
            reach,
            default_ctx,
            enclosing,
            cache: EngineCache::new(),
            name,
        };
        snapshot.prewarm();
        snapshot
    }

    /// Forces the lazily built caches so no request pays for a cold fill:
    /// the conversion index (one Dijkstra over the conversion graph) and
    /// the per-type candidate memo (one entry per type).
    fn prewarm(&self) {
        let _span = pex_obs::span("serve.snapshot.prewarm");
        let _ = self.db.types().conversion_index();
        for ty in self.db.types().iter() {
            let _ = self.index.candidates_for_cached(&self.db, ty);
        }
        pex_obs::counter!("serve.snapshot.prewarmed", 1);
    }

    /// Applies one incremental source update, producing a **new** snapshot
    /// that shares every cache entry the edit provably left valid (see
    /// [`pex_core::refresh_derived`]); `self` is never touched, so a parse
    /// or resolution error leaves the serving snapshot byte-identical and
    /// in-flight requests keep draining against it — the same discipline
    /// as a registry hot swap.
    ///
    /// Returns `(None, stats)` when the update is a no-op (the caller
    /// keeps serving the existing snapshot and reports zero
    /// invalidations), or `(Some(snapshot), stats)` with the patched
    /// snapshot otherwise.
    ///
    /// # Errors
    ///
    /// Any mini-C# parse or resolution error, with its 1-based source
    /// position — the protocol layer renders it as a `parse_error`.
    pub fn apply_update(
        &self,
        source: &str,
    ) -> Result<(Option<Snapshot>, UpdateStats), MiniCsError> {
        let _span = pex_obs::span("serve.snapshot.update");
        let (mut db, diff) = pex_model::minics::apply_update(&self.db, source)?;
        let mut stats = UpdateStats {
            noop: diff.is_noop(),
            types_added: diff.types_added,
            members_added: diff.members_added,
            members_removed: diff.members_removed,
            signatures_changed: diff.signatures_changed,
            bodies_edited: diff.body_edited.len(),
            ..UpdateStats::default()
        };
        if stats.noop {
            pex_obs::counter!("serve.snapshot.update.noops", 1);
            return Ok((None, stats));
        }
        let (index, reach, cache, invalidated) = pex_core::refresh_derived(
            &self.db,
            &mut db,
            &self.index,
            &self.reach,
            &self.cache,
            &diff,
        );
        stats.invalidated = invalidated;
        let snapshot = Snapshot {
            db,
            index,
            reach,
            default_ctx: self.default_ctx.clone(),
            enclosing: self.enclosing,
            cache,
            name: self.name.clone(),
        };
        // Refill only what the edit dropped: carried memo cells hit their
        // OnceLock, so prewarm cost is proportional to the dirty set — and
        // a zero-invalidation edit (body-only) carried everything, so the
        // sweep itself can be skipped.
        if stats.invalidated.total() > 0 || stats.invalidated.reach_rebuilt {
            snapshot.prewarm();
        }
        pex_obs::counter!("serve.snapshot.update.applied", 1);
        Ok((Some(snapshot), stats))
    }

    /// A coarse estimate of this snapshot's resident size in bytes, for
    /// the registry's `--max-snapshot-bytes` LRU accounting.
    ///
    /// The estimate is structural — per-entry costs for the type table,
    /// members, method bodies, the candidate memo, and the interned
    /// expression arena — not a heap census. It only has to be *monotone*
    /// in corpus size and stable across runs so eviction order is
    /// deterministic; tenants loaded from a `pex-snapshot/1` file use the
    /// file's exact byte length instead (the file contains the same
    /// arena + index payload this approximates).
    pub fn approx_bytes(&self) -> u64 {
        let types = self.db.types().len() as u64;
        let fields = self.db.field_count() as u64;
        let methods = self.db.method_count() as u64;
        let arena = self.cache.arena.len() as u64;
        // Rough per-entry footprints: a type row plus its conversion-index
        // and candidate-memo shares; a member signature; a parsed method
        // body; one interned arena node.
        types * 512 + fields * 96 + methods * 768 + arena * 48 + 4096
    }

    /// Builds the Lackwit-style abstract-type inference for the snapshot's
    /// default query site, if it has one. The result borrows the
    /// snapshot's database, so it cannot be stored inside the snapshot
    /// itself; each worker builds it once at startup and reuses it for
    /// every request that runs in the default context.
    pub fn abs_for_site(&self) -> Option<AbsTypes<'_>> {
        self.enclosing
            .map(|m| AbsTypes::for_query(&self.db, m, usize::MAX))
    }

    /// The context for one request: the default context, or one rebuilt
    /// from `name:Qualified.Type` local specs when the request carries any.
    pub fn context_for(&self, locals: &[String]) -> Result<Context, String> {
        if locals.is_empty() {
            return Ok(self.default_ctx.clone());
        }
        let mut out = Vec::new();
        for spec in locals {
            let Some((name, ty_name)) = spec.split_once(':') else {
                return Err(format!("local `{spec}` must be name:Qualified.Type"));
            };
            let Some(ty) = self.db.types().lookup_qualified(ty_name) else {
                return Err(format!("unknown type `{ty_name}`"));
            };
            out.push(Local {
                name: name.to_owned(),
                ty,
            });
        }
        Ok(Context::with_locals(None, out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_and_prewarms_builtin_corpora() {
        let snap = Snapshot::load(&SnapshotSource::Paint).unwrap();
        assert!(snap.db.method_count() > 0);
        assert!(!snap.default_ctx.locals.is_empty());
        assert_eq!(snap.name, "paint");
    }

    #[test]
    fn source_args_parse_like_the_repl() {
        assert_eq!(SnapshotSource::from_arg("paint"), SnapshotSource::Paint);
        assert_eq!(
            SnapshotSource::from_arg("geometry"),
            SnapshotSource::Geometry
        );
        assert_eq!(
            SnapshotSource::from_arg("x/y.mcs"),
            SnapshotSource::File(PathBuf::from("x/y.mcs"))
        );
    }

    #[test]
    fn missing_files_error_instead_of_panicking() {
        let err = Snapshot::load(&SnapshotSource::File(PathBuf::from(
            "/nonexistent/code.mcs",
        )))
        .unwrap_err();
        assert!(err.contains("cannot read"), "{err}");
    }

    #[test]
    fn misspelled_builtin_names_suggest_the_valid_ones() {
        // "piant" is not a builtin, so it is treated as a file path; the
        // error must list the names the user probably meant.
        let err = Snapshot::load(&SnapshotSource::from_arg("piant")).unwrap_err();
        assert!(err.contains("cannot read piant"), "{err}");
        for name in ["paint", "geometry", "familyshow"] {
            assert!(err.contains(name), "missing `{name}` hint in: {err}");
        }
    }

    #[test]
    fn approx_bytes_is_nonzero_and_grows_with_the_corpus() {
        let paint = Snapshot::load(&SnapshotSource::Paint).unwrap();
        assert!(paint.approx_bytes() > 0);
        // A strictly larger code model must account as strictly larger, so
        // LRU eviction order under a byte budget is meaningful.
        let empty = Snapshot::from_database(
            "empty".into(),
            pex_model::minics::compile("").unwrap(),
            Context::empty(),
            None,
        );
        assert!(paint.approx_bytes() > empty.approx_bytes());
    }

    #[test]
    fn request_locals_override_the_default_context() {
        let snap = Snapshot::load(&SnapshotSource::Geometry).unwrap();
        let ctx = snap.context_for(&[]).unwrap();
        assert_eq!(ctx.locals.len(), snap.default_ctx.locals.len());
        // A bad spec errors rather than silently loading nothing.
        assert!(snap.context_for(&["noColon".into()]).is_err());
        assert!(snap.context_for(&["p:No.Such.Type".into()]).is_err());
    }
}
