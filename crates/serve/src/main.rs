//! `pex-serve` — the long-lived completion daemon.
//!
//! Loads a code model once, prewarms every index, and serves the
//! JSON-lines protocol from a fixed worker pool over two transports:
//!
//! * **stdin/stdout** (always on): one request per line on stdin, one
//!   response per line on stdout. EOF on stdin begins a graceful
//!   shutdown: admitted requests drain, then the process exits 0.
//! * **Unix-domain socket** (`--socket PATH`): each connection speaks the
//!   same line protocol; connections are independent clients sharing the
//!   worker pool and admission queue.
//!
//! A `{"cmd":"shutdown"}` request from any transport triggers the same
//! graceful drain. `--metrics-out FILE` writes the metric registry
//! (counters, gauges, latency histograms) as JSON on shutdown — the daemon
//! equivalent of `pex-experiments --metrics-out` — and, with
//! `--metrics-interval-s N`, every N seconds while serving (each write is
//! atomic: a temp file renamed into place, so scrapers never read a torn
//! document). (Catching SIGTERM directly would need a signal handler,
//! which `std` cannot install without unsafe code; the workspace forbids
//! it, so orchestrators should close stdin or send the shutdown command
//! instead.)

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Duration;

use pex_serve::json::{self, Value};
use pex_serve::proto::RequestDefaults;
use pex_serve::registry::{self, DefaultOrigin};
use pex_serve::{ServeConfig, Server, ServerClient, Snapshot, SnapshotRegistry, SnapshotSource};

struct Options {
    source: SnapshotSource,
    locals: Vec<String>,
    config: ServeConfig,
    socket: Option<PathBuf>,
    max_connections: usize,
    metrics_out: Option<PathBuf>,
    metrics_interval_s: Option<u64>,
    save_snapshot: Option<PathBuf>,
    load_snapshot: Option<PathBuf>,
    snapshot_dir: Option<PathBuf>,
    max_snapshot_bytes: Option<u64>,
    build_only: bool,
}

/// Writes the metrics document atomically: temp file in the same
/// directory, then rename, so a concurrent scraper reads either the old
/// complete document or the new one — never a torn write.
fn write_metrics(path: &std::path::Path) -> std::io::Result<()> {
    let doc = pex_serve::obs_json::metrics_document();
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    std::fs::write(&tmp, doc)?;
    std::fs::rename(&tmp, path)
}

fn main() {
    let options = parse_args();
    // `--load-snapshot` rehydrates a saved `pex-snapshot/1` artefact and
    // skips corpus parsing, index building and prewarming entirely; the
    // normal path builds everything from the named corpus.
    let load_result = match &options.load_snapshot {
        Some(path) => pex_serve::persist::load(path),
        None => Snapshot::load(&options.source),
    };
    let snapshot = match load_result {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pex-serve: {e}");
            std::process::exit(2);
        }
    };
    // `--local` declarations become the default context for requests that
    // carry none of their own.
    let snapshot = match registry::apply_locals(snapshot, &options.locals) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pex-serve: --local: {e}");
            std::process::exit(2);
        }
    };
    if let Some(path) = &options.save_snapshot {
        if let Err(e) = pex_serve::persist::save(&snapshot, path) {
            eprintln!("pex-serve: --save-snapshot: {e}");
            std::process::exit(2);
        }
        eprintln!("pex-serve: wrote snapshot {}", path.display());
    }
    if options.build_only {
        eprintln!(
            "pex-serve: {} — {} types, {} methods; build-only, exiting",
            snapshot.name,
            snapshot.db.types().len(),
            snapshot.db.method_count(),
        );
        return;
    }
    eprintln!(
        "pex-serve: {} — {} types, {} methods; {} workers, queue capacity {}",
        snapshot.name,
        snapshot.db.types().len(),
        snapshot.db.method_count(),
        options.config.workers,
        options.config.queue_cap
    );
    if let Some(dir) = &options.snapshot_dir {
        eprintln!(
            "pex-serve: multi-tenant: serving *.pexsnap from {}{}",
            dir.display(),
            options
                .max_snapshot_bytes
                .map(|b| format!(" (budget {b} bytes)"))
                .unwrap_or_default()
        );
    }

    // The default tenant remembers how it was built, so `{"cmd":"reload"}`
    // can rebuild it the same way and hot-swap the Arc.
    let origin = match &options.load_snapshot {
        Some(path) => DefaultOrigin::File {
            path: path.clone(),
            locals: options.locals.clone(),
        },
        None => DefaultOrigin::Source {
            source: options.source.clone(),
            locals: options.locals.clone(),
        },
    };
    let registry = Arc::new(SnapshotRegistry::new(
        snapshot,
        origin,
        options.snapshot_dir.clone(),
        options.max_snapshot_bytes,
    ));
    let server = Server::start(registry, options.config);

    // Periodic metrics flush: a plain timer thread woken early at shutdown
    // by dropping the channel's sender. No flush happens unless both
    // `--metrics-out` and `--metrics-interval-s` are given.
    let metrics_flusher = options.metrics_interval_s.map(|interval_s| {
        let path = options
            .metrics_out
            .clone()
            .expect("parse_args requires --metrics-out with --metrics-interval-s");
        let (stop_tx, stop_rx) = channel::<()>();
        let handle = std::thread::spawn(move || {
            // Timeout means "interval elapsed, flush"; Ok or Disconnected
            // both mean shutdown.
            while let Err(std::sync::mpsc::RecvTimeoutError::Timeout) =
                stop_rx.recv_timeout(Duration::from_secs(interval_s.max(1)))
            {
                if let Err(e) = write_metrics(&path) {
                    eprintln!("pex-serve: cannot write {}: {e}", path.display());
                }
            }
        });
        (stop_tx, handle)
    });

    // Socket listener (optional): accepts until shutdown is requested.
    let listener_handle = options.socket.as_ref().map(|path| {
        prepare_socket_path(path);
        let listener = match std::os::unix::net::UnixListener::bind(path) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("pex-serve: cannot bind {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        eprintln!("pex-serve: listening on {}", path.display());
        spawn_socket_listener(listener, server.client(), options.max_connections)
    });

    // The stdin transport runs on the main thread.
    stdin_transport(&server);

    // Graceful shutdown: stop accepting, drain admitted work, join.
    server.request_shutdown();
    if let Some(accept_thread) = listener_handle {
        // The accept loop blocks in `accept`; a throwaway connection wakes
        // it so it can observe the shutdown flag and exit promptly.
        if let Some(path) = &options.socket {
            let _ = std::os::unix::net::UnixStream::connect(path);
        }
        let _ = accept_thread.join();
    }
    server.shutdown();
    if let Some((stop_tx, handle)) = metrics_flusher {
        drop(stop_tx);
        let _ = handle.join();
    }
    if let Some(path) = &options.socket {
        let _ = std::fs::remove_file(path);
    }
    if let Some(path) = &options.metrics_out {
        if let Err(e) = write_metrics(path) {
            eprintln!("pex-serve: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("pex-serve: wrote {}", path.display());
    }
}

/// Reads requests from stdin until EOF or a shutdown command. Responses
/// are written (and flushed, for pipeline clients) by a dedicated writer
/// thread so slow queries never block admission.
fn stdin_transport(server: &Server) {
    let (tx, rx) = channel::<String>();
    let writer = std::thread::spawn(move || {
        let stdout = std::io::stdout();
        for response in rx {
            let mut out = stdout.lock();
            if writeln!(out, "{response}")
                .and_then(|_| out.flush())
                .is_err()
            {
                // stdout closed (client went away): stop writing; the main
                // loop notices on EOF or shutdown.
                break;
            }
        }
    });
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        if handle_if_shutdown(&line, server, &tx) {
            break;
        }
        server.submit(line, &tx);
        if server.shutdown_requested() {
            break;
        }
    }
    drop(tx);
    let _ = writer.join();
}

/// Transport-level fast path for `{"cmd":"shutdown"}`: acknowledged
/// immediately so the drain can begin without waiting for a worker. The
/// substring pre-filter keeps the common path free of double parsing.
fn handle_if_shutdown(line: &str, server: &Server, tx: &Sender<String>) -> bool {
    if !line.contains("\"shutdown\"") {
        return false;
    }
    let Ok(doc) = json::parse(line) else {
        return false;
    };
    if doc.get("cmd").and_then(Value::as_str) != Some("shutdown") {
        return false;
    }
    server.request_shutdown();
    let id = doc.get("id").cloned();
    let _ = tx.send(pex_serve::proto::shutdown_response(id.as_ref()));
    true
}

/// Readies `--socket PATH` for binding without clobbering anything live:
///
/// * nothing at the path — proceed;
/// * a socket a daemon answers on — exit 2 (`address in use`), never
///   steal a live daemon's clients;
/// * a socket nothing accepts on (connect refused) — a previous daemon
///   died without cleanup; unlink the stale socket and proceed;
/// * anything that is not a socket — exit 2; this tool does not delete
///   files it did not create.
fn prepare_socket_path(path: &std::path::Path) {
    use std::os::unix::fs::FileTypeExt;
    let meta = match std::fs::symlink_metadata(path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return,
        Err(e) => {
            eprintln!("pex-serve: cannot stat {}: {e}", path.display());
            std::process::exit(2);
        }
        Ok(meta) => meta,
    };
    if !meta.file_type().is_socket() {
        eprintln!(
            "pex-serve: refusing to replace {}: it exists and is not a socket",
            path.display()
        );
        std::process::exit(2);
    }
    match std::os::unix::net::UnixStream::connect(path) {
        Ok(_) => {
            eprintln!(
                "pex-serve: {}: address in use (another daemon is listening)",
                path.display()
            );
            std::process::exit(2);
        }
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
            if let Err(e) = std::fs::remove_file(path) {
                eprintln!(
                    "pex-serve: cannot remove stale socket {}: {e}",
                    path.display()
                );
                std::process::exit(2);
            }
            eprintln!("pex-serve: removed stale socket {}", path.display());
        }
        Err(e) => {
            eprintln!("pex-serve: cannot probe {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

/// Accepts socket connections until shutdown; each connection gets a
/// reader (with a poll timeout so shutdown is observed) and a writer.
///
/// The accept call blocks — no polling, no connect latency — and shutdown
/// wakes it with a throwaway connection (see `main`). Finished connection
/// handles are reaped every iteration, so a long-lived daemon under
/// connection churn holds one handle per *live* connection, and the
/// `max_connections` cap sheds new connections with an explicit
/// `connection_limit` error line instead of spawning without bound.
fn spawn_socket_listener(
    listener: std::os::unix::net::UnixListener,
    server: ServerClient,
    max_connections: usize,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if server.shutdown_requested() {
                break;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    if server.shutdown_requested() {
                        break; // the wakeup connection, not a client
                    }
                    connections.retain(|c| !c.is_finished());
                    if connections.len() >= max_connections {
                        pex_obs::counter!("serve.connections.rejected", 1);
                        let mut stream = stream;
                        let _ = writeln!(
                            stream,
                            "{}",
                            pex_serve::proto::error_response(
                                None,
                                "connection_limit",
                                &format!(
                                    "server at --max-connections ({max_connections}); retry later"
                                ),
                            )
                        );
                        continue;
                    }
                    pex_obs::counter!("serve.connections", 1);
                    let server = server.clone();
                    connections.push(std::thread::spawn(move || {
                        socket_connection(stream, &server);
                    }));
                }
                Err(_) => break,
            }
        }
        for c in connections {
            let _ = c.join();
        }
    })
}

/// One socket client: reads request lines (polling for shutdown via a
/// read timeout), writes responses as they complete.
fn socket_connection(stream: std::os::unix::net::UnixStream, server: &ServerClient) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = channel::<String>();
    let writer = std::thread::spawn(move || {
        let mut out = std::io::BufWriter::new(write_half);
        for response in rx {
            if writeln!(out, "{response}")
                .and_then(|_| out.flush())
                .is_err()
            {
                break;
            }
        }
    });
    let mut reader = BufReader::new(stream);
    let mut acc = String::new();
    loop {
        if server.shutdown_requested() {
            break;
        }
        match reader.read_line(&mut acc) {
            Ok(0) => break, // client closed
            Ok(_) => {
                if !acc.ends_with('\n') {
                    continue; // timeout mid-line; keep accumulating
                }
                let line = std::mem::take(&mut acc);
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                if line.contains("\"shutdown\"") {
                    if let Ok(doc) = json::parse(line) {
                        if doc.get("cmd").and_then(Value::as_str) == Some("shutdown") {
                            server.request_shutdown();
                            let id = doc.get("id").cloned();
                            let _ = tx.send(pex_serve::proto::shutdown_response(id.as_ref()));
                            break;
                        }
                    }
                }
                server.submit(line.to_owned(), &tx);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // poll tick: re-check the shutdown flag
            }
            Err(_) => break,
        }
    }
    drop(tx);
    let _ = writer.join();
}

fn usage_exit(msg: &str) -> ! {
    eprintln!("pex-serve: {msg}\n\n{HELP}");
    std::process::exit(2);
}

fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    match args.get(*i) {
        Some(v) => v.clone(),
        None => usage_exit(&format!("missing value for {flag}")),
    }
}

fn parse_usize(flag: &str, v: &str) -> usize {
    v.parse()
        .unwrap_or_else(|_| usage_exit(&format!("{flag} takes an integer, got `{v}`")))
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = Options {
        source: SnapshotSource::Paint,
        locals: Vec::new(),
        config: ServeConfig::default(),
        socket: None,
        max_connections: 256,
        metrics_out: None,
        metrics_interval_s: None,
        save_snapshot: None,
        load_snapshot: None,
        snapshot_dir: None,
        max_snapshot_bytes: None,
        build_only: false,
    };
    let mut defaults = RequestDefaults::default();
    let mut source_arg: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let flag = flag.as_str();
        match flag {
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            "--local" => options.locals.push(take_value(&args, &mut i, flag)),
            "--workers" => {
                options.config.workers = parse_usize(flag, &take_value(&args, &mut i, flag)).max(1)
            }
            "--queue-cap" => {
                options.config.queue_cap =
                    parse_usize(flag, &take_value(&args, &mut i, flag)).max(1)
            }
            "--limit" => defaults.limit = parse_usize(flag, &take_value(&args, &mut i, flag)),
            "--deadline-ms" => {
                defaults.deadline_ms =
                    Some(parse_usize(flag, &take_value(&args, &mut i, flag)) as u64)
            }
            "--max-steps" => {
                defaults.max_steps = parse_usize(flag, &take_value(&args, &mut i, flag))
            }
            "--socket" => options.socket = Some(PathBuf::from(take_value(&args, &mut i, flag))),
            "--max-connections" => {
                options.max_connections = parse_usize(flag, &take_value(&args, &mut i, flag)).max(1)
            }
            "--metrics-out" => {
                options.metrics_out = Some(PathBuf::from(take_value(&args, &mut i, flag)))
            }
            "--metrics-interval-s" => {
                options.metrics_interval_s =
                    Some(parse_usize(flag, &take_value(&args, &mut i, flag)).max(1) as u64)
            }
            "--save-snapshot" => {
                options.save_snapshot = Some(PathBuf::from(take_value(&args, &mut i, flag)))
            }
            "--load-snapshot" => {
                options.load_snapshot = Some(PathBuf::from(take_value(&args, &mut i, flag)))
            }
            "--snapshot-dir" => {
                options.snapshot_dir = Some(PathBuf::from(take_value(&args, &mut i, flag)))
            }
            "--max-snapshot-bytes" => {
                options.max_snapshot_bytes =
                    Some(parse_usize(flag, &take_value(&args, &mut i, flag)) as u64)
            }
            "--build-only" => options.build_only = true,
            "--slo-p99-us" => {
                options.config.slo_p99_us =
                    Some(parse_usize(flag, &take_value(&args, &mut i, flag)) as u64)
            }
            other if other.starts_with('-') => usage_exit(&format!("unknown flag {other}")),
            other => {
                if source_arg.is_some() {
                    usage_exit(&format!("unexpected extra argument `{other}`"));
                }
                source_arg = Some(other.to_owned());
            }
        }
        i += 1;
    }
    if let Some(arg) = source_arg {
        if options.load_snapshot.is_some() {
            usage_exit(&format!(
                "`{arg}` conflicts with --load-snapshot (the snapshot already \
                 carries its corpus)"
            ));
        }
        options.source = SnapshotSource::from_arg(&arg);
    }
    if options.metrics_interval_s.is_some() && options.metrics_out.is_none() {
        usage_exit("--metrics-interval-s requires --metrics-out");
    }
    options.config.defaults = defaults;
    options
}

const HELP: &str = "\
pex-serve — long-lived type-directed completion service

USAGE: pex-serve [paint|geometry|familyshow|FILE.mcs] [flags]

TRANSPORTS:
    stdin/stdout       always on: one JSON request per line in, one JSON
                       response per line out; EOF drains and exits 0
    --socket PATH      also listen on a Unix-domain socket (same protocol,
                       one connection per client); a live socket at PATH is
                       refused (exit 2), a stale one is replaced
    --max-connections N
                       concurrent socket connections before new ones are
                       shed with a `connection_limit` error (default 256)

FLAGS:
    --local name:Type  add a local to the default query context (repeatable)
    --workers N        worker threads (default: available parallelism)
    --queue-cap N      admission queue capacity; a full queue sheds with an
                       explicit `shed` error response (default: workers*16)
    --limit N          default completions per request (default 10)
    --deadline-ms N    default per-request wall-clock deadline (default none)
    --max-steps N      default per-request step budget (default 1000000)
    --metrics-out FILE write the metric registry as JSON on shutdown
    --metrics-interval-s N
                       also rewrite --metrics-out atomically every N seconds
    --slo-p99-us N     health reports `burning` when the rolling-window p99
                       latency exceeds N microseconds

SNAPSHOTS:
    --save-snapshot FILE
                       after boot, write the prewarmed snapshot in the
                       `pex-snapshot/1` binary format (atomic rename)
    --load-snapshot FILE
                       boot from a saved snapshot, skipping corpus parsing,
                       index building and prewarming; conflicts with a
                       corpus argument
    --build-only       exit 0 after boot (and --save-snapshot, if given)
                       instead of serving — the offline snapshot builder

MULTI-TENANT:
    --snapshot-dir DIR serve additional tenants: a request with
                       \"project\":\"name\" lazily loads DIR/name.pexsnap;
                       requests without `project` use the default tenant
    --max-snapshot-bytes N
                       byte budget for resident tenant snapshots; least-
                       recently-used tenants are evicted past it (the
                       default tenant is exempt and never evicted)

PROTOCOL:
    {\"id\":1,\"query\":\"?({img, size})\",\"limit\":5,\"deadline_ms\":40}
    {\"id\":2,\"query\":\"p.?f\",\"locals\":[\"p:Geo.Point\"]}
    {\"id\":3,\"query\":\"?\",\"trace\":true,\"explain\":true}
    {\"id\":4,\"query\":\"?\",\"project\":\"geo-v2\"}
    {\"cmd\":\"ping\"}   {\"cmd\":\"stats\"}   {\"cmd\":\"health\"}   {\"cmd\":\"shutdown\"}
    {\"cmd\":\"reload\",\"project\":\"geo-v2\"}   (hot-swap a tenant snapshot)

INTROSPECTION:
    query responses echo a `trace_id`; `trace`/`explain` attach the span
    tree + per-query search stats and per-term score breakdowns. `stats`
    returns the live registry plus last-1s/10s/60s latency windows;
    `health` returns queue depth, windowed shed rate, and the SLO flag.
";
