//! `pex-snapshot/1`: the versioned, dependency-free binary format that
//! persists a fully prewarmed [`Snapshot`] to disk.
//!
//! A daemon boot normally pays corpus parse + index build + prewarm. The
//! persistent snapshot moves all of that offline: `--save-snapshot` writes
//! the finished artefact once, `--load-snapshot` maps it back in without
//! touching the mini-C# frontend, the index builders, or the prewarm pass
//! — the conversion index, the per-type candidate memos and the interned
//! expression arena all come back exactly as they were saved.
//!
//! ## Layout
//!
//! ```text
//! magic      8 bytes   "pexsnap1"
//! version    u32 LE    format version (this build reads 1)
//! payload_len u64 LE   total payload bytes after the section table
//! checksum   u64 LE    FNV-1a 64 over the payload
//! sections   u32 LE    section count
//! per section:
//!   tag      u32 LE    section id (see `tag` constants)
//!   offset   u64 LE    byte offset inside the payload
//!   length   u64 LE    section length in bytes
//! payload    payload_len bytes
//! ```
//!
//! Sections hold, in dense-id wire encoding ([`pex_types::wire`]): the
//! database (types, members, bodies, conversion index), the snapshot
//! metadata (name, default context, enclosing method), the method index
//! with its prewarmed candidate memos, the reachability index, and the
//! hash-consed expression arena with its symbol table.
//!
//! ## Validation
//!
//! Loading never trusts the file: the magic, version, payload length and
//! checksum gate the header; every section range is checked against the
//! payload; every decoder bounds-checks every id and rejects unknown tags,
//! impossible lengths and trailing bytes. A truncated, bit-flipped or
//! version-bumped file produces a clean human-readable error — the daemon
//! is `forbid(unsafe_code)` and must never panic mid-boot.
//!
//! ## Compatibility policy
//!
//! The version is bumped on **any** byte-level change; there is no
//! in-place migration. A mismatched version is an error telling the
//! operator to rebuild with `--save-snapshot` — snapshots are cheap,
//! derived artefacts, never sources of truth.

use std::path::Path;
use std::sync::Arc;

use pex_core::{EngineCache, MethodIndex, ReachIndex};
use pex_model::{Context, Database, ExprArena, MethodId};
use pex_types::wire::{checksum, Reader, WireError, WireResult, Writer};

use crate::snapshot::Snapshot;

/// Leading magic bytes of every snapshot file.
pub const MAGIC: &[u8; 8] = b"pexsnap1";

/// The format version this build writes and reads. Version 2 added the
/// database's removed-member tombstone sets (incremental updates keep
/// surviving ids stable by never compacting them); version-1 files are
/// rejected with a self-describing error rather than misread.
pub const VERSION: u32 = 2;

mod tag {
    pub const DATABASE: u32 = 1;
    pub const META: u32 = 2;
    pub const METHOD_INDEX: u32 = 3;
    pub const REACH_INDEX: u32 = 4;
    pub const ARENA: u32 = 5;
}

/// Serializes a snapshot into the `pex-snapshot/1` byte format.
pub fn to_bytes(snapshot: &Snapshot) -> Vec<u8> {
    let _span = pex_obs::span("serve.snapshot.encode");
    let mut payload = Writer::new();
    let mut sections: Vec<(u32, u64, u64)> = Vec::new();
    let mut section = |t: u32, payload: &mut Writer, f: &dyn Fn(&mut Writer)| {
        let start = payload.len() as u64;
        f(payload);
        sections.push((t, start, payload.len() as u64 - start));
    };
    section(tag::DATABASE, &mut payload, &|w| {
        snapshot.db.encode_snapshot(w)
    });
    section(tag::META, &mut payload, &|w| {
        w.put_str(&snapshot.name);
        w.put_bool(snapshot.enclosing.is_some());
        w.put_u32(snapshot.enclosing.map_or(0, |m| m.index() as u32));
        snapshot.default_ctx.encode_snapshot(w);
    });
    section(tag::METHOD_INDEX, &mut payload, &|w| {
        snapshot.index.encode_snapshot(w)
    });
    section(tag::REACH_INDEX, &mut payload, &|w| {
        snapshot.reach.encode_snapshot(w)
    });
    section(tag::ARENA, &mut payload, &|w| {
        snapshot.cache.arena.encode_snapshot(w)
    });

    let payload = payload.into_bytes();
    let mut out = Writer::new();
    out.put_bytes(MAGIC);
    out.put_u32(VERSION);
    out.put_u64(payload.len() as u64);
    out.put_u64(checksum(&payload));
    out.put_len(sections.len());
    for (t, offset, len) in sections {
        out.put_u32(t);
        out.put_u64(offset);
        out.put_u64(len);
    }
    out.put_bytes(&payload);
    pex_obs::counter!("serve.snapshot.saved", 1);
    out.into_bytes()
}

/// One validated section range inside the payload.
struct Section<'a> {
    tag: u32,
    bytes: &'a [u8],
}

fn parse_sections(bytes: &[u8]) -> WireResult<Vec<Section<'_>>> {
    let mut r = Reader::new(bytes);
    let magic = r.take(MAGIC.len(), "magic bytes")?;
    if magic != MAGIC {
        return Err(WireError::new(
            "not a pex snapshot (magic bytes do not spell \"pexsnap1\")",
        ));
    }
    let version = r.get_u32("format version")?;
    if version != VERSION {
        return Err(WireError::new(format!(
            "unsupported snapshot version {version} (this build reads {VERSION}; \
             rebuild the snapshot with --save-snapshot)"
        )));
    }
    let payload_len = r.get_u64("payload length")? as usize;
    let declared_checksum = r.get_u64("payload checksum")?;
    let n_sections = r.get_len("section count")?;
    let mut table = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        let tag = r.get_u32("section tag")?;
        let offset = r.get_u64("section offset")? as usize;
        let len = r.get_u64("section length")? as usize;
        table.push((tag, offset, len));
    }
    let payload = r.take(payload_len, "payload")?;
    r.expect_end("snapshot file")?;
    let actual = checksum(payload);
    if actual != declared_checksum {
        return Err(WireError::new(format!(
            "payload checksum mismatch (file says {declared_checksum:#018x}, \
             payload hashes to {actual:#018x}); the snapshot is corrupted"
        )));
    }
    let mut sections = Vec::with_capacity(table.len());
    for (tag, offset, len) in table {
        let end = offset
            .checked_add(len)
            .ok_or_else(|| WireError::new(format!("section {tag}: offset + length overflows")))?;
        if end > payload.len() {
            return Err(WireError::new(format!(
                "section {tag}: range {offset}..{end} exceeds the {}-byte payload",
                payload.len()
            )));
        }
        sections.push(Section {
            tag,
            bytes: &payload[offset..end],
        });
    }
    Ok(sections)
}

fn find_section<'a>(sections: &'a [Section<'a>], t: u32, name: &str) -> WireResult<&'a [u8]> {
    let mut found = None;
    for s in sections {
        if s.tag == t {
            if found.is_some() {
                return Err(WireError::new(format!("duplicate {name} section")));
            }
            found = Some(s.bytes);
        }
    }
    found.ok_or_else(|| WireError::new(format!("missing {name} section")))
}

fn decode(bytes: &[u8]) -> WireResult<Snapshot> {
    let sections = parse_sections(bytes)?;

    let mut r = Reader::new(find_section(&sections, tag::DATABASE, "database")?);
    let db = Database::decode_snapshot(&mut r).map_err(|e| e.context("database section"))?;
    r.expect_end("database section")?;
    let (n_types, n_fields, n_methods) = (db.types().len(), db.field_count(), db.method_count());

    let mut r = Reader::new(find_section(&sections, tag::META, "metadata")?);
    let name = r.get_str("snapshot name")?;
    let has_enclosing = r.get_bool("enclosing method presence flag")?;
    let raw_enclosing = r.get_u32("enclosing method id")?;
    let enclosing = if has_enclosing {
        if raw_enclosing as usize >= n_methods {
            return Err(WireError::new(format!(
                "enclosing method id {raw_enclosing} out of range \
                 (database holds {n_methods})"
            )));
        }
        Some(MethodId::from_index(raw_enclosing as usize))
    } else {
        None
    };
    let default_ctx = Context::decode_snapshot(&mut r, n_types, n_methods)
        .map_err(|e| e.context("metadata section"))?;
    r.expect_end("metadata section")?;

    let mut r = Reader::new(find_section(&sections, tag::METHOD_INDEX, "method index")?);
    let index = MethodIndex::decode_snapshot(&mut r, n_types, n_methods)
        .map_err(|e| e.context("method index section"))?;
    r.expect_end("method index section")?;

    let mut r = Reader::new(find_section(
        &sections,
        tag::REACH_INDEX,
        "reachability index",
    )?);
    let reach = ReachIndex::decode_snapshot(&mut r, n_types)
        .map_err(|e| e.context("reachability index section"))?;
    r.expect_end("reachability index section")?;

    let mut r = Reader::new(find_section(&sections, tag::ARENA, "expression arena")?);
    let arena = ExprArena::decode_snapshot(&mut r, n_types, n_fields, n_methods)
        .map_err(|e| e.context("expression arena section"))?;
    r.expect_end("expression arena section")?;

    Ok(Snapshot {
        db,
        index,
        reach,
        default_ctx,
        enclosing,
        cache: EngineCache::with_arena(arena),
        name,
    })
}

/// Deserializes a snapshot from `pex-snapshot/1` bytes, skipping parse,
/// index build and prewarm entirely. Every id and offset is validated; a
/// corrupted buffer yields a human-readable error, never a panic.
pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, String> {
    let _span = pex_obs::span("serve.snapshot.decode");
    match decode(bytes) {
        Ok(snapshot) => {
            pex_obs::counter!("serve.snapshot.loaded", 1);
            Ok(snapshot)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Writes a snapshot file (atomically: temp file then rename, so a
/// concurrent boot never reads a torn artefact).
pub fn save(snapshot: &Snapshot, path: &Path) -> Result<(), String> {
    let bytes = to_bytes(snapshot);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &bytes).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} into place: {e}", tmp.display()))?;
    Ok(())
}

/// Reads and validates a snapshot file saved by [`save`].
pub fn load(path: &Path) -> Result<Arc<Snapshot>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    from_bytes(&bytes)
        .map(Arc::new)
        .map_err(|e| format!("{}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SnapshotSource;

    #[test]
    fn roundtrip_preserves_structure_and_prewarm() {
        let built = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let bytes = to_bytes(&built);
        let loaded = from_bytes(&bytes).unwrap();
        assert_eq!(loaded.name, built.name);
        assert_eq!(loaded.db.types().len(), built.db.types().len());
        assert_eq!(loaded.db.method_count(), built.db.method_count());
        assert_eq!(loaded.db.field_count(), built.db.field_count());
        assert_eq!(loaded.enclosing, built.enclosing);
        assert_eq!(
            loaded.default_ctx.locals.len(),
            built.default_ctx.locals.len()
        );
        assert_eq!(loaded.cache.arena.len(), built.cache.arena.len());
        // The prewarmed caches came back filled: answering a query must
        // not rebuild the conversion index or refill candidate memos.
        for ty in loaded.db.types().iter() {
            assert_eq!(
                loaded.index.candidates_for_cached(&loaded.db, ty),
                built.index.candidates_for_cached(&built.db, ty),
            );
        }
    }

    #[test]
    fn save_and_load_roundtrip_through_a_file() {
        let built = Snapshot::load(&SnapshotSource::Geometry).unwrap();
        let dir = std::env::temp_dir().join("pex-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("geometry.pexsnap");
        save(&built, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.name, "geometry");
        assert_eq!(loaded.db.method_count(), built.db.method_count());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn double_encode_is_deterministic() {
        let built = Snapshot::load(&SnapshotSource::Paint).unwrap();
        assert_eq!(to_bytes(&built), to_bytes(&built));
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let built = Snapshot::load(&SnapshotSource::Paint).unwrap();
        let bytes = to_bytes(&built);
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(from_bytes(&bad_magic).unwrap_err().contains("magic"));
        let mut bad_version = bytes.clone();
        bad_version[8] = 0xff;
        let err = from_bytes(&bad_version).unwrap_err();
        assert!(err.contains("unsupported snapshot version"), "{err}");
    }
}
