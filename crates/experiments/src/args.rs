//! Experiment 5.2 — predicting method arguments (Figures 13 and 14, and
//! the Section 5.2 speed claim).
//!
//! For each argument of each call, the argument is replaced by `?` and the
//! engine must regenerate the original expression. Arguments whose form the
//! completer cannot generate (constants, computations) are "not guessable".

use std::time::Instant;

use pex_core::PartialExpr;
use pex_model::{Expr, ExprKindName};

use crate::extract::CallSite;
use crate::harness::{completer, map_sites, sample, ExperimentConfig, Project};
use crate::stats::{bar, pct, RankStats, TextTable};

/// Outcome for one argument position of one call.
#[derive(Debug, Clone)]
pub struct ArgOutcome {
    /// Index into the project list.
    pub project: usize,
    /// Syntactic class of the original argument (Figure 14).
    pub kind: ExprKindName,
    /// Rank of the original argument among the hole's completions
    /// (`None` for not-guessable arguments or past-limit ranks).
    pub rank: Option<usize>,
    /// Whether the original argument was a bare local variable.
    pub is_local: bool,
    /// Whether the query was cut short (step budget, deadline, or
    /// cancellation) before the answer was found — an undecided outcome,
    /// counted separately from "not found".
    pub truncated: bool,
    /// Wall-clock nanoseconds for the query (0 = unmeasured: the argument
    /// was not guessable, so no query ran).
    pub nanos: u128,
}

/// Runs the experiment over all projects. Sites replay in parallel (see
/// [`map_sites`]); the outcome order is independent of the thread count.
pub fn run(projects: &[Project], cfg: &ExperimentConfig) -> Vec<ArgOutcome> {
    let _span = pex_obs::span("phase.args");
    let mut out = Vec::new();
    for (pi, project) in projects.iter().enumerate() {
        let sites = sample(&project.extracted.calls, cfg.max_sites);
        out.extend(map_sites(
            &project.db,
            cfg.use_abs.then_some(&project.abs_cache),
            &sites,
            |c: &CallSite| (c.enclosing, c.stmt),
            cfg.threads,
            Some(&cfg.cancel),
            |site, ctx, abs, out| {
                let db = &project.db;
                for (i, arg) in site.args.iter().enumerate() {
                    let kind = arg.kind_name(|m, argc| db.is_zero_arg_call(m, argc));
                    let is_local = matches!(arg, Expr::Local(_));
                    if kind == ExprKindName::NotGuessable {
                        out.push(ArgOutcome {
                            project: pi,
                            kind,
                            rank: None,
                            is_local,
                            truncated: false,
                            nanos: 0,
                        });
                        continue;
                    }
                    let comp = completer(project, ctx, abs, cfg, None);
                    let args: Vec<PartialExpr> = site
                        .args
                        .iter()
                        .enumerate()
                        .map(|(j, a)| {
                            if j == i {
                                PartialExpr::Hole
                            } else {
                                PartialExpr::Known(a.clone())
                            }
                        })
                        .collect();
                    let query = PartialExpr::KnownCall {
                        candidates: vec![site.target],
                        args,
                    };
                    let original = Expr::Call(site.target, site.args.clone());
                    let t0 = Instant::now();
                    let res = comp.rank_of(&query, cfg.limit, |c| c.expr == original);
                    let nanos = t0.elapsed().as_nanos();
                    pex_obs::histogram!("site.args.ns", nanos as u64);
                    out.push(ArgOutcome {
                        project: pi,
                        kind,
                        rank: res.rank,
                        is_local,
                        truncated: res.is_degraded(),
                        nanos,
                    });
                }
            },
        ));
    }
    out
}

/// Figure 13: rank CDF for guessable arguments, with and without the
/// low-hanging fruit of bare local variables.
pub fn render_fig13(outcomes: &[ArgOutcome]) -> String {
    let guessable: Vec<&ArgOutcome> = outcomes
        .iter()
        .filter(|o| o.kind != ExprKindName::NotGuessable)
        .collect();
    let normal: RankStats = guessable.iter().map(|o| (o.rank, o.truncated)).collect();
    let no_vars: RankStats = guessable
        .iter()
        .filter(|o| !o.is_local)
        .map(|o| (o.rank, o.truncated))
        .collect();
    let thresholds = [1usize, 2, 3, 5, 10, 20];
    let mut table = TextTable::new(vec!["rank <=", "all guessable", "no variables", "(bar)"]);
    for &k in &thresholds {
        table.row(vec![
            k.to_string(),
            pct(normal.top(k)),
            pct(no_vars.top(k)),
            bar(normal.top(k), 30),
        ]);
    }
    format!(
        "Figure 13. Proportion of method arguments guessed with a given rank\n\
         (n = {} guessable arguments, {} excluding locals; {} truncated excluded)\n\n{}",
        normal.len(),
        no_vars.len(),
        normal.truncated(),
        table.render()
    )
}

/// Figure 14: distribution of argument expression forms.
pub fn render_fig14(outcomes: &[ArgOutcome]) -> String {
    let n = outcomes.len().max(1);
    let mut table = TextTable::new(vec!["argument form", "count", "share", "(bar)"]);
    for kind in ExprKindName::ALL {
        let count = outcomes.iter().filter(|o| o.kind == kind).count();
        table.row(vec![
            kind.label().to_string(),
            count.to_string(),
            pct(count as f64 / n as f64),
            bar(count as f64 / n as f64, 30),
        ]);
    }
    format!(
        "Figure 14. Distribution of argument expression forms (n = {} arguments)\n\n{}",
        outcomes.len(),
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::load_projects;

    #[test]
    fn argument_prediction_runs() {
        let projects = load_projects(0.002);
        let cfg = ExperimentConfig {
            limit: 50,
            max_sites: Some(5),
            ..Default::default()
        };
        let outcomes = run(&projects, &cfg);
        assert!(!outcomes.is_empty());
        // Guessable local arguments should usually be recovered.
        let locals: Vec<&ArgOutcome> = outcomes.iter().filter(|o| o.is_local).collect();
        if !locals.is_empty() {
            let found = locals.iter().filter(|o| o.rank.is_some()).count();
            assert!(found * 3 >= locals.len() * 2, "{found}/{}", locals.len());
        }
        assert!(render_fig13(&outcomes).contains("no variables"));
        let fig14 = render_fig14(&outcomes);
        assert!(fig14.contains("local variable"));
        assert!(fig14.contains("not guessable"));
    }
}
