//! Experiment 5.3 — predicting field lookups in assignments and
//! comparisons (Figures 15 and 16, and the Section 5.3 speed claim).
//!
//! Final field lookups are removed from one or both sides; `.?m` (for
//! assignments) or `.?m.?m` (for comparisons) is appended to **both** sides
//! and the engine must regenerate the original expression.

use std::time::Instant;

use pex_core::{PartialExpr, SuffixKind};
use pex_model::Expr;

use crate::extract::{strip_lookups, trailing_lookups};
use crate::harness::{completer, map_sites, sample, ExperimentConfig, Project};
use crate::stats::{pct, RankStats, TextTable};

/// Which side(s) of an assignment lost a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignCase {
    /// Lookup removed from the target (left) side.
    Target,
    /// Lookup removed from the source (right) side.
    Source,
    /// Lookup removed from both sides.
    Both,
}

/// Which side(s) of a comparison lost lookups, and how many.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpCase {
    /// One lookup removed from the left side.
    Left,
    /// One lookup removed from the right side.
    Right,
    /// One lookup removed from each side.
    Both,
    /// Two lookups removed from the left side.
    TwoLeft,
    /// Two lookups removed from the right side.
    TwoRight,
}

impl CmpCase {
    /// Row label matching the paper's Table 2.
    pub fn label(self) -> &'static str {
        match self {
            CmpCase::Left => "Left",
            CmpCase::Right => "Right",
            CmpCase::Both => "Both",
            CmpCase::TwoLeft => "2xLeft",
            CmpCase::TwoRight => "2xRight",
        }
    }
}

/// Outcome of one lookup-removal query.
#[derive(Debug, Clone)]
pub struct AssignOutcome {
    /// Index into the project list.
    pub project: usize,
    /// Which side(s) were stripped.
    pub case: AssignCase,
    /// Rank of the original assignment, if found within the limit.
    pub rank: Option<usize>,
    /// Whether the query was cut short (step budget, deadline, or
    /// cancellation) before deciding.
    pub truncated: bool,
    /// Wall-clock nanoseconds for the query.
    pub nanos: u128,
}

/// Outcome of one comparison lookup-removal query.
#[derive(Debug, Clone)]
pub struct CmpOutcome {
    /// Index into the project list.
    pub project: usize,
    /// Which side(s) were stripped, and how deep.
    pub case: CmpCase,
    /// Rank of the original comparison, if found within the limit.
    pub rank: Option<usize>,
    /// Whether the query was cut short (step budget, deadline, or
    /// cancellation) before deciding.
    pub truncated: bool,
    /// Wall-clock nanoseconds for the query.
    pub nanos: u128,
}

fn m_suffix(base: Expr, layers: usize) -> PartialExpr {
    let mut pe = PartialExpr::Known(base);
    for _ in 0..layers {
        pe = PartialExpr::suffix(pe, SuffixKind::Method);
    }
    pe
}

/// Runs both halves of the experiment. Sites replay in parallel (see
/// [`map_sites`]); the outcome order is independent of the thread count.
pub fn run(projects: &[Project], cfg: &ExperimentConfig) -> (Vec<AssignOutcome>, Vec<CmpOutcome>) {
    let _span = pex_obs::span("phase.lookups");
    let mut assigns = Vec::new();
    let mut cmps = Vec::new();
    for (pi, project) in projects.iter().enumerate() {
        let asites = sample(&project.extracted.assigns, cfg.max_sites);
        assigns.extend(map_sites(
            &project.db,
            cfg.use_abs.then_some(&project.abs_cache),
            &asites,
            |s| (s.enclosing, s.stmt),
            cfg.threads,
            Some(&cfg.cancel),
            |site, ctx, abs, assigns| {
                let db = &project.db;
                let Expr::Assign(lhs, rhs) = &site.expr else {
                    return;
                };
                let l = trailing_lookups(db, lhs, 1);
                let r = trailing_lookups(db, rhs, 1);
                let mut cases = Vec::new();
                if l >= 1 {
                    cases.push((AssignCase::Target, 1usize, 0usize));
                }
                if r >= 1 {
                    cases.push((AssignCase::Source, 0, 1));
                }
                if l >= 1 && r >= 1 {
                    cases.push((AssignCase::Both, 1, 1));
                }
                for (case, sl, sr) in cases {
                    let (Some(lb), Some(rb)) =
                        (strip_lookups(db, lhs, sl), strip_lookups(db, rhs, sr))
                    else {
                        continue;
                    };
                    // `.?m` appended to both sides (paper Section 5.3).
                    let query = PartialExpr::assign(m_suffix(lb, 1), m_suffix(rb, 1));
                    let comp = completer(project, ctx, abs, cfg, None);
                    let t0 = Instant::now();
                    let res = comp.rank_of(&query, cfg.limit, |c| c.expr == site.expr);
                    let nanos = t0.elapsed().as_nanos();
                    pex_obs::histogram!("site.lookups.ns", nanos as u64);
                    assigns.push(AssignOutcome {
                        project: pi,
                        case,
                        rank: res.rank,
                        truncated: res.is_degraded(),
                        nanos,
                    });
                }
            },
        ));

        let csites = sample(&project.extracted.cmps, cfg.max_sites);
        cmps.extend(map_sites(
            &project.db,
            cfg.use_abs.then_some(&project.abs_cache),
            &csites,
            |s| (s.enclosing, s.stmt),
            cfg.threads,
            Some(&cfg.cancel),
            |site, ctx, abs, cmps| {
                let db = &project.db;
                let Expr::Cmp(op, lhs, rhs) = &site.expr else {
                    return;
                };
                let l = trailing_lookups(db, lhs, 2);
                let r = trailing_lookups(db, rhs, 2);
                let mut cases = Vec::new();
                if l >= 1 {
                    cases.push((CmpCase::Left, 1usize, 0usize));
                }
                if r >= 1 {
                    cases.push((CmpCase::Right, 0, 1));
                }
                if l >= 1 && r >= 1 {
                    cases.push((CmpCase::Both, 1, 1));
                }
                if l >= 2 {
                    cases.push((CmpCase::TwoLeft, 2, 0));
                }
                if r >= 2 {
                    cases.push((CmpCase::TwoRight, 0, 2));
                }
                for (case, sl, sr) in cases {
                    let (Some(lb), Some(rb)) =
                        (strip_lookups(db, lhs, sl), strip_lookups(db, rhs, sr))
                    else {
                        continue;
                    };
                    // `.?m.?m` appended to both sides (paper Section 5.3).
                    let query = PartialExpr::cmp(*op, m_suffix(lb, 2), m_suffix(rb, 2));
                    let comp = completer(project, ctx, abs, cfg, None);
                    let t0 = Instant::now();
                    let res = comp.rank_of(&query, cfg.limit, |c| c.expr == site.expr);
                    let nanos = t0.elapsed().as_nanos();
                    pex_obs::histogram!("site.lookups.ns", nanos as u64);
                    cmps.push(CmpOutcome {
                        project: pi,
                        case,
                        rank: res.rank,
                        truncated: res.is_degraded(),
                        nanos,
                    });
                }
            },
        ));
    }
    (assigns, cmps)
}

fn cdf_table<C: Copy + PartialEq>(cases: &[(C, &str)], get: impl Fn(C) -> RankStats) -> TextTable {
    let thresholds = [1usize, 5, 10, 20];
    let mut headers = vec!["case".to_string(), "n".to_string()];
    headers.extend(thresholds.iter().map(|k| format!("top {k}")));
    headers.push("truncated".to_string());
    let mut table = TextTable::new(headers);
    for &(case, label) in cases {
        let stats = get(case);
        let mut row = vec![label.to_string(), stats.len().to_string()];
        row.extend(thresholds.iter().map(|&k| pct(stats.top(k))));
        row.push(stats.truncated().to_string());
        table.row(row);
    }
    table
}

/// Figure 15: assignments with lookups removed.
pub fn render_fig15(outcomes: &[AssignOutcome]) -> String {
    let table = cdf_table(
        &[
            (AssignCase::Target, "Target"),
            (AssignCase::Source, "Source"),
            (AssignCase::Both, "Both"),
        ],
        |case| {
            outcomes
                .iter()
                .filter(|o| o.case == case)
                .map(|o| (o.rank, o.truncated))
                .collect()
        },
    );
    format!(
        "Figure 15. Assignments: rank of the original after removing final lookups\n\n{}",
        table.render()
    )
}

/// Figure 16: comparisons with lookups removed.
pub fn render_fig16(outcomes: &[CmpOutcome]) -> String {
    let table = cdf_table(
        &[
            (CmpCase::Left, "Left"),
            (CmpCase::Right, "Right"),
            (CmpCase::Both, "Both"),
            (CmpCase::TwoLeft, "2xLeft"),
            (CmpCase::TwoRight, "2xRight"),
        ],
        |case| {
            outcomes
                .iter()
                .filter(|o| o.case == case)
                .map(|o| (o.rank, o.truncated))
                .collect()
        },
    );
    format!(
        "Figure 16. Comparisons: rank of the original after removing final lookups\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::load_projects;

    #[test]
    fn lookup_experiments_run() {
        let projects = load_projects(0.003);
        let cfg = ExperimentConfig {
            limit: 50,
            max_sites: Some(8),
            ..Default::default()
        };
        let (assigns, cmps) = run(&projects, &cfg);
        assert!(!assigns.is_empty(), "expected assignment sites");
        // Assignments in the corpus always target a field, so Target cases
        // must exist and often succeed.
        let target: Vec<&AssignOutcome> = assigns
            .iter()
            .filter(|o| o.case == AssignCase::Target)
            .collect();
        assert!(!target.is_empty());
        let found = target.iter().filter(|o| o.rank.is_some()).count();
        assert!(found > 0, "at least some targets re-found");
        assert!(render_fig15(&assigns).contains("Target"));
        assert!(render_fig16(&cmps).contains("2xRight"));
    }
}
