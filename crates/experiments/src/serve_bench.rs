//! `serve-bench` — an in-process load generator for the `pex-serve`
//! worker pool.
//!
//! Spins up a real [`pex_serve::Server`] over a prewarmed snapshot, then
//! drives it from `--clients` concurrent closed-loop clients, optionally
//! paced to a total `--qps` target. Each client submits through the same
//! [`pex_serve::ServerClient`] admission path the daemon's transports use,
//! so shedding, queue-depth gauges, and per-request latency histograms are
//! all exercised exactly as in production.
//!
//! Two load shapes:
//!
//! * **Closed loop** (default): each client waits for its response before
//!   sending the next request, optionally paced to `--qps`.
//! * **Open loop** (`--open-loop`, requires `--qps`): each client sends on
//!   schedule regardless of responses — the arrival process does not slow
//!   down when the server does, so overload shows up as shed + queueing
//!   latency instead of a silently reduced send rate.
//!
//! With `--tenants N` the load fans across N tenants of a multi-tenant
//! registry (tenant 0 is the default tenant and sends no `project` field,
//! exercising the byte-compatible single-tenant path). Outcomes are
//! tallied per tenant, and the accounting identity
//! `sent == ok + degraded + shed + errors` must hold for each tenant and
//! in aggregate — the server answers every admitted line.
//!
//! With `--edit-rate N` every N-th request per client is an incremental
//! `update` command instead of a query, exercising the edit path under
//! concurrent query load. Edits keep their own ledger — per tenant,
//! `edits_sent == edits_applied + edits_rejected` (the server answers
//! every submitted update; a shed edit counts as rejected) — and the
//! reported query percentiles are measured under that edit load.
//!
//! The report gives throughput and nearest-rank latency percentiles
//! (p50/p90/p99, via [`stats::percentile`]) and is also merged into
//! `BENCH_results.json` as a `"serve"` section next to the criterion-style
//! `speedups` benchmarks (open-loop multi-tenant runs land under
//! `serve.multi_tenant`, preserving the closed-loop leg beside them).

use std::path::Path;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pex_serve::json::{self, Value};
use pex_serve::proto::RequestDefaults;
use pex_serve::{ServeConfig, Server, Snapshot, SnapshotRegistry, SnapshotSource};

use crate::stats;

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Concurrent closed-loop client threads.
    pub clients: usize,
    /// Total target request rate across all clients; 0 means unpaced
    /// (each client sends as fast as responses come back).
    pub qps: f64,
    /// How long to generate load.
    pub duration: Duration,
    /// Server worker threads.
    pub workers: usize,
    /// Server admission queue capacity.
    pub queue_cap: usize,
    /// Completions requested per query.
    pub limit: usize,
    /// Per-request deadline forwarded to the engine's query budget.
    pub deadline_ms: Option<u64>,
    /// Scrape `{"cmd":"stats"}` mid-load and cross-check the daemon's
    /// rolling-window percentiles against the client-side measurements.
    pub live_stats: bool,
    /// Tenants the load fans across (1 = the default tenant only; tenant
    /// `i > 0` is registered as `t{i}` in the registry and targeted via
    /// the protocol `project` field).
    pub tenants: usize,
    /// Open-loop arrivals: send on the `qps` schedule regardless of
    /// responses. Requires `qps > 0`.
    pub open_loop: bool,
    /// Mix incremental `update` commands into the schedule: every N-th
    /// request per client becomes an edit (0 = queries only). Edit
    /// payloads cycle through two alternating `DocumentUtils` body
    /// variants (always a genuine re-resolution) and one garbled unit
    /// (always a `parse_error`), so both the applied and the rejected
    /// paths stay hot under concurrent query load.
    pub edit_rate: usize,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        ServeBenchConfig {
            clients: 4,
            qps: 0.0,
            duration: Duration::from_secs(3),
            workers,
            queue_cap: workers * 16,
            limit: 5,
            deadline_ms: None,
            live_stats: false,
            tenants: 1,
            open_loop: false,
            edit_rate: 0,
        }
    }
}

/// Per-tenant outcome accounting; the identity
/// `sent == ok + degraded + shed + errors` holds for every entry.
#[derive(Debug, Clone, Default)]
pub struct TenantOutcome {
    /// Tenant label: `default`, or `t1`, `t2`, ….
    pub name: String,
    /// Query requests submitted against this tenant (edits are ledgered
    /// separately in the `edits_*` fields).
    pub sent: usize,
    /// Non-degraded successful responses.
    pub ok: usize,
    /// Successful but budget/deadline-cut responses.
    pub degraded: usize,
    /// Requests refused by admission control.
    pub shed: usize,
    /// Any other error response.
    pub errors: usize,
    /// `update` commands submitted against this tenant. Edits are
    /// accounted separately from queries; the identity
    /// `edits_sent == edits_applied + edits_rejected` holds per tenant
    /// (a shed edit counts as rejected — admission control refused it).
    pub edits_sent: usize,
    /// Edits the server applied (`ok:true`, no-ops included).
    pub edits_applied: usize,
    /// Edits refused: parse errors, update failures, or shed.
    pub edits_rejected: usize,
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Query requests submitted. Every one receives exactly one
    /// response — answered or shed — before the report is assembled, in
    /// both loop modes, so `sent == ok + degraded + shed + errors`; the
    /// `update` commands an `edit_rate` mixes in close their own books
    /// under `edits_sent == edits_applied + edits_rejected`.
    pub sent: usize,
    /// `ok:true` responses with a non-degraded outcome.
    pub ok: usize,
    /// `ok:true` responses cut short by a deadline/step budget.
    pub degraded: usize,
    /// Requests refused by admission control.
    pub shed: usize,
    /// Any other error response.
    pub errors: usize,
    /// Wall-clock duration of the generation phase.
    pub elapsed: Duration,
    /// Completed-request throughput over `elapsed`, in requests/second.
    pub throughput: f64,
    /// Submit-to-response latencies of **query** requests, microseconds,
    /// unsorted — the reported percentiles are query latency under
    /// whatever edit load `edit_rate` mixed in.
    pub latencies_us: Vec<u128>,
    /// Submit-to-response latencies of `update` commands, microseconds.
    pub edit_latencies_us: Vec<u128>,
    /// `update` commands submitted (see [`TenantOutcome::edits_sent`]).
    pub edits_sent: usize,
    /// Edits applied (`ok:true`, no-ops included).
    pub edits_applied: usize,
    /// Edits refused (parse error, update failure, or shed).
    pub edits_rejected: usize,
    /// The mid-load `stats` scrape, when `live_stats` was requested and
    /// the scrape landed before the load phase ended.
    pub live: Option<LiveStatsProbe>,
    /// Per-tenant outcome accounting (default tenant first); sums match
    /// the aggregate fields above.
    pub per_tenant: Vec<TenantOutcome>,
    /// The config the run used (echoed into the JSON section).
    pub config: ServeBenchConfig,
}

/// What a mid-load `{"cmd":"stats"}` scrape saw: the daemon's own view of
/// the load the clients are generating, read through the same admission
/// path as any other request.
#[derive(Debug, Clone)]
pub struct LiveStatsProbe {
    /// When the scrape ran, seconds after load start.
    pub at_s: f64,
    /// Queue depth the daemon reported at scrape time.
    pub queue_depth: u64,
    /// Sample count in the daemon's 10s request-latency window.
    pub window_count: u64,
    /// Daemon-side interpolated window percentiles, microseconds.
    pub p50_us: u64,
    /// See [`LiveStatsProbe::p50_us`].
    pub p90_us: u64,
    /// See [`LiveStatsProbe::p50_us`].
    pub p99_us: u64,
}

/// The fixed query mix, all valid against the mini Paint.NET snapshot:
/// the paper's method-name query, a field lookup, and a bare hole.
const QUERIES: [&str; 3] = ["?({img, size})", "img.?f", "?"];

/// The edit mix `--edit-rate` cycles through: two `DocumentUtils` units
/// differing only in `Normalize`'s body (alternating keeps the edits
/// mostly genuine re-resolutions; a repeat landing on the same tenant
/// from another client is a no-op, which the server still applies), then
/// one garbled unit that must come back as a `parse_error` — the
/// rejected path stays hot and the books must still close.
const EDIT_UNITS: [&str; 3] = [
    "namespace PaintDotNet.Client { class DocumentUtils { \
     static PaintDotNet.Document Normalize(PaintDotNet.Document d) { return d; } \
     static System.Drawing.Size Clamp(System.Drawing.Size s) { return s; } } }",
    "namespace PaintDotNet.Client { class DocumentUtils { \
     static PaintDotNet.Document Normalize(PaintDotNet.Document d) \
     { return PaintDotNet.Client.DocumentUtils.Normalize(d); } \
     static System.Drawing.Size Clamp(System.Drawing.Size s) { return s; } } }",
    "namespace PaintDotNet.Client { class Broken {",
];

/// Runs the load generator against a fresh in-process server over the
/// builtin Paint.NET snapshot. With `tenants > 1`, tenants `t1`… share
/// the same snapshot `Arc` — tenant *routing*, per-tenant accounting, and
/// the registry map are exercised without paying N corpus builds.
pub fn run(cfg: &ServeBenchConfig) -> ServeBenchReport {
    assert!(
        !cfg.open_loop || cfg.qps > 0.0,
        "open-loop mode needs a qps schedule to send on"
    );
    let tenant_count = cfg.tenants.max(1);
    let snapshot = Snapshot::load(&SnapshotSource::Paint).expect("builtin snapshot loads");
    let registry = Arc::new(SnapshotRegistry::single(Arc::clone(&snapshot)));
    for i in 1..tenant_count {
        registry
            .insert(&format!("t{i}"), Arc::clone(&snapshot))
            .expect("bench tenant ids are valid");
    }
    let server = Server::start(
        registry,
        ServeConfig {
            workers: cfg.workers,
            queue_cap: cfg.queue_cap,
            defaults: RequestDefaults {
                limit: cfg.limit,
                deadline_ms: cfg.deadline_ms,
                ..RequestDefaults::default()
            },
            ..ServeConfig::default()
        },
    );

    // Per-client pacing: a client sends its k-th request no earlier than
    // `start + k * clients/qps`, spreading the aggregate target across
    // the fleet. Unpaced clients just go back-to-back.
    let per_client_interval = if cfg.qps > 0.0 {
        Some(Duration::from_secs_f64(cfg.clients as f64 / cfg.qps))
    } else {
        None
    };

    let start = Instant::now();

    // The live-stats probe is one more client of the same admission path:
    // half-way through the load phase it asks the daemon for its rolling
    // windows, while the closed-loop clients keep hammering it.
    let probe_thread = cfg.live_stats.then(|| {
        let client = server.client();
        let at = cfg.duration / 2;
        std::thread::spawn(move || -> Option<LiveStatsProbe> {
            std::thread::sleep(at);
            let (tx, rx) = channel::<String>();
            client.submit(r#"{"id":"live-stats","cmd":"stats"}"#.to_owned(), &tx);
            let resp = rx.recv().ok()?;
            let doc = json::parse(&resp).ok()?;
            let stats = doc.get("stats")?;
            let w = stats.get("windows")?.get("10s")?;
            let field = |key: &str| w.get(key).and_then(Value::as_u64);
            Some(LiveStatsProbe {
                at_s: at.as_secs_f64(),
                queue_depth: stats.get("queue_depth").and_then(Value::as_u64)?,
                window_count: field("count")?,
                p50_us: field("p50_us")?,
                p90_us: field("p90_us")?,
                p99_us: field("p99_us")?,
            })
        })
    });

    let open_loop = cfg.open_loop;
    let edit_rate = cfg.edit_rate;
    let client_threads: Vec<_> = (0..cfg.clients.max(1))
        .map(|client_id| {
            let client = server.client();
            let duration = cfg.duration;
            std::thread::spawn(move || {
                let (tx, rx) = channel::<String>();
                let mut tally = ClientTally::new(tenant_count);
                // Every edit_rate-th request per client is an update; the
                // n-th edit a client sends cycles through EDIT_UNITS.
                let is_edit = |k: usize| edit_rate > 0 && (k + 1).is_multiple_of(edit_rate);
                let mut edits_sent = 0usize;
                if open_loop {
                    // Open loop: send on schedule no matter what comes
                    // back; responses are matched to their send times by
                    // the echoed "t{tenant}-{k}" id.
                    let interval = per_client_interval.expect("open loop is paced");
                    let mut sent_at: Vec<Instant> = Vec::new();
                    let mut sent_tenant: Vec<usize> = Vec::new();
                    let mut sent_is_edit: Vec<bool> = Vec::new();
                    let mut received = 0usize;
                    let mut k = 0u32;
                    while start.elapsed() < duration {
                        // Wait out the schedule gap on the response
                        // channel, not asleep: responses are booked the
                        // moment they arrive, so recorded latency is the
                        // server's, never the client's own pacing.
                        let scheduled = interval * k;
                        loop {
                            let now = start.elapsed();
                            if now >= scheduled {
                                break;
                            }
                            match rx.recv_timeout(scheduled - now) {
                                Ok(resp) => {
                                    tally.record_by_id(
                                        &resp,
                                        &sent_at,
                                        &sent_tenant,
                                        &sent_is_edit,
                                    );
                                    received += 1;
                                }
                                Err(_) => break,
                            }
                        }
                        let tenant = (client_id + k as usize) % tenant_count;
                        let id = format!("\"t{tenant}-{k}\"");
                        let line = if is_edit(k as usize) {
                            let n = edits_sent;
                            edits_sent += 1;
                            edit_line(tenant, &id, n)
                        } else {
                            let query = QUERIES[(client_id + k as usize) % QUERIES.len()];
                            request_line(tenant, &id, query)
                        };
                        sent_at.push(Instant::now());
                        sent_tenant.push(tenant);
                        sent_is_edit.push(is_edit(k as usize));
                        client.submit(line, &tx);
                        k += 1;
                        while let Ok(resp) = rx.try_recv() {
                            tally.record_by_id(&resp, &sent_at, &sent_tenant, &sent_is_edit);
                            received += 1;
                        }
                    }
                    // Every submitted line gets exactly one response —
                    // answered or shed — so drain until the books close.
                    while received < sent_at.len() {
                        let resp = rx
                            .recv_timeout(Duration::from_secs(30))
                            .expect("server answers every admitted line");
                        tally.record_by_id(&resp, &sent_at, &sent_tenant, &sent_is_edit);
                        received += 1;
                    }
                } else {
                    let mut k = 0u32;
                    while start.elapsed() < duration {
                        if let Some(interval) = per_client_interval {
                            let scheduled = interval * k;
                            let now = start.elapsed();
                            if scheduled > now {
                                std::thread::sleep(scheduled - now);
                            }
                        }
                        let tenant = (client_id + k as usize) % tenant_count;
                        let sent_at = Instant::now();
                        if is_edit(k as usize) {
                            let n = edits_sent;
                            edits_sent += 1;
                            client.submit(edit_line(tenant, &k.to_string(), n), &tx);
                            // Closed loop: the next request waits for this answer.
                            let Ok(resp) = rx.recv() else { break };
                            tally.record_edit(tenant, &resp, sent_at.elapsed());
                        } else {
                            let query = QUERIES[(client_id + k as usize) % QUERIES.len()];
                            client.submit(request_line(tenant, &k.to_string(), query), &tx);
                            let Ok(resp) = rx.recv() else { break };
                            tally.record(tenant, &resp, sent_at.elapsed());
                        }
                        k += 1;
                    }
                }
                tally
            })
        })
        .collect();

    let mut report = ServeBenchReport {
        sent: 0,
        ok: 0,
        degraded: 0,
        shed: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        throughput: 0.0,
        latencies_us: Vec::new(),
        edit_latencies_us: Vec::new(),
        edits_sent: 0,
        edits_applied: 0,
        edits_rejected: 0,
        live: None,
        per_tenant: (0..tenant_count)
            .map(|i| TenantOutcome {
                name: tenant_name(i),
                ..TenantOutcome::default()
            })
            .collect(),
        config: cfg.clone(),
    };
    for t in client_threads {
        let tally = t.join().expect("client thread");
        report.sent += tally.sent;
        report.ok += tally.ok;
        report.degraded += tally.degraded;
        report.shed += tally.shed;
        report.errors += tally.errors;
        report.latencies_us.extend(tally.latencies_us);
        report.edit_latencies_us.extend(tally.edit_latencies_us);
        for (agg, got) in report.per_tenant.iter_mut().zip(tally.per_tenant) {
            agg.sent += got.sent;
            agg.ok += got.ok;
            agg.degraded += got.degraded;
            agg.shed += got.shed;
            agg.errors += got.errors;
            agg.edits_sent += got.edits_sent;
            agg.edits_applied += got.edits_applied;
            agg.edits_rejected += got.edits_rejected;
        }
    }
    for t in &report.per_tenant {
        // The edit ledger closes per tenant: the server answered every
        // submitted update as applied or rejected, dropping none.
        assert_eq!(
            t.edits_sent,
            t.edits_applied + t.edits_rejected,
            "tenant {} edit books do not close",
            t.name
        );
        report.edits_sent += t.edits_sent;
        report.edits_applied += t.edits_applied;
        report.edits_rejected += t.edits_rejected;
    }
    report.elapsed = start.elapsed();
    report.throughput = report.sent as f64 / report.elapsed.as_secs_f64().max(1e-9);
    report.live = probe_thread.and_then(|t| t.join().expect("stats probe thread"));
    server.shutdown();

    // Cross-check: the daemon's window percentiles and the clients' own
    // stopwatches measure the same latencies through different pipelines
    // (log2 buckets + interpolation server-side vs exact timestamps
    // client-side, first-half samples vs the whole run). Bucket geometry
    // bounds the disagreement by 2x; anything beyond that means the
    // windows are recording the wrong thing.
    // p99 is reported but not asserted: the tail is a handful of samples
    // (often engine warmup) that can land entirely in the scraped half or
    // entirely outside it, so its ratio is not schedule-stable.
    if let Some(live) = &report.live {
        for (p, daemon_us) in [(50.0, live.p50_us), (90.0, live.p90_us)] {
            let client_us = report.percentile_us(p) as f64;
            let daemon_us = daemon_us as f64;
            if live.window_count > 0 && client_us > 0.0 && daemon_us > 0.0 {
                let ratio = (daemon_us / client_us).max(client_us / daemon_us);
                assert!(
                    ratio <= 2.0,
                    "p{p} disagrees: daemon window {daemon_us}us vs client {client_us}us"
                );
            }
        }
    }
    report
}

/// Tenant label used in the registry, the `project` field, and reports.
fn tenant_name(tenant: usize) -> String {
    if tenant == 0 {
        "default".into()
    } else {
        format!("t{tenant}")
    }
}

/// One protocol line. Tenant 0 omits the `project` field entirely so the
/// bench keeps exercising the byte-compatible single-tenant path; `id` is
/// already JSON-rendered (bare number or quoted string).
fn request_line(tenant: usize, id: &str, query: &str) -> String {
    let project = if tenant == 0 {
        String::new()
    } else {
        format!("\"project\":\"t{tenant}\",")
    };
    format!(
        "{{\"id\":{id},{project}\"query\":\"{}\"}}",
        json::escape(query)
    )
}

/// One `update` protocol line; same tenant-targeting rules as
/// [`request_line`]. The `n`-th edit a client sends cycles through
/// [`EDIT_UNITS`].
fn edit_line(tenant: usize, id: &str, n: usize) -> String {
    let project = if tenant == 0 {
        String::new()
    } else {
        format!("\"project\":\"t{tenant}\",")
    };
    format!(
        "{{\"id\":{id},{project}\"cmd\":\"update\",\"source\":\"{}\"}}",
        json::escape(EDIT_UNITS[n % EDIT_UNITS.len()])
    )
}

struct ClientTally {
    sent: usize,
    ok: usize,
    degraded: usize,
    shed: usize,
    errors: usize,
    latencies_us: Vec<u128>,
    edit_latencies_us: Vec<u128>,
    per_tenant: Vec<TenantOutcome>,
}

impl ClientTally {
    fn new(tenants: usize) -> Self {
        ClientTally {
            sent: 0,
            ok: 0,
            degraded: 0,
            shed: 0,
            errors: 0,
            latencies_us: Vec::new(),
            edit_latencies_us: Vec::new(),
            per_tenant: (0..tenants)
                .map(|i| TenantOutcome {
                    name: tenant_name(i),
                    ..TenantOutcome::default()
                })
                .collect(),
        }
    }

    /// Books one `update` response. Edits live in their own ledger: the
    /// per-tenant identity is `edits_sent == edits_applied +
    /// edits_rejected`, with a shed edit counted as rejected.
    fn record_edit(&mut self, tenant: usize, resp: &str, latency: Duration) {
        self.edit_latencies_us.push(latency.as_micros());
        let slot = &mut self.per_tenant[tenant];
        slot.edits_sent += 1;
        let applied = json::parse(resp).is_ok_and(|doc| doc.get("ok") == Some(&Value::Bool(true)));
        if applied {
            slot.edits_applied += 1;
        } else {
            slot.edits_rejected += 1;
        }
    }

    fn record(&mut self, tenant: usize, resp: &str, latency: Duration) {
        self.sent += 1;
        self.latencies_us.push(latency.as_micros());
        let slot = &mut self.per_tenant[tenant];
        slot.sent += 1;
        let Ok(doc) = json::parse(resp) else {
            self.errors += 1;
            slot.errors += 1;
            return;
        };
        if doc.get("ok") == Some(&Value::Bool(true)) {
            if doc.get("degraded") == Some(&Value::Bool(true)) {
                self.degraded += 1;
                slot.degraded += 1;
            } else {
                self.ok += 1;
                slot.ok += 1;
            }
        } else if doc.get("error").and_then(Value::as_str) == Some("shed") {
            self.shed += 1;
            slot.shed += 1;
        } else {
            self.errors += 1;
            slot.errors += 1;
        }
    }

    /// Open-loop bookkeeping: the response's echoed `"t{tenant}-{k}"` id
    /// locates the send time, tenant, and kind of the request it answers.
    fn record_by_id(
        &mut self,
        resp: &str,
        sent_at: &[Instant],
        sent_tenant: &[usize],
        sent_is_edit: &[bool],
    ) {
        let k = json::parse(resp)
            .ok()
            .and_then(|doc| {
                doc.get("id")
                    .and_then(Value::as_str)
                    .and_then(|id| id.rsplit('-').next().map(str::to_owned))
            })
            .and_then(|k| k.parse::<usize>().ok())
            .expect("server echoes the request id verbatim");
        if sent_is_edit[k] {
            self.record_edit(sent_tenant[k], resp, sent_at[k].elapsed());
        } else {
            self.record(sent_tenant[k], resp, sent_at[k].elapsed());
        }
    }
}

impl ServeBenchReport {
    /// Latency at percentile `p`, in microseconds.
    pub fn percentile_us(&self, p: f64) -> u128 {
        stats::percentile(&self.latencies_us, p)
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let c = &self.config;
        let mut out = String::from("serve-bench: paint snapshot, in-process worker pool\n");
        out.push_str(&format!(
            "config: {} clients ({} loop), target {} qps, {:.1}s, {} workers, queue {}, {} tenant(s)\n",
            c.clients,
            if c.open_loop { "open" } else { "closed" },
            if c.qps > 0.0 {
                format!("{:.0}", c.qps)
            } else {
                "unpaced".into()
            },
            c.duration.as_secs_f64(),
            c.workers,
            c.queue_cap,
            c.tenants.max(1),
        ));
        out.push_str(&format!(
            "outcomes: sent {}  ok {}  degraded {}  shed {}  errors {}\n",
            self.sent, self.ok, self.degraded, self.shed, self.errors
        ));
        if self.edits_sent > 0 {
            out.push_str(&format!(
                "edits: sent {}  applied {}  rejected {}  (p50 {}us  p99 {}us)\n",
                self.edits_sent,
                self.edits_applied,
                self.edits_rejected,
                stats::percentile(&self.edit_latencies_us, 50.0),
                stats::percentile(&self.edit_latencies_us, 99.0),
            ));
        }
        if self.per_tenant.len() > 1 {
            for t in &self.per_tenant {
                out.push_str(&format!(
                    "  tenant {}: sent {}  ok {}  degraded {}  shed {}  errors {}",
                    t.name, t.sent, t.ok, t.degraded, t.shed, t.errors
                ));
                if self.edits_sent > 0 {
                    out.push_str(&format!(
                        "  edits {}/{}+{}",
                        t.edits_sent, t.edits_applied, t.edits_rejected
                    ));
                }
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "throughput: {:.1} req/s over {:.2}s\n",
            self.throughput,
            self.elapsed.as_secs_f64()
        ));
        out.push_str(&format!(
            "latency: p50 {}us  p90 {}us  p99 {}us  max {}us\n",
            self.percentile_us(50.0),
            self.percentile_us(90.0),
            self.percentile_us(99.0),
            self.latencies_us.iter().max().copied().unwrap_or(0),
        ));
        if let Some(live) = &self.live {
            out.push_str(&format!(
                "live-stats (scraped at {:.1}s): queue_depth {}, 10s window count {}\n",
                live.at_s, live.queue_depth, live.window_count
            ));
            for (p, daemon_us) in [
                (50.0, live.p50_us),
                (90.0, live.p90_us),
                (99.0, live.p99_us),
            ] {
                let client_us = self.percentile_us(p);
                let ratio = if client_us > 0 && daemon_us > 0 {
                    (daemon_us as f64 / client_us as f64).max(client_us as f64 / daemon_us as f64)
                } else {
                    1.0
                };
                out.push_str(&format!(
                    "  p{p:.0}: daemon window {daemon_us}us vs client {client_us}us (x{ratio:.2})\n"
                ));
            }
        }
        out
    }

    /// The `"serve"` section for `BENCH_results.json`.
    pub fn to_json(&self) -> Value {
        let c = &self.config;
        let live = self.live.as_ref().map(|live| {
            Value::Obj(vec![
                ("scraped_at_s".into(), Value::Num(live.at_s)),
                ("queue_depth".into(), Value::Num(live.queue_depth as f64)),
                ("window_count".into(), Value::Num(live.window_count as f64)),
                (
                    "window_latency_us".into(),
                    Value::Obj(vec![
                        ("p50".into(), Value::Num(live.p50_us as f64)),
                        ("p90".into(), Value::Num(live.p90_us as f64)),
                        ("p99".into(), Value::Num(live.p99_us as f64)),
                    ]),
                ),
            ])
        });
        let per_tenant = Value::Obj(
            self.per_tenant
                .iter()
                .map(|t| {
                    (
                        t.name.clone(),
                        Value::Obj(vec![
                            ("sent".into(), Value::Num(t.sent as f64)),
                            ("ok".into(), Value::Num(t.ok as f64)),
                            ("degraded".into(), Value::Num(t.degraded as f64)),
                            ("shed".into(), Value::Num(t.shed as f64)),
                            ("errors".into(), Value::Num(t.errors as f64)),
                            ("edits_sent".into(), Value::Num(t.edits_sent as f64)),
                            ("edits_applied".into(), Value::Num(t.edits_applied as f64)),
                            ("edits_rejected".into(), Value::Num(t.edits_rejected as f64)),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Obj(vec![
            ("snapshot".into(), Value::Str("paint".into())),
            (
                "mode".into(),
                Value::Str(if c.open_loop { "open" } else { "closed" }.into()),
            ),
            ("clients".into(), Value::Num(c.clients as f64)),
            ("tenants".into(), Value::Num(c.tenants.max(1) as f64)),
            ("target_qps".into(), Value::Num(c.qps)),
            ("duration_s".into(), Value::Num(c.duration.as_secs_f64())),
            ("workers".into(), Value::Num(c.workers as f64)),
            ("queue_cap".into(), Value::Num(c.queue_cap as f64)),
            ("sent".into(), Value::Num(self.sent as f64)),
            ("ok".into(), Value::Num(self.ok as f64)),
            ("degraded".into(), Value::Num(self.degraded as f64)),
            ("shed".into(), Value::Num(self.shed as f64)),
            ("errors".into(), Value::Num(self.errors as f64)),
            ("edit_rate".into(), Value::Num(c.edit_rate as f64)),
            (
                "edits".into(),
                Value::Obj(vec![
                    ("sent".into(), Value::Num(self.edits_sent as f64)),
                    ("applied".into(), Value::Num(self.edits_applied as f64)),
                    ("rejected".into(), Value::Num(self.edits_rejected as f64)),
                    (
                        "latency_us".into(),
                        Value::Obj(vec![
                            (
                                "p50".into(),
                                Value::Num(stats::percentile(&self.edit_latencies_us, 50.0) as f64),
                            ),
                            (
                                "p99".into(),
                                Value::Num(stats::percentile(&self.edit_latencies_us, 99.0) as f64),
                            ),
                        ]),
                    ),
                ]),
            ),
            (
                "throughput_rps".into(),
                Value::Num((self.throughput * 10.0).round() / 10.0),
            ),
            (
                "latency_us".into(),
                Value::Obj(vec![
                    ("p50".into(), Value::Num(self.percentile_us(50.0) as f64)),
                    ("p90".into(), Value::Num(self.percentile_us(90.0) as f64)),
                    ("p99".into(), Value::Num(self.percentile_us(99.0) as f64)),
                    (
                        "max".into(),
                        Value::Num(self.latencies_us.iter().max().copied().unwrap_or(0) as f64),
                    ),
                ]),
            ),
            ("per_tenant".into(), per_tenant),
            ("live_stats".into(), live.unwrap_or(Value::Null)),
        ])
    }

    /// Merges this run into `BENCH_results.json` under a `"serve"` key,
    /// preserving any existing `speedups` sections; creates the file when
    /// absent. Closed-loop runs replace the `serve` section (keeping a
    /// prior open-loop leg under `serve.multi_tenant`); open-loop runs
    /// replace only `serve.multi_tenant`, keeping the closed-loop leg
    /// beside them. Returns a human-readable error (bad path, unparseable
    /// existing file) instead of panicking.
    pub fn merge_into_bench_results(&self, path: &Path) -> Result<(), String> {
        let mut doc = match std::fs::read_to_string(path) {
            Ok(text) => json::parse(&text)
                .map_err(|e| format!("existing {} is not valid JSON: {e}", path.display()))?,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Value::Obj(vec![(
                "schema".into(),
                Value::Str("pex-bench-speedups/1".into()),
            )]),
            Err(e) => return Err(format!("cannot read {}: {e}", path.display())),
        };
        if !matches!(doc, Value::Obj(_)) {
            return Err(format!("existing {} is not a JSON object", path.display()));
        }
        let serve = if self.config.open_loop {
            let mut serve = match doc.get("serve") {
                Some(existing @ Value::Obj(_)) => existing.clone(),
                _ => Value::Obj(Vec::new()),
            };
            serve.set("multi_tenant", self.to_json());
            serve
        } else {
            let mut serve = self.to_json();
            if let Some(open) = doc.get("serve").and_then(|s| s.get("multi_tenant")) {
                serve.set("multi_tenant", open.clone());
            }
            serve
        };
        doc.set("serve", serve);
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeBenchConfig {
        ServeBenchConfig {
            clients: 2,
            qps: 0.0,
            duration: Duration::from_millis(200),
            workers: 2,
            queue_cap: 8,
            limit: 3,
            deadline_ms: None,
            live_stats: false,
            tenants: 1,
            open_loop: false,
            edit_rate: 0,
        }
    }

    #[test]
    fn generates_load_and_accounts_every_request() {
        let report = run(&tiny());
        assert!(report.sent > 0, "a 200ms run must complete something");
        assert_eq!(
            report.sent,
            report.ok + report.degraded + report.shed + report.errors,
            "every request classified exactly once"
        );
        assert_eq!(report.latencies_us.len(), report.sent);
        assert!(report.errors == 0, "well-formed queries never error");
        assert!(report.throughput > 0.0);
        assert!(report.percentile_us(50.0) <= report.percentile_us(99.0));
    }

    #[test]
    fn live_stats_probe_agrees_with_client_measurements() {
        // run() itself asserts the p50/p90 cross-check whenever the probe
        // lands, so passing here means daemon windows and client
        // stopwatches agree within the bucket-geometry bound.
        let report = run(&ServeBenchConfig {
            duration: Duration::from_millis(600),
            live_stats: true,
            ..tiny()
        });
        let live = report.live.as_ref().expect("mid-load scrape landed");
        assert!(live.window_count > 0, "requests visible in the 10s window");
        assert!(live.p50_us <= live.p99_us);
        let text = report.render();
        assert!(text.contains("live-stats (scraped at"), "{text}");
        let doc = report.to_json();
        let probe = doc.get("live_stats").expect("live_stats section");
        assert!(probe.get("window_count").is_some(), "{doc}");
        assert!(
            probe
                .get("window_latency_us")
                .and_then(|l| l.get("p50"))
                .is_some(),
            "{doc}"
        );
    }

    #[test]
    fn report_renders_and_serializes() {
        let report = run(&ServeBenchConfig {
            duration: Duration::from_millis(100),
            ..tiny()
        });
        let text = report.render();
        assert!(text.contains("throughput:"), "{text}");
        assert!(text.contains("p99"), "{text}");
        let doc = report.to_json();
        assert!(doc.get("throughput_rps").is_some());
        assert!(doc.get("latency_us").and_then(|l| l.get("p50")).is_some());
    }

    #[test]
    fn multi_tenant_closed_loop_holds_the_identity_per_tenant() {
        let report = run(&ServeBenchConfig {
            tenants: 3,
            duration: Duration::from_millis(300),
            ..tiny()
        });
        assert_eq!(report.per_tenant.len(), 3);
        assert_eq!(report.per_tenant[0].name, "default");
        assert_eq!(report.per_tenant[1].name, "t1");
        let sent: usize = report.per_tenant.iter().map(|t| t.sent).sum();
        assert_eq!(sent, report.sent, "per-tenant sends sum to the aggregate");
        for t in &report.per_tenant {
            assert_eq!(
                t.sent,
                t.ok + t.degraded + t.shed + t.errors,
                "tenant {} accounts every request exactly once",
                t.name
            );
        }
        assert_eq!(report.errors, 0, "tenant routing never errors");
        let doc = report.to_json();
        assert_eq!(
            doc.get("per_tenant")
                .and_then(|p| p.get("t2"))
                .and_then(|t| t.get("sent").and_then(Value::as_u64))
                .map(|n| n as usize),
            Some(report.per_tenant[2].sent),
            "{doc}"
        );
        assert!(report.render().contains("tenant t1:"));
    }

    #[test]
    fn open_loop_accounts_every_scheduled_send() {
        let report = run(&ServeBenchConfig {
            tenants: 2,
            open_loop: true,
            qps: 200.0,
            duration: Duration::from_millis(300),
            ..tiny()
        });
        assert!(report.sent > 0, "the schedule fired");
        assert_eq!(
            report.sent,
            report.ok + report.degraded + report.shed + report.errors,
            "open loop closes the books on every send"
        );
        assert_eq!(report.latencies_us.len(), report.sent);
        for t in &report.per_tenant {
            assert_eq!(t.sent, t.ok + t.degraded + t.shed + t.errors, "{}", t.name);
        }
        let doc = report.to_json();
        assert_eq!(doc.get("mode").and_then(Value::as_str), Some("open"));
    }

    #[test]
    fn edit_rate_mixes_updates_and_closes_both_ledgers() {
        let report = run(&ServeBenchConfig {
            tenants: 2,
            open_loop: true,
            qps: 200.0,
            duration: Duration::from_millis(400),
            edit_rate: 3,
            queue_cap: 64,
            ..tiny()
        });
        assert!(report.edits_sent > 0, "the edit schedule fired");
        assert!(report.edits_applied > 0, "valid edits were applied");
        assert_eq!(
            report.edits_sent,
            report.edits_applied + report.edits_rejected,
            "every update answered as applied or rejected — none dropped"
        );
        assert_eq!(report.edit_latencies_us.len(), report.edits_sent);
        // Queries keep their own identity under edit load.
        assert_eq!(
            report.sent,
            report.ok + report.degraded + report.shed + report.errors
        );
        assert_eq!(report.latencies_us.len(), report.sent);
        for t in &report.per_tenant {
            assert_eq!(
                t.edits_sent,
                t.edits_applied + t.edits_rejected,
                "{}",
                t.name
            );
        }
        // Enough edits to cycle into the garbled unit at least once per
        // client => some rejections, and they never outnumber the valid
        // two-thirds of the mix plus shed.
        if report.edits_sent >= 6 {
            assert!(report.edits_rejected > 0, "garbled edits were rejected");
        }
        let text = report.render();
        assert!(text.contains("edits: sent"), "{text}");
        let doc = report.to_json();
        let edits = doc.get("edits").expect("edits section");
        assert_eq!(
            edits
                .get("sent")
                .and_then(Value::as_u64)
                .map(|n| n as usize),
            Some(report.edits_sent),
            "{doc}"
        );
        assert!(
            doc.get("per_tenant")
                .and_then(|p| p.get("t1"))
                .and_then(|t| t.get("edits_applied"))
                .is_some(),
            "{doc}"
        );
    }

    #[test]
    fn open_loop_merges_under_multi_tenant_preserving_the_closed_leg() {
        let closed = run(&ServeBenchConfig {
            clients: 1,
            duration: Duration::from_millis(50),
            ..tiny()
        });
        let open = run(&ServeBenchConfig {
            clients: 1,
            tenants: 2,
            open_loop: true,
            qps: 100.0,
            duration: Duration::from_millis(100),
            ..tiny()
        });
        let dir = std::env::temp_dir().join(format!("pex-serve-bench-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        closed.merge_into_bench_results(&path).unwrap();
        open.merge_into_bench_results(&path).unwrap();
        let merged = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let serve = merged.get("serve").expect("serve section");
        assert!(serve.get("sent").is_some(), "closed leg survives: {serve}");
        let mt = serve.get("multi_tenant").expect("open leg nested");
        assert_eq!(mt.get("mode").and_then(Value::as_str), Some("open"));
        assert!(mt.get("per_tenant").and_then(|p| p.get("t1")).is_some());
        // Re-merging the closed leg keeps the open leg in place.
        closed.merge_into_bench_results(&path).unwrap();
        let merged = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(
            merged
                .get("serve")
                .and_then(|s| s.get("multi_tenant"))
                .is_some(),
            "closed-loop merge preserves the open-loop leg"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merges_into_existing_bench_results() {
        let report = run(&ServeBenchConfig {
            clients: 1,
            duration: Duration::from_millis(50),
            ..tiny()
        });
        let dir = std::env::temp_dir().join(format!("pex-serve-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_results.json");
        std::fs::write(
            &path,
            "{\"schema\":\"pex-bench-speedups/1\",\"benchmarks\":[]}",
        )
        .unwrap();
        report.merge_into_bench_results(&path).unwrap();
        let merged = json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(merged.get("benchmarks").is_some(), "existing keys survive");
        assert!(merged.get("serve").and_then(|s| s.get("sent")).is_some());
        // Merging again replaces, not duplicates.
        report.merge_into_bench_results(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.matches("\"serve\"").count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
