//! Query-latency measurement (the speed paragraphs of Sections 5.1-5.3).
//!
//! The paper reports the proportion of queries answered within interactive
//! thresholds: method queries < 0.5 s for 98.9 % of calls, argument queries
//! < 0.1 s for 92 % and < 0.5 s for 98 %, lookup queries < 0.5 s for
//! 99.5 %. This module renders the same proportions plus percentiles.

use crate::stats::{pct, percentile, proportion_under, TextTable};

/// Latency summary for one experiment family.
#[derive(Debug, Clone)]
pub struct SpeedRow {
    /// Experiment label.
    pub label: &'static str,
    /// Per-query wall-clock times in microseconds.
    pub micros: Vec<u128>,
}

impl SpeedRow {
    /// Creates a row, dropping zero samples (unmeasured queries).
    pub fn new(label: &'static str, micros: impl IntoIterator<Item = u128>) -> Self {
        SpeedRow {
            label,
            micros: micros.into_iter().filter(|&m| m > 0).collect(),
        }
    }
}

/// Renders the latency table.
pub fn render_speed(rows: &[SpeedRow]) -> String {
    let mut table = TextTable::new(vec![
        "experiment",
        "n",
        "< 0.1 s",
        "< 0.5 s",
        "p50 (us)",
        "p90 (us)",
        "p99 (us)",
    ]);
    for row in rows {
        table.row(vec![
            row.label.to_string(),
            row.micros.len().to_string(),
            pct(proportion_under(&row.micros, 100_000)),
            pct(proportion_under(&row.micros, 500_000)),
            percentile(&row.micros, 50.0).to_string(),
            percentile(&row.micros, 90.0).to_string(),
            percentile(&row.micros, 99.0).to_string(),
        ]);
    }
    format!(
        "Query latency (paper: methods 98.9% < 0.5s; arguments 92% < 0.1s, 98% < 0.5s; lookups 99.5% < 0.5s)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_rows_drop_unmeasured() {
        let row = SpeedRow::new("x", [0, 10, 20, 0, 30]);
        assert_eq!(row.micros.len(), 3);
    }

    #[test]
    fn render_contains_thresholds() {
        let rows = vec![SpeedRow::new(
            "methods (best query)",
            (1..1000u128).map(|i| i * 100),
        )];
        let s = render_speed(&rows);
        assert!(s.contains("< 0.5 s"));
        assert!(s.contains("methods (best query)"));
    }
}
