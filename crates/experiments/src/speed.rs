//! Query-latency measurement (the speed paragraphs of Sections 5.1-5.3).
//!
//! The paper reports the proportion of queries answered within interactive
//! thresholds: method queries < 0.5 s for 98.9 % of calls, argument queries
//! < 0.1 s for 92 % and < 0.5 s for 98 %, lookup queries < 0.5 s for
//! 99.5 %. This module renders the same proportions plus percentiles.
//!
//! Samples are kept in **nanoseconds**. An earlier revision recorded whole
//! microseconds and dropped zero-µs samples, which silently discarded the
//! *fastest* measured queries and skewed p50/p90 upward; at nanosecond
//! resolution a measured query is never zero, so the only dropped samples
//! are the explicit `0` placeholders experiments use for queries that never
//! ran (e.g. not-guessable arguments).

use crate::stats::{pct, percentile, proportion_under, TextTable};

/// Latency summary for one experiment family.
#[derive(Debug, Clone)]
pub struct SpeedRow {
    /// Experiment label.
    pub label: &'static str,
    /// Per-query wall-clock times in nanoseconds.
    pub nanos: Vec<u128>,
}

impl SpeedRow {
    /// Creates a row from nanosecond samples, dropping only the exact-zero
    /// unmeasured placeholders (queries that never ran).
    pub fn new(label: &'static str, nanos: impl IntoIterator<Item = u128>) -> Self {
        SpeedRow {
            label,
            nanos: nanos.into_iter().filter(|&n| n > 0).collect(),
        }
    }
}

/// Renders the latency table.
pub fn render_speed(rows: &[SpeedRow]) -> String {
    let mut table = TextTable::new(vec![
        "experiment",
        "n",
        "< 0.1 s",
        "< 0.5 s",
        "p50 (us)",
        "p90 (us)",
        "p99 (us)",
    ]);
    for row in rows {
        table.row(vec![
            row.label.to_string(),
            row.nanos.len().to_string(),
            pct(proportion_under(&row.nanos, 100_000_000)),
            pct(proportion_under(&row.nanos, 500_000_000)),
            (percentile(&row.nanos, 50.0) / 1_000).to_string(),
            (percentile(&row.nanos, 90.0) / 1_000).to_string(),
            (percentile(&row.nanos, 99.0) / 1_000).to_string(),
        ]);
    }
    format!(
        "Query latency (paper: methods 98.9% < 0.5s; arguments 92% < 0.1s, 98% < 0.5s; lookups 99.5% < 0.5s)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speed_rows_drop_only_unmeasured_placeholders() {
        // Sub-microsecond samples (would have been 0 µs) survive.
        let row = SpeedRow::new("x", [0, 10, 20, 0, 999, 30]);
        assert_eq!(row.nanos.len(), 4);
        assert!(row.nanos.contains(&999));
    }

    #[test]
    fn render_contains_thresholds() {
        let rows = vec![SpeedRow::new(
            "methods (best query)",
            (1..1000u128).map(|i| i * 100_000),
        )];
        let s = render_speed(&rows);
        assert!(s.contains("< 0.5 s"));
        assert!(s.contains("methods (best query)"));
    }
}
