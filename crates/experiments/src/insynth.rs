//! An InSynth-style baseline (Gvero, Kuncak, Piskac — CAV 2011; the
//! paper's Section 6).
//!
//! InSynth "produces expressions for a given point in code using the type
//! as well as the context ... it generates expressions from scratch with no
//! input from the programmer to guide it". This module implements that
//! model in its simplest published form: **weighted type-directed term
//! synthesis** — saturate a table of the cheapest well-typed terms per
//! type from the environment's atoms (locals, `this`, globals, enum
//! members) and the program's methods (including multi-argument calls,
//! which neither our engine's holes nor Prospector's jungloids generate
//! from scratch), then list the terms of the requested type by weight.
//!
//! Weights follow InSynth's "prefer simpler terms closer to the program
//! point" heuristic: locals are cheapest, then members, then globals;
//! every application adds the callee cost plus its arguments' weights.

use std::collections::HashMap;

use pex_model::{Context, Database, Expr, GlobalRef, LocalId, ValueTy};
use pex_types::TypeId;

/// One synthesised term with its weight.
#[derive(Debug, Clone)]
struct Term {
    weight: u32,
    expr: Expr,
}

/// The InSynth-style synthesiser.
#[derive(Debug, Clone, Copy)]
pub struct InSynth<'a> {
    db: &'a Database,
    /// Saturation rounds (application nesting depth).
    pub rounds: usize,
    /// Cheapest terms kept per type during saturation.
    pub beam: usize,
}

impl<'a> InSynth<'a> {
    /// Creates a synthesiser with the defaults used by the baseline
    /// comparison (3 rounds, beam 6).
    pub fn new(db: &'a Database) -> Self {
        InSynth {
            db,
            rounds: 3,
            beam: 6,
        }
    }

    /// Terms of (a type convertible to) `target`, cheapest first, capped at
    /// `limit`.
    pub fn query(&self, ctx: &Context, target: TypeId, limit: usize) -> Vec<Expr> {
        let table = self.saturate(ctx);
        let mut hits: Vec<&Term> = table
            .iter()
            .filter(|(ty, _)| self.db.types().implicitly_convertible(**ty, target))
            .flat_map(|(_, terms)| terms.iter())
            .collect();
        hits.sort_by(|a, b| {
            a.weight.cmp(&b.weight).then_with(|| {
                // Deterministic tie-break on structure.
                format!("{:?}", a.expr).cmp(&format!("{:?}", b.expr))
            })
        });
        hits.into_iter()
            .take(limit)
            .map(|t| t.expr.clone())
            .collect()
    }

    /// Rank (0-based) of `wanted` among the synthesised terms.
    pub fn rank_of(
        &self,
        ctx: &Context,
        target: TypeId,
        wanted: &Expr,
        limit: usize,
    ) -> Option<usize> {
        self.query(ctx, target, limit)
            .iter()
            .position(|e| e == wanted)
    }

    fn saturate(&self, ctx: &Context) -> HashMap<TypeId, Vec<Term>> {
        let db = self.db;
        let mut table: HashMap<TypeId, Vec<Term>> = HashMap::new();
        let insert = |table: &mut HashMap<TypeId, Vec<Term>>, ty: TypeId, term: Term| {
            let slot = table.entry(ty).or_default();
            if slot.iter().any(|t| t.expr == term.expr) {
                return;
            }
            slot.push(term);
            slot.sort_by(|a, b| {
                a.weight
                    .cmp(&b.weight)
                    .then_with(|| format!("{:?}", a.expr).cmp(&format!("{:?}", b.expr)))
            });
            slot.truncate(self.beam);
        };

        // Atoms: locals (weight 1), this (1), globals (3), enum members (3).
        for (i, local) in ctx.locals.iter().enumerate() {
            insert(
                &mut table,
                local.ty,
                Term {
                    weight: 1,
                    expr: Expr::Local(LocalId(i as u32)),
                },
            );
        }
        if let Some(t) = ctx.this_type() {
            insert(
                &mut table,
                t,
                Term {
                    weight: 1,
                    expr: Expr::This,
                },
            );
            // Fields of `this` are near the program point: weight 2.
            for f in db.instance_fields(t, ctx.enclosing_type) {
                let fd = db.field(f);
                insert(
                    &mut table,
                    fd.ty(),
                    Term {
                        weight: 2,
                        expr: Expr::field(Expr::This, f),
                    },
                );
            }
        }
        for g in db.globals() {
            let (expr, ty) = match g {
                GlobalRef::Field(f) => (Expr::StaticField(f), db.field(f).ty()),
                GlobalRef::Method(m) => (Expr::Call(m, Vec::new()), db.method(m).return_type()),
            };
            insert(&mut table, ty, Term { weight: 3, expr });
        }

        // Saturation: apply every field lookup and method to known terms.
        for _ in 0..self.rounds {
            let snapshot: Vec<(TypeId, Vec<Term>)> =
                table.iter().map(|(t, v)| (*t, v.clone())).collect();
            // Per-round index: the cheapest known term usable at each type
            // (one conversion-target walk per table entry, instead of a
            // whole-table scan per method parameter).
            let mut best_for: HashMap<TypeId, Term> = HashMap::new();
            for (ty, terms) in &snapshot {
                let Some(cheapest) = terms.first() else {
                    continue;
                };
                for (target, _) in db.types().conversion_targets(*ty) {
                    let better = match best_for.get(&target) {
                        None => true,
                        Some(existing) => {
                            cheapest.weight < existing.weight
                                || (cheapest.weight == existing.weight
                                    && format!("{:?}", cheapest.expr)
                                        < format!("{:?}", existing.expr))
                        }
                    };
                    if better {
                        best_for.insert(target, cheapest.clone());
                    }
                }
            }
            // Field lookups and zero-argument calls on existing terms.
            for (ty, terms) in &snapshot {
                for term in terms {
                    for f in db.instance_fields(*ty, ctx.enclosing_type) {
                        let fd = db.field(f);
                        insert(
                            &mut table,
                            fd.ty(),
                            Term {
                                weight: term.weight + 1,
                                expr: Expr::field(term.expr.clone(), f),
                            },
                        );
                    }
                }
            }
            // Method applications with synthesised arguments (the cheapest
            // term per parameter — InSynth's greedy instantiation).
            for m in db.methods() {
                let md = db.method(m);
                if md.return_type() == db.types().void_ty()
                    || !db.accessible(md.visibility(), md.declaring(), ctx.enclosing_type)
                {
                    continue;
                }
                let param_tys = md.full_param_types();
                if param_tys.is_empty() {
                    continue;
                }
                let mut args = Vec::with_capacity(param_tys.len());
                let mut weight = 2u32;
                let mut ok = true;
                for want in &param_tys {
                    match best_for.get(want) {
                        Some(t) => {
                            weight += t.weight;
                            args.push(t.expr.clone());
                        }
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let expr = Expr::Call(m, args);
                // Guard against ill-typed corner cases (e.g. receivers
                // through wildcards) by checking the final term.
                if matches!(db.expr_ty(&expr, ctx), Ok(ValueTy::Known(_))) {
                    insert(&mut table, md.return_type(), Term { weight, expr });
                }
            }
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;
    use pex_model::Local;

    fn db() -> Database {
        compile(
            r#"
            namespace N {
                struct Point { double X; }
                class Line {
                    N.Point P1;
                    static N.Line Between(N.Point a, N.Point b);
                    double Length();
                }
                class World { static N.Point Origin; }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn synthesises_atoms_cheapest_first() {
        let db = db();
        let point = db.types().lookup_qualified("N.Point").unwrap();
        let ctx = Context::with_locals(
            None,
            vec![Local {
                name: "p".into(),
                ty: point,
            }],
        );
        let s = InSynth::new(&db);
        let results = s.query(&ctx, point, 10);
        let rendered: Vec<String> = results
            .iter()
            .map(|e| pex_model::render_expr(&db, &ctx, e, pex_model::CallStyle::Receiver))
            .collect();
        assert_eq!(rendered[0], "p", "local first: {rendered:?}");
        assert!(
            rendered.contains(&"N.World.Origin".to_string()),
            "{rendered:?}"
        );
    }

    #[test]
    fn synthesises_nested_applications_from_scratch() {
        let db = db();
        let point = db.types().lookup_qualified("N.Point").unwrap();
        let line = db.types().lookup_qualified("N.Line").unwrap();
        let ctx = Context::with_locals(
            None,
            vec![Local {
                name: "p".into(),
                ty: point,
            }],
        );
        let s = InSynth::new(&db);
        // A Line must be built by calling Between(p, p) — a multi-argument
        // call neither Prospector nor a pex hole generates from scratch.
        let results = s.query(&ctx, line, 10);
        let rendered: Vec<String> = results
            .iter()
            .map(|e| pex_model::render_expr(&db, &ctx, e, pex_model::CallStyle::Receiver))
            .collect();
        assert!(
            rendered.iter().any(|r| r == "N.Line.Between(p, p)"),
            "nested synthesis expected: {rendered:?}"
        );
        // And a double can be reached through the synthesised Line.
        let double = db.types().double_ty();
        let doubles = s.query(&ctx, double, 20);
        let rendered: Vec<String> = doubles
            .iter()
            .map(|e| pex_model::render_expr(&db, &ctx, e, pex_model::CallStyle::Receiver))
            .collect();
        assert!(
            rendered.iter().any(|r| r.contains("p.X")),
            "field of a local: {rendered:?}"
        );
    }

    #[test]
    fn weights_order_is_deterministic() {
        let db = db();
        let point = db.types().lookup_qualified("N.Point").unwrap();
        let ctx = Context::with_locals(
            None,
            vec![Local {
                name: "p".into(),
                ty: point,
            }],
        );
        let s = InSynth::new(&db);
        let a = s.query(&ctx, point, 10);
        let b = s.query(&ctx, point, 10);
        assert_eq!(a, b);
        assert_eq!(s.rank_of(&ctx, point, &a[0], 10), Some(0));
    }
}
