//! A Prospector-style baseline (Mandelin et al., PLDI 2005 — the paper's
//! closest related work, Section 2.3).
//!
//! Prospector answers "convert a value I have into the type I need" by
//! mining *jungloids*: chains of field lookups, zero-argument calls and
//! unary conversion methods from one type to another, ranked by length.
//! The paper compares against it only qualitatively ("Prospector would give
//! a similar list ... although it does not consider globals"); this module
//! implements the documented model so the comparison can be measured:
//!
//! * seeds are **local variables only** (no globals, no `this`) — the
//!   paper's explicit observation about Prospector's inputs;
//! * chains grow by instance field lookups, zero-argument instance calls,
//!   and static methods taking exactly one argument (the "conversion
//!   method" jungloid step — one thing our engine's chain language does
//!   not generate, matching "it may also find chains ... which our tool
//!   would not find");
//! * results are ranked by chain length (shorter first), Prospector's
//!   primary heuristic.

use std::collections::VecDeque;

use pex_model::{Context, Database, Expr, LocalId, ValueTy};
use pex_types::TypeId;

/// The Prospector-style query engine.
#[derive(Debug, Clone, Copy)]
pub struct Prospector<'a> {
    db: &'a Database,
    /// Maximum jungloid length (steps from the seed).
    pub max_len: usize,
}

impl<'a> Prospector<'a> {
    /// Creates a baseline engine with the default length cap of 4.
    pub fn new(db: &'a Database) -> Self {
        Prospector { db, max_len: 4 }
    }

    /// All jungloids from the context's locals to `target`, shortest first,
    /// capped at `limit` results.
    pub fn query(&self, ctx: &Context, target: TypeId, limit: usize) -> Vec<Expr> {
        let mut out = Vec::new();
        let mut queue: VecDeque<(Expr, TypeId, usize)> = VecDeque::new();
        for (i, local) in ctx.locals.iter().enumerate() {
            queue.push_back((Expr::Local(LocalId(i as u32)), local.ty, 0));
        }
        // Breadth-first over (expression, type) states; expressions are
        // unique chains, so no visited-set is needed for termination (the
        // length cap bounds the frontier).
        while let Some((expr, ty, len)) = queue.pop_front() {
            if out.len() >= limit {
                break;
            }
            if self.db.types().implicitly_convertible(ty, target) {
                out.push(expr.clone());
            }
            if len >= self.max_len {
                continue;
            }
            // Field lookups.
            for f in self.db.instance_fields(ty, ctx.enclosing_type) {
                let fd = self.db.field(f);
                queue.push_back((Expr::field(expr.clone(), f), fd.ty(), len + 1));
            }
            // Zero-argument instance calls.
            for m in self.db.zero_arg_instance_methods(ty, ctx.enclosing_type) {
                let md = self.db.method(m);
                queue.push_back((Expr::Call(m, vec![expr.clone()]), md.return_type(), len + 1));
            }
            // Unary static conversion methods ("jungloid steps").
            for m in self.db.methods() {
                let md = self.db.method(m);
                if md.is_static()
                    && md.params().len() == 1
                    && md.return_type() != self.db.types().void_ty()
                    && self
                        .db
                        .types()
                        .implicitly_convertible(ty, md.params()[0].ty)
                    && self
                        .db
                        .accessible(md.visibility(), md.declaring(), ctx.enclosing_type)
                {
                    queue.push_back((Expr::Call(m, vec![expr.clone()]), md.return_type(), len + 1));
                }
            }
        }
        out
    }

    /// Rank (0-based) of `wanted` among the query results, if present in
    /// the first `limit`.
    pub fn rank_of(
        &self,
        ctx: &Context,
        target: TypeId,
        wanted: &Expr,
        limit: usize,
    ) -> Option<usize> {
        self.query(ctx, target, limit)
            .iter()
            .position(|e| e == wanted)
    }

    /// The static type of an expression under this database, when known
    /// (convenience for callers classifying seeds).
    pub fn expr_type(&self, ctx: &Context, e: &Expr) -> Option<TypeId> {
        match self.db.expr_ty(e, ctx).ok()? {
            ValueTy::Known(t) => Some(t),
            ValueTy::Wildcard => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;
    use pex_model::Local;

    /// Prospector's own motivating example, transliterated: IFile →
    /// ICompilationUnit (via JavaCore.createCompilationUnitFrom) → ASTNode
    /// (via AST.parseCompilationUnit — modelled unary here).
    const ECLIPSE: &str = r#"
        namespace Eclipse {
            class IFile { }
            class ICompilationUnit { }
            class ASTNode { }
            class JavaCore {
                static Eclipse.ICompilationUnit CreateCompilationUnitFrom(Eclipse.IFile file);
            }
            class AST {
                static Eclipse.ASTNode ParseCompilationUnit(Eclipse.ICompilationUnit cu);
            }
        }
    "#;

    #[test]
    fn finds_the_two_step_jungloid() {
        let db = compile(ECLIPSE).unwrap();
        let ifile = db.types().lookup_qualified("Eclipse.IFile").unwrap();
        let ast = db.types().lookup_qualified("Eclipse.ASTNode").unwrap();
        let ctx = Context::with_locals(
            None,
            vec![Local {
                name: "file".into(),
                ty: ifile,
            }],
        );
        let p = Prospector::new(&db);
        let results = p.query(&ctx, ast, 10);
        assert_eq!(results.len(), 1, "exactly one conversion chain");
        let rendered =
            pex_model::render_expr(&db, &ctx, &results[0], pex_model::CallStyle::Receiver);
        assert_eq!(
            rendered,
            "Eclipse.AST.ParseCompilationUnit(Eclipse.JavaCore.CreateCompilationUnitFrom(file))"
        );
    }

    #[test]
    fn shorter_jungloids_come_first() {
        let db = compile(
            r#"
            namespace N {
                struct Point { int X; }
                class Line { N.Point P1; }
                class Path { N.Line First; }
            }
            "#,
        )
        .unwrap();
        let point = db.types().lookup_qualified("N.Point").unwrap();
        let line = db.types().lookup_qualified("N.Line").unwrap();
        let path = db.types().lookup_qualified("N.Path").unwrap();
        let ctx = Context::with_locals(
            None,
            vec![
                Local {
                    name: "pt".into(),
                    ty: point,
                },
                Local {
                    name: "ln".into(),
                    ty: line,
                },
                Local {
                    name: "pa".into(),
                    ty: path,
                },
            ],
        );
        let p = Prospector::new(&db);
        let results = p.query(&ctx, point, 10);
        let rendered: Vec<String> = results
            .iter()
            .map(|e| pex_model::render_expr(&db, &ctx, e, pex_model::CallStyle::Receiver))
            .collect();
        assert_eq!(rendered, vec!["pt", "ln.P1", "pa.First.P1"]);
        assert_eq!(p.rank_of(&ctx, point, &results[1], 10), Some(1));
    }

    #[test]
    fn ignores_globals_and_this() {
        // The paper: "it does not consider globals as possible inputs".
        let db = compile(
            r#"
            namespace N {
                struct Point { int X; }
                class Holder {
                    static N.Point Origin;
                    N.Point Mine;
                }
            }
            "#,
        )
        .unwrap();
        let point = db.types().lookup_qualified("N.Point").unwrap();
        let holder = db.types().lookup_qualified("N.Holder").unwrap();
        // Instance context with no locals: Prospector finds nothing even
        // though `this.Mine` and `N.Holder.Origin` exist.
        let ctx = Context::instance(holder, vec![]);
        let p = Prospector::new(&db);
        assert!(p.query(&ctx, point, 10).is_empty());
    }
}
