//! Scaling study: how query latency and choice-set size grow with corpus
//! scale (the paper evaluated on a fixed testbed; this quantifies the
//! "fast enough for interactive use" claim as the framework grows).

use std::time::Instant;

use pex_core::{Completion, PartialExpr};
use pex_corpus::table1_projects;
use pex_model::Expr;

use crate::extract::{extract, site_context};
use crate::harness::ExperimentConfig;
use crate::stats::{percentile, TextTable};

/// One scale point's measurements.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Corpus scale.
    pub scale: f64,
    /// Methods in the generated project.
    pub methods: usize,
    /// Types in the generated project.
    pub types: usize,
    /// Method queries measured.
    pub queries: usize,
    /// Median query latency (µs).
    pub p50_us: u128,
    /// Tail query latency (µs).
    pub p99_us: u128,
    /// Median number of completions pulled to find the answer (or the
    /// limit, when not found).
    pub median_rank: usize,
}

/// Runs the study on one project profile (Paint.NET) across scales.
pub fn run(scales: &[f64], cfg: &ExperimentConfig) -> Vec<ScalePoint> {
    let profile = table1_projects()
        .into_iter()
        .next()
        .expect("profiles exist");
    let mut out = Vec::new();
    for &scale in scales {
        let db = profile.generate(scale);
        let index = pex_core::MethodIndex::build(&db);
        let reach = pex_core::ReachIndex::build(&db);
        let extracted = extract(&db);
        let sites: Vec<_> = extracted
            .calls
            .iter()
            .filter(|c| c.args.len() >= 2)
            .take(60)
            .collect();
        let mut micros = Vec::new();
        let mut ranks = Vec::new();
        for site in &sites {
            let ctx = site_context(&db, site.enclosing, site.stmt);
            let completer =
                pex_core::Completer::new(&db, &ctx, &index, cfg.rank, None).with_reach(&reach);
            let query = PartialExpr::UnknownCall(vec![
                PartialExpr::Known(site.args[0].clone()),
                PartialExpr::Known(site.args[1].clone()),
            ]);
            let target = site.target;
            let t0 = Instant::now();
            let rank = completer.rank_of(
                &query,
                cfg.limit,
                |c: &Completion| matches!(c.expr, Expr::Call(m, _) if m == target),
            );
            micros.push(t0.elapsed().as_micros());
            ranks.push(rank.rank.unwrap_or(cfg.limit));
        }
        ranks.sort_unstable();
        out.push(ScalePoint {
            scale,
            methods: db.method_count(),
            types: db.types().len(),
            queries: sites.len(),
            p50_us: percentile(&micros, 50.0),
            p99_us: percentile(&micros, 99.0),
            median_rank: ranks.get(ranks.len() / 2).copied().unwrap_or(0),
        });
    }
    out
}

/// Renders the scaling table.
pub fn render(points: &[ScalePoint]) -> String {
    let mut table = TextTable::new(vec![
        "scale",
        "types",
        "methods",
        "queries",
        "p50 (us)",
        "p99 (us)",
        "median rank",
    ]);
    for p in points {
        table.row(vec![
            format!("{}", p.scale),
            p.types.to_string(),
            p.methods.to_string(),
            p.queries.to_string(),
            p.p50_us.to_string(),
            p.p99_us.to_string(),
            p.median_rank.to_string(),
        ]);
    }
    format!(
        "Scaling study: 2-argument method queries on the Paint.NET profile as the\n\
         framework grows (paper: interactive under 0.5 s on a 2008-era core)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_study_runs_and_grows() {
        let cfg = ExperimentConfig {
            limit: 50,
            ..Default::default()
        };
        let points = run(&[0.002, 0.02], &cfg);
        assert_eq!(points.len(), 2);
        assert!(
            points[1].methods > points[0].methods,
            "bigger scale, bigger library"
        );
        assert!(points[0].queries > 0);
        let rendered = render(&points);
        assert!(rendered.contains("p99"));
    }
}
