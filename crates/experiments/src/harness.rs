//! Shared experiment infrastructure: project loading, configuration, and
//! the per-site iteration discipline (context + incremental abstract-type
//! solutions).

use std::collections::HashMap;
use std::time::Duration;

use pex_abstract::{AbsTypes, ConstraintCache, MethodSweep};
use pex_core::{
    CancelToken, CompleteOptions, Completer, MethodIndex, QueryBudget, RankConfig, ReachIndex,
};
use pex_corpus::table1_projects;
use pex_model::{Context, Database, MethodId};
use rayon::prelude::*;

use crate::extract::{extract, Extracted};

/// Knobs shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Corpus scale relative to the paper's project sizes (1.0 = paper).
    pub scale: f64,
    /// How deep the engine searches for the intended answer before giving
    /// up (ranks at or past this report as "not found").
    pub limit: usize,
    /// Whether abstract-type inference feeds the ranking function.
    pub use_abs: bool,
    /// Ranking configuration (Table 2 varies this).
    pub rank: RankConfig,
    /// Optional cap on sites per project per experiment (sampled by
    /// stride, deterministically).
    pub max_sites: Option<usize>,
    /// Largest argument-subset size for method-name queries (the paper
    /// uses 2; 3 measures its "a third argument adds only negligible
    /// improvement" remark).
    pub max_subset: usize,
    /// Worker threads for site replay: `None` uses rayon's default
    /// (`RAYON_NUM_THREADS` or all cores), `Some(1)` forces the strictly
    /// sequential path, `Some(n)` pins an n-worker pool. Outcome order is
    /// identical in every mode — see [`map_sites`].
    pub threads: Option<usize>,
    /// Per-query wall-clock deadline in milliseconds (`--deadline-ms`).
    /// Queries that overrun report [`pex_core::QueryOutcome::Deadline`]
    /// and their sites are counted as truncated, not as "not found".
    pub deadline_ms: Option<u64>,
    /// Cooperative cancellation shared by every query this config builds.
    /// Cancelling it (e.g. from a `--time-limit-s` watchdog) makes
    /// in-flight queries stop at their next budget poll and [`map_sites`]
    /// skip the sites not yet started, so workers drain gracefully.
    pub cancel: CancelToken,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            scale: 0.02,
            limit: 100,
            use_abs: true,
            rank: RankConfig::all(),
            max_sites: None,
            max_subset: 2,
            threads: None,
            deadline_ms: None,
            cancel: CancelToken::new(),
        }
    }
}

impl ExperimentConfig {
    /// The per-query execution budget this configuration implies.
    pub fn budget(&self) -> QueryBudget {
        QueryBudget {
            deadline: self.deadline_ms.map(Duration::from_millis),
            cancel: Some(self.cancel.clone()),
            ..Default::default()
        }
    }
}

/// One generated project plus its derived artefacts.
pub struct Project {
    /// Table 1 project name.
    pub name: &'static str,
    /// The generated program.
    pub db: Database,
    /// The method index (built once).
    pub index: MethodIndex,
    /// The type-reachability index (built once; prunes filtered chains).
    pub reach: ReachIndex,
    /// Precomputed abstract-type constraints (built once; replayed per
    /// sweep).
    pub abs_cache: ConstraintCache,
    /// All extracted query sites.
    pub extracted: Extracted,
}

impl std::fmt::Debug for Project {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Project")
            .field("name", &self.name)
            .field("methods", &self.db.method_count())
            .field("calls", &self.extracted.calls.len())
            .finish()
    }
}

/// Generates the seven Table 1 projects at the configured scale.
pub fn load_projects(scale: f64) -> Vec<Project> {
    table1_projects()
        .into_iter()
        .map(|p| {
            let db = p.generate(scale);
            let index = MethodIndex::build(&db);
            let reach = ReachIndex::build(&db);
            let abs_cache = ConstraintCache::build(&db);
            let extracted = extract(&db);
            Project {
                name: p.name,
                db,
                index,
                reach,
                abs_cache,
                extracted,
            }
        })
        .collect()
}

/// Renders a project back to compilable mini-C# source (bodies containing
/// opaque expressions print as bodiless declarations).
pub fn dump_project(project: &Project) -> String {
    pex_model::minics::print(&project.db, pex_model::minics::PrintOptions::default())
}

/// Deterministically samples up to `max` items by stride.
pub fn sample<T: Clone>(items: &[T], max: Option<usize>) -> Vec<T> {
    match max {
        Some(max) if items.len() > max && max > 0 => {
            let stride = items.len() as f64 / max as f64;
            (0..max)
                .map(|i| items[(i as f64 * stride) as usize].clone())
                .collect()
        }
        _ => items.to_vec(),
    }
}

/// Groups sites by enclosing method, preserving first-occurrence method
/// order and sorting each group by statement index.
fn group_by_method<S>(sites: &[S], key: fn(&S) -> (MethodId, usize)) -> Vec<(MethodId, Vec<&S>)> {
    let mut by_method: HashMap<MethodId, Vec<&S>> = HashMap::new();
    let mut order: Vec<MethodId> = Vec::new();
    for s in sites {
        let (m, _) = key(s);
        if !by_method.contains_key(&m) {
            order.push(m);
        }
        by_method.entry(m).or_default().push(s);
    }
    order
        .into_iter()
        .map(|m| {
            let mut group = by_method.remove(&m).expect("grouped above");
            group.sort_by_key(|s| key(s).1);
            (m, group)
        })
        .collect()
}

/// Iterates sites grouped by enclosing method with an amortised
/// abstract-type sweep: for each site the callback receives the context and
/// the abstract solution truncated at the site's statement (the paper's
/// "eliminate the expression and all code that follows it").
pub fn for_each_site<S, F>(
    db: &Database,
    abs_cache: Option<&ConstraintCache>,
    sites: &[S],
    key: fn(&S) -> (MethodId, usize),
    mut f: F,
) where
    F: FnMut(&S, &Context, Option<&AbsTypes<'_>>),
{
    for (m, group) in group_by_method(sites, key) {
        let mut sweep = abs_cache.map(|cache| MethodSweep::with_cache(db, cache, m));
        for site in group {
            let (method, stmt) = key(site);
            let body = db.method(method).body().expect("sites come from bodies");
            let ctx = Context::at_statement(db, method, body, stmt);
            if let Some(sweep) = sweep.as_mut() {
                sweep.advance_to(stmt);
                f(site, &ctx, Some(sweep.abs()));
            } else {
                f(site, &ctx, None);
            }
        }
    }
}

/// Parallel site replay: the same visit as [`for_each_site`], but method
/// groups are distributed across rayon workers and the callback *collects*
/// outcomes instead of mutating shared state.
///
/// Determinism contract: each group keeps its own `MethodSweep` (the
/// per-method amortisation is preserved) and is processed in statement
/// order; the per-group outcome vectors are then reassembled in the same
/// first-occurrence group order the sequential walk uses. The returned
/// outcome order is therefore **identical for every thread count**,
/// including the strictly sequential `threads == Some(1)` path.
///
/// When `cancel` is provided and trips, workers stop picking up sites at
/// the next site boundary (in-flight queries also observe the same token
/// through their [`QueryBudget`]) and the partial outcome vector is
/// returned; the determinism contract then only covers the prefix that ran.
pub fn map_sites<S, R, F>(
    db: &Database,
    abs_cache: Option<&ConstraintCache>,
    sites: &[S],
    key: fn(&S) -> (MethodId, usize),
    threads: Option<usize>,
    cancel: Option<&CancelToken>,
    f: F,
) -> Vec<R>
where
    S: Sync,
    R: Send,
    F: Fn(&S, &Context, Option<&AbsTypes<'_>>, &mut Vec<R>) + Sync,
{
    let _span = pex_obs::span("replay.map_sites");
    let groups = group_by_method(sites, key);
    pex_obs::counter!("replay.sites", sites.len() as u64);
    pex_obs::counter!("replay.groups", groups.len() as u64);
    let run_group = |&(m, ref group): &(MethodId, Vec<&S>)| -> Vec<R> {
        let mut out = Vec::new();
        let mut sweep = abs_cache.map(|cache| MethodSweep::with_cache(db, cache, m));
        for &site in group {
            if cancel.is_some_and(CancelToken::is_cancelled) {
                pex_obs::counter!("replay.sites.skipped", 1);
                break;
            }
            let (method, stmt) = key(site);
            let body = db.method(method).body().expect("sites come from bodies");
            let ctx = Context::at_statement(db, method, body, stmt);
            if let Some(sweep) = sweep.as_mut() {
                sweep.advance_to(stmt);
                f(site, &ctx, Some(sweep.abs()), &mut out);
            } else {
                f(site, &ctx, None, &mut out);
            }
        }
        out
    };
    let parts: Vec<Vec<R>> = match threads {
        Some(1) => groups.iter().map(run_group).collect(),
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool")
            .install(|| groups.par_iter().map(run_group).collect()),
        None => groups.par_iter().map(run_group).collect(),
    };
    parts.into_iter().flatten().collect()
}

/// Builds a completer for one site.
pub fn completer<'a>(
    project: &'a Project,
    ctx: &'a Context,
    abs: Option<&'a AbsTypes<'a>>,
    cfg: &ExperimentConfig,
    expected: Option<pex_types::TypeId>,
) -> Completer<'a> {
    Completer::new(&project.db, ctx, &project.index, cfg.rank, abs)
        .with_options(CompleteOptions {
            expected,
            budget: cfg.budget(),
            ..Default::default()
        })
        .with_reach(&project.reach)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_bounded() {
        let xs: Vec<usize> = (0..100).collect();
        let s = sample(&xs, Some(10));
        assert_eq!(s.len(), 10);
        assert_eq!(s, sample(&xs, Some(10)));
        assert_eq!(sample(&xs, None).len(), 100);
        assert_eq!(sample(&xs, Some(200)).len(), 100);
    }

    #[test]
    fn projects_load_at_tiny_scale() {
        let ps = load_projects(0.002);
        assert_eq!(ps.len(), 7);
        let total_calls: usize = ps.iter().map(|p| p.extracted.calls.len()).sum();
        assert!(total_calls > 10, "expected some calls, got {total_calls}");
    }

    #[test]
    fn for_each_site_visits_everything_in_order() {
        let ps = load_projects(0.002);
        let p = &ps[0];
        let mut seen = 0usize;
        let mut last: HashMap<MethodId, usize> = HashMap::new();
        for_each_site(
            &p.db,
            Some(&p.abs_cache),
            &p.extracted.calls,
            |c| (c.enclosing, c.stmt),
            |site, ctx, abs| {
                seen += 1;
                assert!(abs.is_some());
                assert!(ctx.enclosing_method.is_some());
                let prev = last.insert(site.enclosing, site.stmt);
                if let Some(prev) = prev {
                    assert!(prev <= site.stmt, "within a method, statements ascend");
                }
            },
        );
        assert_eq!(seen, p.extracted.calls.len());
    }

    #[test]
    fn map_sites_order_is_thread_count_invariant() {
        let ps = load_projects(0.002);
        let p = &ps[0];
        let collect = |threads: Option<usize>| {
            map_sites(
                &p.db,
                Some(&p.abs_cache),
                &p.extracted.calls,
                |c| (c.enclosing, c.stmt),
                threads,
                None,
                |site, ctx, abs, out| {
                    assert!(abs.is_some());
                    assert!(ctx.enclosing_method.is_some());
                    out.push((site.enclosing, site.stmt));
                },
            )
        };
        let sequential = collect(Some(1));
        assert_eq!(sequential.len(), p.extracted.calls.len());
        // The sequential walk and map_sites visit in the same order...
        let mut visited = Vec::new();
        for_each_site(
            &p.db,
            Some(&p.abs_cache),
            &p.extracted.calls,
            |c| (c.enclosing, c.stmt),
            |site, _, _| visited.push((site.enclosing, site.stmt)),
        );
        assert_eq!(sequential, visited);
        // ... and the order survives any worker count (even > core count).
        assert_eq!(sequential, collect(Some(4)));
        assert_eq!(sequential, collect(None));
    }

    #[test]
    fn map_sites_drains_gracefully_when_cancelled() {
        let ps = load_projects(0.002);
        let p = &ps[0];
        let cancelled = CancelToken::new();
        cancelled.cancel();
        let out = map_sites(
            &p.db,
            Some(&p.abs_cache),
            &p.extracted.calls,
            |c| (c.enclosing, c.stmt),
            Some(1),
            Some(&cancelled),
            |site, _, _, out| out.push((site.enclosing, site.stmt)),
        );
        assert!(out.is_empty(), "pre-cancelled replay visits no sites");
        // An armed-but-untripped token changes nothing.
        let live = CancelToken::new();
        let all = map_sites(
            &p.db,
            Some(&p.abs_cache),
            &p.extracted.calls,
            |c| (c.enclosing, c.stmt),
            Some(1),
            Some(&live),
            |site, _, _, out| out.push((site.enclosing, site.stmt)),
        );
        assert_eq!(all.len(), p.extracted.calls.len());
    }

    #[test]
    fn config_budget_carries_deadline_and_token() {
        let cfg = ExperimentConfig {
            deadline_ms: Some(250),
            ..Default::default()
        };
        let budget = cfg.budget();
        assert_eq!(budget.deadline, Some(Duration::from_millis(250)));
        // The budget's token is the config's token: cancelling the config
        // cancels every query built from it.
        cfg.cancel.cancel();
        assert!(budget.cancel.as_ref().is_some_and(|t| t.is_cancelled()));
    }
}
