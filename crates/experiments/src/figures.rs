//! Reproductions of the paper's worked examples: the ranked result lists of
//! Figures 2, 3 and 4, run against the hand-written builtin corpora.

use pex_abstract::AbsTypes;
use pex_core::{Completer, MethodIndex, RankConfig};
use pex_corpus::builtin;
use pex_model::Expr;

fn render_list(title: &str, query: &str, items: Vec<String>) -> String {
    let mut out = format!("{title}\nQuery: {query}\n\n");
    for (i, item) in items.iter().enumerate() {
        out.push_str(&format!("{:>3}. {item}\n", i + 1));
    }
    out
}

/// Figure 2: the top 10 results for `?({img, size})` on mini Paint.NET.
pub fn render_fig2() -> String {
    let db = builtin::paint_dot_net();
    let (ctx, shrink) = builtin::paint_query_site(&db);
    let abs = AbsTypes::for_query(&db, shrink, usize::MAX);
    let index = MethodIndex::build(&db);
    let completer = Completer::new(&db, &ctx, &index, RankConfig::all(), Some(&abs));
    let query = pex_core::parse_partial(&db, &ctx, "?({img, size})").expect("query parses");
    let items = completer
        .complete(&query, 10)
        .iter()
        .map(|c| format!("{}   (score {})", completer.render(c), c.score))
        .collect();
    render_list(
        "Figure 2. Results for a method-name query on mini Paint.NET",
        "?({img, size})",
        items,
    )
}

/// Figure 3: the top 10 fillers for `Distance(point, ?)` inside
/// `EllipseArc`.
pub fn render_fig3() -> String {
    let db = builtin::dynamic_geometry();
    let ctx = builtin::geometry_fig3_context(&db);
    let index = MethodIndex::build(&db);
    let completer = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
    let query = pex_core::parse_partial(&db, &ctx, "Distance(point, ?)").expect("query parses");
    let items = completer
        .complete(&query, 10)
        .iter()
        .map(|c| {
            // Show just the hole's filler, as the paper does.
            let filler = match &c.expr {
                Expr::Call(_, args) => args.last().expect("Distance has two arguments"),
                other => other,
            };
            format!(
                "{}   (score {})",
                pex_model::render_expr(&db, &ctx, filler, pex_model::CallStyle::Receiver),
                c.score
            )
        })
        .collect();
    render_list(
        "Figure 3. Fillers for the second argument of Distance inside EllipseArc",
        "Distance(point, ?)",
        items,
    )
}

/// Figure 4: the top 10 completions for `point.?*m >= this.?*m` inside
/// `Segment`.
pub fn render_fig4() -> String {
    let db = builtin::dynamic_geometry();
    let ctx = builtin::geometry_fig4_context(&db);
    let index = MethodIndex::build(&db);
    let completer = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
    let query = pex_core::parse_partial(&db, &ctx, "point.?*m >= this.?*m").expect("query parses");
    let items = completer
        .complete(&query, 10)
        .iter()
        .map(|c| format!("{}   (score {})", completer.render(c), c.score))
        .collect();
    render_list(
        "Figure 4. Joint completion of both sides of a comparison inside Segment",
        "point.?*m >= this.?*m",
        items,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_ranks_resize_document_first() {
        let out = render_fig2();
        let first = out.lines().nth(3).expect("has results");
        assert!(
            first.contains("CanvasSizeAction.ResizeDocument(img, size, 0, 0)"),
            "paper's #1 result must be first:\n{out}"
        );
        // The distractors from the paper's list appear somewhere in the top 10.
        assert!(out.contains("Pair.Create"), "{out}");
    }

    #[test]
    fn fig3_contains_paper_results() {
        let out = render_fig3();
        let first = out.lines().nth(3).expect("has results");
        assert!(
            first.contains("point"),
            "the bare local ranks first:\n{out}"
        );
        assert!(out.contains("this.Center"), "{out}");
        assert!(out.contains("DynamicGeometry.Math.InfinitePoint"), "{out}");
        assert!(
            out.contains("shapeStyle.GetSampleGlyph().RenderTransformOrigin"),
            "{out}"
        );
    }

    #[test]
    fn fig4_prefers_same_named_fields() {
        let out = render_fig4();
        // Same-name completions (X >= ... X) must dominate the top of the
        // list; mixed-name pairs like X >= Length carry the +3 penalty.
        let lines: Vec<&str> = out.lines().skip(3).take(4).collect();
        for line in &lines {
            assert!(
                (line.contains(".X") && line.matches(".X").count() >= 2)
                    || line.matches(".Y").count() >= 2,
                "top results should pair same-named fields:\n{out}"
            );
        }
        assert!(
            out.contains("point.X >= this.P1.X") || out.contains("point.Y >= this.P1.Y"),
            "{out}"
        );
    }
}
