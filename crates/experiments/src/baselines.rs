//! Quantitative baseline comparison the paper only sketches (Section 2.3):
//! our engine vs. a Prospector-style jungloid search, on the argument
//! prediction task restricted to Prospector's universe — arguments that are
//! chains rooted at a **local variable**.

use pex_core::PartialExpr;
use pex_model::Expr;

use crate::extract::CallSite;
use crate::harness::{completer, for_each_site, sample, ExperimentConfig, Project};
use crate::insynth::InSynth;
use crate::prospector::Prospector;
use crate::stats::{pct, RankStats, TextTable};

/// Outcome for one local-rooted argument.
#[derive(Debug, Clone)]
pub struct BaselineOutcome {
    /// Rank from our engine (argument-hole query).
    pub engine: Option<usize>,
    /// Rank from the Prospector-style baseline.
    pub prospector: Option<usize>,
    /// Rank from the InSynth-style baseline.
    pub insynth: Option<usize>,
    /// Chain length of the original argument (0 = bare local).
    pub chain_len: usize,
}

/// Whether an expression is a lookup/zero-arg-call chain rooted at a local;
/// returns the chain length if so.
fn local_chain_len(db: &pex_model::Database, e: &Expr) -> Option<usize> {
    match e {
        Expr::Local(_) => Some(0),
        Expr::FieldAccess(base, f) if !db.field(*f).is_static() => {
            local_chain_len(db, base).map(|n| n + 1)
        }
        Expr::Call(m, args) if db.method(*m).params().is_empty() && args.len() == 1 => {
            local_chain_len(db, &args[0]).map(|n| n + 1)
        }
        _ => None,
    }
}

/// Runs the comparison over all projects.
pub fn run(projects: &[Project], cfg: &ExperimentConfig) -> Vec<BaselineOutcome> {
    let mut out = Vec::new();
    for project in projects {
        let sites = sample(&project.extracted.calls, cfg.max_sites);
        for_each_site(
            &project.db,
            cfg.use_abs.then_some(&project.abs_cache),
            &sites,
            |c: &CallSite| (c.enclosing, c.stmt),
            |site, ctx, abs| {
                let db = &project.db;
                let param_tys = db.method(site.target).full_param_types();
                for (i, arg) in site.args.iter().enumerate() {
                    let Some(chain_len) = local_chain_len(db, arg) else {
                        continue;
                    };
                    // Our engine: argument-hole query, rank of the original.
                    let comp = completer(project, ctx, abs, cfg, None);
                    let args: Vec<PartialExpr> = site
                        .args
                        .iter()
                        .enumerate()
                        .map(|(j, a)| {
                            if j == i {
                                PartialExpr::Hole
                            } else {
                                PartialExpr::Known(a.clone())
                            }
                        })
                        .collect();
                    let query = PartialExpr::KnownCall {
                        candidates: vec![site.target],
                        args,
                    };
                    let original = Expr::Call(site.target, site.args.clone());
                    let engine = comp.rank_of(&query, cfg.limit, |c| c.expr == original).rank;
                    // Prospector: convert a local into the parameter type.
                    let prospector = Prospector::new(db).rank_of(ctx, param_tys[i], arg, cfg.limit);
                    // InSynth: synthesise a term of the parameter type from
                    // scratch.
                    let insynth = InSynth::new(db).rank_of(ctx, param_tys[i], arg, cfg.limit);
                    out.push(BaselineOutcome {
                        engine,
                        prospector,
                        insynth,
                        chain_len,
                    });
                }
            },
        );
    }
    out
}

/// Renders the comparison table.
pub fn render(outcomes: &[BaselineOutcome]) -> String {
    let engine: RankStats = outcomes.iter().map(|o| o.engine).collect();
    let prospector: RankStats = outcomes.iter().map(|o| o.prospector).collect();
    let insynth: RankStats = outcomes.iter().map(|o| o.insynth).collect();
    let thresholds = [1usize, 3, 5, 10, 20];
    let mut table = TextTable::new(vec![
        "rank <=",
        "pex engine",
        "prospector-style",
        "insynth-style",
    ]);
    for &k in &thresholds {
        table.row(vec![
            k.to_string(),
            pct(engine.top(k)),
            pct(prospector.top(k)),
            pct(insynth.top(k)),
        ]);
    }
    // Split by chain length: Prospector's length heuristic is strong on
    // bare locals, weaker once the context signal matters.
    let mut detail = TextTable::new(vec![
        "argument form",
        "n",
        "pex top-10",
        "prospector top-10",
        "insynth top-10",
    ]);
    for (label, pred) in [
        (
            "bare local",
            Box::new(|n: usize| n == 0) as Box<dyn Fn(usize) -> bool>,
        ),
        ("1-link chain", Box::new(|n: usize| n == 1)),
        ("2+ link chain", Box::new(|n: usize| n >= 2)),
    ] {
        let subset: Vec<&BaselineOutcome> = outcomes.iter().filter(|o| pred(o.chain_len)).collect();
        let e: RankStats = subset.iter().map(|o| o.engine).collect();
        let p: RankStats = subset.iter().map(|o| o.prospector).collect();
        let s: RankStats = subset.iter().map(|o| o.insynth).collect();
        detail.row(vec![
            label.to_string(),
            subset.len().to_string(),
            pct(e.top(10)),
            pct(p.top(10)),
            pct(s.top(10)),
        ]);
    }
    format!(
        "Baseline comparison (paper Section 2.3, quantified): argument prediction on\n\
         local-rooted arguments (n = {}; Prospector's universe — no globals, no this)\n\n{}\n{}\n\
         Reading: on its own universe Prospector is competitive — its candidate list\n\
         contains ONLY local-rooted chains, so the intended one faces less competition,\n\
         while the pex list also offers this-chains and globals (which are the answer\n\
         for the arguments this table excludes). InSynth synthesises from scratch with\n\
         no programmer guidance, so its list mixes in nested calls the user never\n\
         wrote. Neither baseline can answer the paper's other query kinds\n\
         (?({{...}}) method discovery, joint operator completion) at all.\n",
        outcomes.len(),
        table.render(),
        detail.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::load_projects;

    #[test]
    fn baseline_comparison_runs() {
        let projects = load_projects(0.002);
        let cfg = ExperimentConfig {
            limit: 50,
            max_sites: Some(6),
            ..Default::default()
        };
        let outcomes = run(&projects, &cfg);
        assert!(
            !outcomes.is_empty(),
            "local-rooted arguments exist in the corpus"
        );
        // Prospector can only ever produce chains it searches; every
        // prospector hit must also be a local chain by construction.
        let rendered = render(&outcomes);
        assert!(rendered.contains("prospector-style"));
        assert!(rendered.contains("insynth-style"));
        assert!(rendered.contains("bare local"));
    }
}
