//! Rendering the observability registry: the `--metrics-out` JSON document
//! and the human-readable summary printed after `all`/`speed` runs.
//!
//! Everything here works on a [`MetricsSnapshot`], so the functions are
//! pure and testable against locally built registries; the CLI feeds them
//! `pex_obs::registry().snapshot()`.

use pex_obs::metrics::json_escape;
use pex_obs::{HistogramSnapshot, MetricsSnapshot};

/// `hits / total` as a fraction in `[0, 1]`; 0 when nothing was counted.
pub fn hit_rate(hits: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Cache statistics derived from a snapshot's raw counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Total lookups against the cache.
    pub lookups: u64,
    /// Lookups that were *not* served from the cache (fills or misses).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache.
    pub fn rate(&self) -> f64 {
        hit_rate(self.lookups.saturating_sub(self.misses), self.lookups)
    }
}

/// `MethodIndex::candidates_for_cached` memo statistics: fills are counted
/// inside the `OnceLock` initialiser, so `lookups - fills` = memo hits.
pub fn index_candidates_stats(snap: &MetricsSnapshot) -> CacheStats {
    CacheStats {
        lookups: counter(snap, "index.candidates.lookups"),
        misses: counter(snap, "index.candidates.fills"),
    }
}

/// `ConversionIndex::distance` statistics. Since the negative-answer
/// bitset, "no conversion" is itself a memoized answer (tallied under
/// `convindex.distance.negative`, see [`convindex_negative_lookups`]); a
/// miss survives only as the defensive fallthrough when the bitset and the
/// distance table disagree, so the hit rate should sit at ~1.0.
pub fn convindex_distance_stats(snap: &MetricsSnapshot) -> CacheStats {
    CacheStats {
        lookups: counter(snap, "convindex.distance.lookups"),
        misses: counter(snap, "convindex.distance.misses"),
    }
}

/// Distance lookups answered by the memoized negative bitset ("no
/// conversion exists", one bit probe).
pub fn convindex_negative_lookups(snap: &MetricsSnapshot) -> u64 {
    counter(snap, "convindex.distance.negative")
}

fn counter(snap: &MetricsSnapshot, name: &str) -> u64 {
    snap.counters.get(name).copied().unwrap_or(0)
}

/// Query outcome tallies (`engine.query.outcome.*`): how every finished
/// query's enumeration ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutcomeStats {
    /// Streams drained to genuine exhaustion.
    pub exhausted: u64,
    /// Stopped by the caller (rank limit, `take(n)`, early drop).
    pub limit: u64,
    /// Step budget ran out.
    pub step_budget: u64,
    /// Wall-clock deadline passed.
    pub deadline: u64,
    /// Cancel token tripped.
    pub cancelled: u64,
}

impl OutcomeStats {
    /// Queries that ended without covering their full search space.
    pub fn degraded(&self) -> u64 {
        self.step_budget + self.deadline + self.cancelled
    }

    /// All finished queries.
    pub fn total(&self) -> u64 {
        self.exhausted + self.limit + self.degraded()
    }
}

/// Reads the outcome tallies from a snapshot's raw counters.
pub fn query_outcome_stats(snap: &MetricsSnapshot) -> OutcomeStats {
    OutcomeStats {
        exhausted: counter(snap, "engine.query.outcome.exhausted"),
        limit: counter(snap, "engine.query.outcome.limit"),
        step_budget: counter(snap, "engine.query.outcome.step_budget"),
        deadline: counter(snap, "engine.query.outcome.deadline"),
        cancelled: counter(snap, "engine.query.outcome.cancelled"),
    }
}

/// The latency histograms worth surfacing per phase: tracing spans
/// (`span.*`) and per-site query latencies (`site.*`).
fn phase_histograms(snap: &MetricsSnapshot) -> Vec<(&String, &HistogramSnapshot)> {
    snap.histograms
        .iter()
        .filter(|(name, h)| (name.starts_with("span.") || name.starts_with("site.")) && h.count > 0)
        .collect()
}

/// Renders the full `--metrics-out` document: schema tag, run
/// configuration, the raw metric snapshot, and derived cache hit rates and
/// per-phase latency percentiles. `config` is a pre-rendered JSON object
/// describing the run (scale, threads, command).
pub fn metrics_json(snap: &MetricsSnapshot, config: &str) -> String {
    let mut derived = String::new();
    let idx = index_candidates_stats(snap);
    let conv = convindex_distance_stats(snap);
    derived.push_str(&format!(
        "    \"index_candidates_hit_rate\": {:.6},\n    \"index_candidates_lookups\": {},\n    \"index_candidates_fills\": {},\n",
        idx.rate(),
        idx.lookups,
        idx.misses
    ));
    derived.push_str(&format!(
        "    \"convindex_distance_hit_rate\": {:.6},\n    \"convindex_distance_lookups\": {},\n    \"convindex_distance_misses\": {},\n    \"convindex_distance_negative\": {},\n",
        conv.rate(),
        conv.lookups,
        conv.misses,
        convindex_negative_lookups(snap)
    ));
    let outcomes = query_outcome_stats(snap);
    derived.push_str(&format!(
        "    \"query_outcomes\": {{ \"exhausted\": {}, \"limit\": {}, \"step_budget\": {}, \"deadline\": {}, \"cancelled\": {}, \"degraded\": {} }},\n",
        outcomes.exhausted,
        outcomes.limit,
        outcomes.step_budget,
        outcomes.deadline,
        outcomes.cancelled,
        outcomes.degraded()
    ));
    let phases: Vec<String> = phase_histograms(snap)
        .into_iter()
        .map(|(name, h)| {
            format!(
                "      \"{}\": {{ \"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"mean_ns\": {:.1} }}",
                json_escape(name),
                h.count,
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
                h.max,
                h.mean()
            )
        })
        .collect();
    derived.push_str(&format!(
        "    \"phases\": {{\n{}\n    }}",
        phases.join(",\n")
    ));
    format!(
        "{{\n  \"schema\": \"pex-metrics/1\",\n  \"config\": {config},\n  \"derived\": {{\n{derived}\n  }},\n  \"metrics\": {}\n}}\n",
        snap.to_json()
    )
}

/// The human-readable summary printed at the end of `all`/`speed` runs:
/// per-phase latency percentiles, cache hit rates, and engine volume
/// counters.
pub fn render_summary(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("observability summary\n");
    let phases = phase_histograms(snap);
    if !phases.is_empty() {
        out.push_str(&format!(
            "  {:<22} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
            "latency", "count", "p50 ns", "p90 ns", "p99 ns", "max ns"
        ));
        for (name, h) in phases {
            out.push_str(&format!(
                "  {:<22} {:>9} {:>12} {:>12} {:>12} {:>12}\n",
                name,
                h.count,
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
                h.max
            ));
        }
    }
    let idx = index_candidates_stats(snap);
    let conv = convindex_distance_stats(snap);
    if idx.lookups > 0 {
        out.push_str(&format!(
            "  candidates_for memo: {:.1}% hit ({} lookups, {} fills)\n",
            idx.rate() * 100.0,
            idx.lookups,
            idx.misses
        ));
    }
    if conv.lookups > 0 {
        out.push_str(&format!(
            "  conversion distance: {:.1}% memoized ({} lookups, {} negative, {} unclassified)\n",
            conv.rate() * 100.0,
            conv.lookups,
            convindex_negative_lookups(snap),
            conv.misses
        ));
    }
    let queries = counter(snap, "engine.queries");
    if queries > 0 {
        out.push_str(&format!(
            "  engine: {} queries, {} candidates generated, {} emitted\n",
            queries,
            counter(snap, "engine.candidates.generated"),
            counter(snap, "engine.candidates.emitted")
        ));
    }
    let outcomes = query_outcome_stats(snap);
    if outcomes.total() > 0 {
        out.push_str(&format!(
            "  query outcomes: {} exhausted, {} limit, {} step-budget, {} deadline, {} cancelled\n",
            outcomes.exhausted,
            outcomes.limit,
            outcomes.step_budget,
            outcomes.deadline,
            outcomes.cancelled
        ));
        if outcomes.degraded() > 0 {
            out.push_str(&format!(
                "  WARNING: {} of {} queries were cut short (degraded results)\n",
                outcomes.degraded(),
                outcomes.total()
            ));
        }
    }
    let rank_terms: Vec<String> = snap
        .counters
        .iter()
        .filter(|(name, n)| name.starts_with("rank.term.") && **n > 0)
        .map(|(name, n)| {
            let term = name
                .trim_start_matches("rank.term.")
                .trim_end_matches(".evals");
            format!("{term}={n}")
        })
        .collect();
    if !rank_terms.is_empty() {
        out.push_str(&format!("  rank term evals: {}\n", rank_terms.join(", ")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_obs::Registry;

    fn fake_snapshot() -> MetricsSnapshot {
        let r = Registry::new();
        r.counter("index.candidates.lookups").add(100);
        r.counter("index.candidates.fills").add(10);
        r.counter("convindex.distance.lookups").add(50);
        r.counter("convindex.distance.negative").add(25);
        r.counter("engine.queries").add(7);
        r.counter("engine.candidates.generated").add(70);
        r.counter("engine.candidates.emitted").add(42);
        r.counter("rank.term.depth.evals").add(9);
        r.counter("engine.query.outcome.exhausted").add(4);
        r.counter("engine.query.outcome.limit").add(2);
        r.counter("engine.query.outcome.deadline").add(1);
        for v in [100u64, 200, 300] {
            r.histogram("span.query").record(v);
        }
        r.histogram("site.methods.ns").record(5000);
        r.histogram("unrelated.hist").record(1);
        r.snapshot()
    }

    #[test]
    fn hit_rates_derive_from_counters() {
        let snap = fake_snapshot();
        let idx = index_candidates_stats(&snap);
        assert_eq!(idx.lookups, 100);
        assert_eq!(idx.misses, 10);
        assert!((idx.rate() - 0.9).abs() < 1e-9);
        let conv = convindex_distance_stats(&snap);
        assert!(
            (conv.rate() - 1.0).abs() < 1e-9,
            "memoized negatives are hits"
        );
        assert_eq!(convindex_negative_lookups(&snap), 25);
        assert_eq!(hit_rate(0, 0), 0.0);
        // Missing counters degrade to zero, not panic.
        let empty = Registry::new().snapshot();
        assert_eq!(index_candidates_stats(&empty).rate(), 0.0);
    }

    #[test]
    fn outcome_stats_derive_from_counters() {
        let snap = fake_snapshot();
        let o = query_outcome_stats(&snap);
        assert_eq!(o.exhausted, 4);
        assert_eq!(o.limit, 2);
        assert_eq!(o.deadline, 1);
        assert_eq!(o.step_budget, 0);
        assert_eq!(o.degraded(), 1);
        assert_eq!(o.total(), 7);
        // Missing counters degrade to zero, not panic.
        let empty = query_outcome_stats(&Registry::new().snapshot());
        assert_eq!(empty.total(), 0);
    }

    #[test]
    fn metrics_json_has_schema_config_and_derived_sections() {
        let snap = fake_snapshot();
        let json = metrics_json(&snap, "{ \"scale\": 0.02 }");
        assert!(json.contains("\"schema\": \"pex-metrics/1\""));
        assert!(json.contains("\"scale\": 0.02"));
        assert!(json.contains("\"index_candidates_hit_rate\": 0.900000"));
        assert!(json.contains("\"query_outcomes\""));
        assert!(json.contains("\"deadline\": 1"));
        assert!(json.contains("\"convindex_distance_hit_rate\": 1.000000"));
        assert!(json.contains("\"convindex_distance_negative\": 25"));
        assert!(json.contains("\"span.query\""));
        assert!(json.contains("\"p99_ns\""));
        assert!(json.contains("\"rank.term.depth.evals\": 9"));
        // Phase list excludes histograms outside span.*/site.*.
        let derived_end = json.find("\"metrics\"").unwrap();
        assert!(!json[..derived_end].contains("unrelated.hist"));
        // Balanced braces (cheap well-formedness check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn summary_mentions_phases_caches_and_terms() {
        let s = render_summary(&fake_snapshot());
        assert!(s.contains("span.query"));
        assert!(s.contains("site.methods.ns"));
        assert!(s.contains("candidates_for memo: 90.0% hit"));
        assert!(s.contains(
            "conversion distance: 100.0% memoized (50 lookups, 25 negative, 0 unclassified)"
        ));
        assert!(s.contains("7 queries"));
        assert!(s.contains("depth=9"));
        assert!(s.contains(
            "query outcomes: 4 exhausted, 2 limit, 0 step-budget, 1 deadline, 0 cancelled"
        ));
        assert!(s.contains("WARNING: 1 of 7 queries were cut short"));
        // An empty registry yields just the header, no panics.
        let empty = render_summary(&Registry::new().snapshot());
        assert!(empty.starts_with("observability summary"));
    }
}
