//! The paper's model of Visual Studio Intellisense (Section 5.1):
//!
//! "We modeled Intellisense as being given the receiver (or receiver type
//! for static calls) and listing its members in alphabetic order.
//! Intellisense knows which argument is the receiver but is not using
//! knowledge of the arguments. It was considered to list only instance
//! members for instance receivers and only static members for static
//! receivers."

use pex_model::{Context, Database, ValueTy};

use crate::extract::CallSite;

/// Alphabetical rank (0-based) of the intended method in the Intellisense
/// member list, or `None` when the receiver's type cannot be determined.
pub fn intellisense_rank(db: &Database, ctx: &Context, site: &CallSite) -> Option<usize> {
    let md = db.method(site.target);
    let mut names: Vec<&str> = if md.is_static() {
        // Static call: list the static members of the declaring type.
        let t = md.declaring();
        let mut out: Vec<&str> = db
            .methods_of(t)
            .iter()
            .filter(|m| db.method(**m).is_static())
            .map(|m| db.method(*m).name())
            .collect();
        out.extend(
            db.static_fields(t, ctx.enclosing_type)
                .iter()
                .map(|f| db.field(*f).name()),
        );
        out
    } else {
        // Instance call: list instance members of the receiver's static type.
        let recv = site.args.first()?;
        let recv_ty = match db.expr_ty(recv, ctx).ok()? {
            ValueTy::Known(t) => t,
            ValueTy::Wildcard => return None,
        };
        let mut out: Vec<&str> = Vec::new();
        for owner in db.member_lookup_chain(recv_ty) {
            for m in db.methods_of(owner) {
                let cd = db.method(*m);
                if !cd.is_static() && db.accessible(cd.visibility(), owner, ctx.enclosing_type) {
                    out.push(cd.name());
                }
            }
        }
        out.extend(
            db.instance_fields(recv_ty, ctx.enclosing_type)
                .iter()
                .map(|f| db.field(*f).name()),
        );
        out
    };
    names.sort_unstable();
    names.dedup();
    let target = db.method(site.target).name();
    names.iter().position(|n| *n == target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{extract, site_context};
    use pex_model::minics::compile;

    #[test]
    fn alphabetical_rank_of_members() {
        let db = compile(
            r#"
            namespace N {
                class Box {
                    void Alpha();
                    void Mid();
                    void Zoo();
                    int Beta;
                    static void SAlpha();
                    static void SZoo();
                }
                class Client {
                    void M(N.Box b) {
                        b.Mid();
                        N.Box.SZoo();
                    }
                }
            }
            "#,
        )
        .unwrap();
        let ex = extract(&db);
        // Instance: members sorted [Alpha, Beta, Mid, Zoo] -> Mid at 2.
        let inst = ex
            .calls
            .iter()
            .find(|c| db.method(c.target).name() == "Mid")
            .unwrap();
        let ctx = site_context(&db, inst.enclosing, inst.stmt);
        assert_eq!(intellisense_rank(&db, &ctx, inst), Some(2));
        // Static: members sorted [SAlpha, SZoo] -> SZoo at 1.
        let stat = ex
            .calls
            .iter()
            .find(|c| db.method(c.target).name() == "SZoo")
            .unwrap();
        let ctx = site_context(&db, stat.enclosing, stat.stmt);
        assert_eq!(intellisense_rank(&db, &ctx, stat), Some(1));
    }
}
