//! Experiment 5.1 — predicting method names (Table 1, Figures 9-12, and
//! the Section 5.1 speed claim).
//!
//! For every call with at least two arguments (receiver included), every
//! subset of one or two arguments becomes a `?({...})` query; the outcome
//! is the best rank of the intended method across those queries.

use std::time::Instant;

use pex_core::{Completion, PartialExpr};
use pex_model::Expr;

use crate::extract::CallSite;
use crate::harness::{completer, map_sites, sample, ExperimentConfig, Project};
use crate::intellisense::intellisense_rank;
use crate::stats::{bar, pct, RankStats, TextTable};

/// Outcome of the best-subset search for one call.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// Index into the project list.
    pub project: usize,
    /// Whether the intended method is static.
    pub is_static: bool,
    /// Total arguments of the intended call (receiver included).
    pub full_arity: usize,
    /// Best rank over all 1- and 2-argument subsets (0-based).
    pub best: Option<usize>,
    /// Best rank over 1-argument subsets only.
    pub best_1arg: Option<usize>,
    /// Best rank over subsets of up to 3 arguments (only measured when
    /// [`ExperimentConfig::max_subset`] is at least 3).
    pub best_3arg: Option<usize>,
    /// Best rank when the engine additionally knows the return type.
    pub best_ret: Option<usize>,
    /// Alphabetical Intellisense rank of the intended method.
    pub alpha: Option<usize>,
    /// Whether any subset query was cut short (step budget, deadline, or
    /// cancellation). A truncated call with no rank is *undecided* — the
    /// tables count it separately instead of as "not found".
    pub truncated: bool,
    /// Wall-clock nanoseconds of the best-ranked query (0 = unmeasured:
    /// no subset ranked the intended method).
    pub nanos: u128,
}

/// All index subsets of `0..n` with 1 to `max` elements, smaller first.
fn subsets(n: usize, max: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    for i in 0..n {
        out.push(vec![i]);
    }
    if max >= 2 {
        for i in 0..n {
            for j in i + 1..n {
                out.push(vec![i, j]);
            }
        }
    }
    if max >= 3 {
        for i in 0..n {
            for j in i + 1..n {
                for k in j + 1..n {
                    out.push(vec![i, j, k]);
                }
            }
        }
    }
    out
}

/// Runs the experiment over all projects. Sites replay in parallel (see
/// [`map_sites`]); the outcome order is independent of the thread count.
pub fn run(projects: &[Project], cfg: &ExperimentConfig) -> Vec<CallOutcome> {
    let _span = pex_obs::span("phase.methods");
    let mut out = Vec::new();
    for (pi, project) in projects.iter().enumerate() {
        let sites: Vec<CallSite> = project
            .extracted
            .calls
            .iter()
            .filter(|c| c.args.len() >= 2)
            .cloned()
            .collect();
        let sites = sample(&sites, cfg.max_sites);
        out.extend(map_sites(
            &project.db,
            cfg.use_abs.then_some(&project.abs_cache),
            &sites,
            |c| (c.enclosing, c.stmt),
            cfg.threads,
            Some(&cfg.cancel),
            |site, ctx, abs, out| {
                let comp = completer(project, ctx, abs, cfg, None);
                let md = project.db.method(site.target);
                let ret = md.return_type();
                let comp_ret = completer(project, ctx, abs, cfg, Some(ret));
                let target = site.target;
                let pred = move |c: &Completion| matches!(c.expr, Expr::Call(m, _) if m == target);

                let mut best: Option<usize> = None;
                let mut best_1arg: Option<usize> = None;
                let mut best_3arg: Option<usize> = None;
                let mut best_ret: Option<usize> = None;
                let mut truncated = false;
                let mut best_nanos: u128 = 0;
                for subset in subsets(site.args.len(), cfg.max_subset) {
                    let query = PartialExpr::UnknownCall(
                        subset
                            .iter()
                            .map(|&i| PartialExpr::Known(site.args[i].clone()))
                            .collect(),
                    );
                    let t0 = Instant::now();
                    let res = comp.rank_of(&query, cfg.limit, pred);
                    let nanos = t0.elapsed().as_nanos();
                    truncated |= res.is_degraded();
                    let rank = res.rank;
                    if rank.is_some() && (best_3arg.is_none() || rank < best_3arg) {
                        best_3arg = rank;
                    }
                    if subset.len() <= 2 && rank.is_some() && (best.is_none() || rank < best) {
                        best = rank;
                        best_nanos = nanos;
                    }
                    if subset.len() == 1
                        && rank.is_some()
                        && (best_1arg.is_none() || rank < best_1arg)
                    {
                        best_1arg = rank;
                    }
                    let rres = comp_ret.rank_of(&query, cfg.limit, pred);
                    truncated |= rres.is_degraded();
                    let rrank = rres.rank;
                    if rrank.is_some() && (best_ret.is_none() || rrank < best_ret) {
                        best_ret = rrank;
                    }
                    if best == Some(0) && best_ret == Some(0) && best_1arg.is_some() {
                        break; // cannot improve further
                    }
                }
                if best_nanos > 0 {
                    pex_obs::histogram!("site.methods.ns", best_nanos as u64);
                }
                out.push(CallOutcome {
                    project: pi,
                    is_static: md.is_static(),
                    full_arity: site.args.len(),
                    best,
                    best_1arg,
                    best_3arg: if cfg.max_subset >= 3 { best_3arg } else { None },
                    best_ret,
                    alpha: intellisense_rank(&project.db, ctx, site),
                    truncated,
                    nanos: best_nanos,
                });
            },
        ));
    }
    out
}

/// Table 1: per-project call counts and top-10 / top-10..20 counts, plus
/// how many calls the engine could not decide within its budget.
pub fn render_table1(projects: &[Project], outcomes: &[CallOutcome]) -> String {
    let mut table = TextTable::new(vec![
        "Program",
        "# calls",
        "# top 10",
        "# top 10..20",
        "# truncated",
    ]);
    let (mut tc, mut t10, mut t20, mut ttr) = (0usize, 0usize, 0usize, 0usize);
    for (pi, project) in projects.iter().enumerate() {
        let ranks: RankStats = outcomes
            .iter()
            .filter(|o| o.project == pi)
            .map(|o| (o.best, o.truncated))
            .collect();
        let top10 = ranks.count_top(10);
        let top20 = ranks.count_top(20) - top10;
        table.row(vec![
            project.name.to_string(),
            ranks.len().to_string(),
            top10.to_string(),
            top20.to_string(),
            ranks.truncated().to_string(),
        ]);
        tc += ranks.len();
        t10 += top10;
        t20 += top20;
        ttr += ranks.truncated();
    }
    let all: RankStats = outcomes.iter().map(|o| (o.best, o.truncated)).collect();
    table.row(vec![
        "Totals".to_string(),
        tc.to_string(),
        format!("{} ({})", t10, pct(all.top(10))),
        format!("{} ({})", t20, pct(all.top(20) - all.top(10))),
        ttr.to_string(),
    ]);
    format!(
        "Table 1. Summary of quality of best results for each call\n\
         (truncated = the engine hit its step budget or deadline before deciding;\n\
         proportions are over decided calls only)\n\n{}",
        table.render()
    )
}

/// Figure 9: CDF of the best rank, overall and split by call kind.
pub fn render_fig9(outcomes: &[CallOutcome]) -> String {
    let all: RankStats = outcomes.iter().map(|o| (o.best, o.truncated)).collect();
    let inst: RankStats = outcomes
        .iter()
        .filter(|o| !o.is_static)
        .map(|o| (o.best, o.truncated))
        .collect();
    let stat: RankStats = outcomes
        .iter()
        .filter(|o| o.is_static)
        .map(|o| (o.best, o.truncated))
        .collect();
    let thresholds = [1usize, 2, 3, 5, 10, 15, 20, 30];
    let mut table = TextTable::new(vec!["rank <=", "all", "instance", "static", "all (bar)"]);
    for &k in &thresholds {
        table.row(vec![
            k.to_string(),
            pct(all.top(k)),
            pct(inst.top(k)),
            pct(stat.top(k)),
            bar(all.top(k), 30),
        ]);
    }
    format!(
        "Figure 9. Proportion of calls of each type with the best rank at least the given value\n\
         (n = {} calls: {} instance, {} static; {} truncated calls excluded)\n\n{}",
        all.len(),
        inst.len(),
        stat.len(),
        all.truncated(),
        table.render()
    )
}

/// Figure 10: how many arguments the query needs, by call arity. When the
/// run measured 3-argument subsets, a third column reproduces the paper's
/// remark that "adding a third argument leads to only negligible
/// improvement".
pub fn render_fig10(outcomes: &[CallOutcome]) -> String {
    let has_three = outcomes.iter().any(|o| o.best_3arg.is_some());
    let mut headers = vec![
        "call arity",
        "# calls",
        "top20 w/ 1 arg",
        "top20 w/ <=2 args",
    ];
    if has_three {
        headers.push("top20 w/ <=3 args");
    }
    let mut table = TextTable::new(headers);
    let max_arity = outcomes.iter().map(|o| o.full_arity).max().unwrap_or(2);
    for arity in 2..=max_arity.min(10) {
        let of_arity: Vec<&CallOutcome> =
            outcomes.iter().filter(|o| o.full_arity == arity).collect();
        if of_arity.is_empty() {
            continue;
        }
        let one: RankStats = of_arity.iter().map(|o| o.best_1arg).collect();
        let two: RankStats = of_arity.iter().map(|o| o.best).collect();
        let mut row = vec![
            arity.to_string(),
            of_arity.len().to_string(),
            pct(one.top(20)),
            pct(two.top(20)),
        ];
        if has_three {
            let three: RankStats = of_arity.iter().map(|o| o.best_3arg).collect();
            row.push(pct(three.top(20)));
        }
        table.row(row);
    }
    format!(
        "Figure 10. Calls guessable (top 20) by argument-subset size, by arity\n\n{}",
        table.render()
    )
}

fn diff_histogram(pairs: &[(usize, usize)]) -> TextTable {
    let buckets: [(&str, i64, i64); 7] = [
        ("<= -20 (ours much better)", i64::MIN, -20),
        ("-19 .. -10", -19, -10),
        ("-9 .. -1", -9, -1),
        ("0", 0, 0),
        ("1 .. 9", 1, 9),
        ("10 .. 19", 10, 19),
        (">= 20 (Intellisense better)", 20, i64::MAX),
    ];
    let mut table = TextTable::new(vec!["rank difference (ours - IS)", "calls", "share"]);
    let n = pairs.len().max(1);
    for (label, lo, hi) in buckets {
        let count = pairs
            .iter()
            .filter(|(ours, alpha)| {
                let d = *ours as i64 - *alpha as i64;
                d >= lo && d <= hi
            })
            .count();
        table.row(vec![
            label.to_string(),
            count.to_string(),
            pct(count as f64 / n as f64),
        ]);
    }
    table
}

/// Figure 11: rank difference between our best query and the Intellisense
/// model (negative = we rank the intended method higher).
pub fn render_fig11(outcomes: &[CallOutcome]) -> String {
    let pairs: Vec<(usize, usize)> = outcomes
        .iter()
        .filter_map(|o| Some((o.best?, o.alpha?)))
        .collect();
    format!(
        "Figure 11. Difference in rank between our algorithm and Intellisense\n\
         (n = {} calls where both produced the intended method)\n\n{}",
        pairs.len(),
        diff_histogram(&pairs).render()
    )
}

/// Figure 12: the same comparison when our engine filters by the known
/// return type.
pub fn render_fig12(outcomes: &[CallOutcome]) -> String {
    let pairs: Vec<(usize, usize)> = outcomes
        .iter()
        .filter_map(|o| Some((o.best_ret?, o.alpha?)))
        .collect();
    format!(
        "Figure 12. Rank difference vs Intellisense, filtering by the correct return type\n\
         (n = {} calls)\n\n{}",
        pairs.len(),
        diff_histogram(&pairs).render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::load_projects;

    fn tiny() -> (Vec<Project>, Vec<CallOutcome>) {
        let projects = load_projects(0.002);
        let cfg = ExperimentConfig {
            limit: 50,
            max_sites: Some(5),
            ..Default::default()
        };
        let outcomes = run(&projects, &cfg);
        (projects, outcomes)
    }

    #[test]
    fn subsets_enumerate_singles_and_pairs() {
        assert_eq!(subsets(2, 2), vec![vec![0], vec![1], vec![0, 1]]);
        assert_eq!(subsets(3, 2).len(), 3 + 3);
        assert_eq!(subsets(3, 3).len(), 3 + 3 + 1);
        assert_eq!(subsets(4, 3).len(), 4 + 6 + 4);
        assert!(subsets(1, 2).len() == 1);
        assert_eq!(subsets(3, 1).len(), 3);
    }

    #[test]
    fn experiment_produces_outcomes_and_tables() {
        let (projects, outcomes) = tiny();
        assert!(!outcomes.is_empty());
        // Most calls should be findable: these are real calls from the
        // corpus, so at least *some* subset ranks them.
        let found = outcomes.iter().filter(|o| o.best.is_some()).count();
        assert!(found * 2 >= outcomes.len(), "{found}/{}", outcomes.len());
        // Return-type filtering never hurts the rank.
        for o in &outcomes {
            if let (Some(b), Some(r)) = (o.best, o.best_ret) {
                assert!(r <= b, "filtering must improve or preserve rank: {o:?}");
            }
        }
        let t1 = render_table1(&projects, &outcomes);
        assert!(t1.contains("Paint.NET"));
        assert!(t1.contains("Totals"));
        assert!(t1.contains("# truncated"));
        assert!(render_fig9(&outcomes).contains("instance"));
        assert!(render_fig10(&outcomes).contains("call arity"));
        assert!(render_fig11(&outcomes).contains("rank difference"));
        assert!(render_fig12(&outcomes).contains("return type"));
    }

    /// The headline bug: a query cut short by its budget must surface as
    /// truncated, end to end — engine outcome, per-site flag, and the
    /// Table 1 truncated column — never as "not in the top n".
    #[test]
    fn deadline_zero_reports_sites_as_truncated_not_unfound() {
        let projects = load_projects(0.002);
        let cfg = ExperimentConfig {
            limit: 50,
            max_sites: Some(4),
            deadline_ms: Some(0),
            ..Default::default()
        };
        let outcomes = run(&projects, &cfg);
        assert!(!outcomes.is_empty());
        // A zero deadline trips on the first budget poll of every query.
        for o in &outcomes {
            assert!(o.truncated, "zero-deadline site must be truncated: {o:?}");
            assert_eq!(o.best, None);
        }
        // The accounting keeps them out of the rank CDF denominator.
        let stats: crate::stats::RankStats =
            outcomes.iter().map(|o| (o.best, o.truncated)).collect();
        assert_eq!(stats.decided(), 0);
        assert_eq!(stats.truncated(), outcomes.len());
        let t1 = render_table1(&projects, &outcomes);
        let totals = t1
            .lines()
            .find(|l| l.starts_with("Totals"))
            .expect("table has a totals row")
            .to_string();
        assert!(
            totals.contains(&outcomes.len().to_string()),
            "truncated column carries the count: {totals}"
        );
    }

    /// Cancelling the config's token mid-run stops the replay gracefully:
    /// no panic, and a pre-cancelled run yields no outcomes at all.
    #[test]
    fn cancelled_config_drains_without_outcomes() {
        let projects = load_projects(0.002);
        let cfg = ExperimentConfig {
            limit: 50,
            max_sites: Some(4),
            ..Default::default()
        };
        cfg.cancel.cancel();
        let outcomes = run(&projects, &cfg);
        assert!(outcomes.is_empty(), "cancelled replay visits no sites");
    }
}
