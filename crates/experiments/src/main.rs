//! `pex-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! pex-experiments <command> [--scale S] [--limit N] [--max-sites N]
//!                           [--t2-max-sites N] [--no-abs] [--threads N]
//!                           [--deadline-ms N] [--time-limit-s N]
//!                           [--out DIR] [--metrics-out FILE] [--trace FILE]
//!
//! commands:
//!   all       everything below, in order
//!   examples  Figures 2-4 (worked examples on the builtin corpora)
//!   table1    Table 1 (method-name prediction per project)
//!   fig9      rank CDF, overall / instance / static
//!   fig10     arguments needed, by call arity
//!   fig11     rank difference vs the Intellisense model
//!   fig12     same, knowing the return type
//!   fig13     argument-prediction rank CDF
//!   fig14     argument expression-form distribution
//!   fig15     assignment lookup removal
//!   fig16     comparison lookup removal
//!   table2    ranking-term sensitivity (15 configurations)
//!   speed     query latency vs the paper's interactive thresholds
//! ```

use std::path::{Path, PathBuf};

use pex_experiments::{
    args as args_exp, baselines, figures, lookups, methods, obs_report, scaling, sensitivity,
    serve_bench, speed, ExperimentConfig,
};
use pex_obs::{JsonLinesSink, StderrPrettySink, TeeSink};

/// Unwraps a filesystem result for a user-requested artefact; a failure
/// (bad path, permissions, full disk) is environment error, not a bug, so
/// it reports and exits instead of panicking.
fn io_or_exit<T>(what: &str, path: &Path, res: std::io::Result<T>) -> T {
    res.unwrap_or_else(|e| {
        pex_obs::message!("cannot {what} {}: {e}", path.display());
        pex_obs::flush_sink();
        std::process::exit(2);
    })
}

/// End-of-run observability surface: the human-readable summary (for
/// `all`/`speed`), the `--metrics-out` document, and the sink flush (the
/// trace writer is buffered and the global sink never drops).
fn finish(command: &str, cfg: &ExperimentConfig, metrics_out: Option<&Path>) {
    let snap = pex_obs::registry().snapshot();
    if command == "all" || command == "speed" {
        pex_obs::message!("{}", obs_report::render_summary(&snap).trim_end());
    }
    if let Some(path) = metrics_out {
        let config = format!(
            "{{ \"command\": \"{}\", \"scale\": {}, \"limit\": {}, \"threads\": {}, \"deadline_ms\": {} }}",
            command,
            cfg.scale,
            cfg.limit,
            cfg.threads.map_or("null".to_owned(), |n| n.to_string()),
            cfg.deadline_ms.map_or("null".to_owned(), |n| n.to_string())
        );
        io_or_exit(
            "write --metrics-out file",
            path,
            std::fs::write(path, obs_report::metrics_json(&snap, &config)),
        );
        pex_obs::message!("wrote {}", path.display());
    }
    pex_obs::flush_sink();
}

fn main() {
    // Structured diagnostics: stderr pretty-printer by default; `--trace`
    // tees span events to a JSON-lines file on top of it.
    pex_obs::set_sink(Box::new(StderrPrettySink));
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "--help" || argv[0] == "-h" {
        print!("{}", HELP);
        return;
    }
    let command = argv[0].clone();
    // A bad flag value is user error, not a bug: report it and exit 2
    // instead of panicking.
    fn parse_or_exit<T: std::str::FromStr>(flag: &str, value: &str, wants: &str) -> T {
        value.parse().unwrap_or_else(|_| {
            pex_obs::message!("{flag} takes {wants}, got `{value}`");
            pex_obs::flush_sink();
            std::process::exit(2);
        })
    }
    let mut cfg = ExperimentConfig::default();
    let mut out_dir: Option<PathBuf> = None;
    let mut t2_max_sites: Option<usize> = Some(12);
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut time_limit_s: Option<u64> = None;
    let mut serve_cfg = serve_bench::ServeBenchConfig::default();
    let mut bench_out = PathBuf::from("BENCH_results.json");
    let mut i = 1;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let mut take_value = || -> String {
            i += 1;
            argv.get(i).cloned().unwrap_or_else(|| {
                pex_obs::message!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag {
            "--scale" => cfg.scale = parse_or_exit(flag, &take_value(), "a float"),
            "--limit" => {
                cfg.limit = parse_or_exit(flag, &take_value(), "an integer");
                serve_cfg.limit = cfg.limit;
            }
            "--max-sites" => cfg.max_sites = Some(parse_or_exit(flag, &take_value(), "an integer")),
            "--t2-max-sites" => {
                t2_max_sites = Some(parse_or_exit(flag, &take_value(), "an integer"))
            }
            "--no-abs" => cfg.use_abs = false,
            "--three-args" => cfg.max_subset = 3,
            "--threads" => cfg.threads = Some(parse_or_exit(flag, &take_value(), "an integer")),
            "--deadline-ms" => {
                cfg.deadline_ms = Some(parse_or_exit(flag, &take_value(), "milliseconds"))
            }
            "--time-limit-s" => time_limit_s = Some(parse_or_exit(flag, &take_value(), "seconds")),
            "--out" => out_dir = Some(PathBuf::from(take_value())),
            "--metrics-out" => metrics_out = Some(PathBuf::from(take_value())),
            "--trace" => trace_out = Some(PathBuf::from(take_value())),
            "--clients" => serve_cfg.clients = parse_or_exit(flag, &take_value(), "an integer"),
            "--qps" => serve_cfg.qps = parse_or_exit(flag, &take_value(), "a rate"),
            "--duration-s" => {
                serve_cfg.duration = std::time::Duration::from_secs_f64(parse_or_exit(
                    flag,
                    &take_value(),
                    "seconds",
                ))
            }
            "--queue-cap" => serve_cfg.queue_cap = parse_or_exit(flag, &take_value(), "an integer"),
            "--live-stats" => serve_cfg.live_stats = true,
            "--tenants" => serve_cfg.tenants = parse_or_exit(flag, &take_value(), "an integer"),
            "--open-loop" => serve_cfg.open_loop = true,
            "--edit-rate" => serve_cfg.edit_rate = parse_or_exit(flag, &take_value(), "an integer"),
            "--bench-out" => bench_out = PathBuf::from(take_value()),
            other => {
                pex_obs::message!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if let Some(path) = &trace_out {
        let trace = JsonLinesSink::create(path).unwrap_or_else(|e| {
            pex_obs::message!("cannot create --trace file {}: {e}", path.display());
            pex_obs::flush_sink();
            std::process::exit(2);
        });
        pex_obs::set_sink(Box::new(TeeSink(
            Box::new(StderrPrettySink),
            Box::new(trace),
        )));
    }
    // Harness-level watchdog: after the limit, cancel the shared token so
    // in-flight queries stop at their next budget poll and the replay
    // workers drain without taking new sites. The run then finishes
    // normally, reporting whatever completed (truncated sites are counted
    // as such in every table).
    if let Some(secs) = time_limit_s {
        let token = cfg.cancel.clone();
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_secs(secs));
            pex_obs::message!("time limit of {secs}s reached; cancelling in-flight queries");
            token.cancel();
        });
    }

    let sections: std::cell::RefCell<Vec<(String, String)>> = std::cell::RefCell::new(Vec::new());
    let emit = |name: &str, content: String| {
        println!("{content}");
        if let Some(dir) = &out_dir {
            io_or_exit("create --out directory", dir, std::fs::create_dir_all(dir));
            let path = dir.join(format!("{name}.txt"));
            io_or_exit(
                "write output file",
                &path,
                std::fs::write(&path, content.as_bytes()),
            );
            pex_obs::message!("wrote {}", path.display());
        }
        sections.borrow_mut().push((name.to_owned(), content));
    };

    let wants = |what: &str| command == what || command == "all";

    if command == "serve-bench" {
        // Shared flags map onto the server: --threads sizes the worker
        // pool, --limit and --deadline-ms become the request defaults.
        if let Some(threads) = cfg.threads {
            serve_cfg.workers = threads.max(1);
        }
        serve_cfg.deadline_ms = cfg.deadline_ms;
        if serve_cfg.open_loop && serve_cfg.qps <= 0.0 {
            pex_obs::message!("--open-loop needs a --qps schedule to send on");
            pex_obs::flush_sink();
            std::process::exit(2);
        }
        pex_obs::message!(
            "serve-bench: {} clients ({} loop, {} tenants) for {:.1}s against {} workers...",
            serve_cfg.clients,
            if serve_cfg.open_loop {
                "open"
            } else {
                "closed"
            },
            serve_cfg.tenants.max(1),
            serve_cfg.duration.as_secs_f64(),
            serve_cfg.workers
        );
        let report = serve_bench::run(&serve_cfg);
        emit("serve-bench", report.render().trim_end().to_owned());
        match report.merge_into_bench_results(&bench_out) {
            Ok(()) => pex_obs::message!("merged serve section into {}", bench_out.display()),
            Err(e) => {
                pex_obs::message!("{e}");
                pex_obs::flush_sink();
                std::process::exit(2);
            }
        }
        finish(&command, &cfg, metrics_out.as_deref());
        return;
    }

    if command == "dump" {
        // Write each generated project back out as mini-C# source.
        let projects = pex_experiments::load_projects(cfg.scale);
        let dir = out_dir
            .clone()
            .unwrap_or_else(|| PathBuf::from("corpus-dump"));
        io_or_exit("create dump directory", &dir, std::fs::create_dir_all(&dir));
        for p in &projects {
            let source = pex_experiments::harness::dump_project(p);
            let path = dir.join(format!("{}.mcs", p.name.replace([' ', '.'], "_")));
            io_or_exit("write project source", &path, std::fs::write(&path, source));
            pex_obs::message!("wrote {}", path.display());
        }
        finish(&command, &cfg, metrics_out.as_deref());
        return;
    }

    if wants("examples") {
        emit("fig2", figures::render_fig2());
        emit("fig3", figures::render_fig3());
        emit("fig4", figures::render_fig4());
        if command == "examples" {
            finish(&command, &cfg, metrics_out.as_deref());
            return;
        }
    }

    let needs_corpus = [
        "table1",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "table2",
        "speed",
        "baselines",
        "scaling",
        "all",
        "dump",
    ]
    .contains(&command.as_str());
    if !needs_corpus {
        pex_obs::message!("unknown command `{command}`\n");
        print!("{HELP}");
        pex_obs::flush_sink();
        std::process::exit(2);
    }

    pex_obs::message!(
        "generating the 7 Table 1 projects at scale {} (use --scale to change)...",
        cfg.scale
    );
    let projects = pex_experiments::load_projects(cfg.scale);
    for p in &projects {
        pex_obs::message!(
            "  {:<12} {:>5} methods, {:>5} calls, {:>4} assignments, {:>4} comparisons",
            p.name,
            p.db.method_count(),
            p.extracted.calls.len(),
            p.extracted.assigns.len(),
            p.extracted.cmps.len(),
        );
    }

    let methods_needed = ["table1", "fig9", "fig10", "fig11", "fig12", "speed"]
        .iter()
        .any(|c| wants(c));
    let method_outcomes = if methods_needed {
        pex_obs::message!("running experiment 5.1 (method names)...");
        methods::run(&projects, &cfg)
    } else {
        Vec::new()
    };
    if wants("table1") {
        emit(
            "table1",
            methods::render_table1(&projects, &method_outcomes),
        );
    }
    if wants("fig9") {
        emit("fig9", methods::render_fig9(&method_outcomes));
    }
    if wants("fig10") {
        emit("fig10", methods::render_fig10(&method_outcomes));
    }
    if wants("fig11") {
        emit("fig11", methods::render_fig11(&method_outcomes));
    }
    if wants("fig12") {
        emit("fig12", methods::render_fig12(&method_outcomes));
    }

    let args_needed = ["fig13", "fig14", "speed"].iter().any(|c| wants(c));
    let arg_outcomes = if args_needed {
        pex_obs::message!("running experiment 5.2 (method arguments)...");
        args_exp::run(&projects, &cfg)
    } else {
        Vec::new()
    };
    if wants("fig13") {
        emit("fig13", args_exp::render_fig13(&arg_outcomes));
    }
    if wants("fig14") {
        emit("fig14", args_exp::render_fig14(&arg_outcomes));
    }

    let lookups_needed = ["fig15", "fig16", "speed"].iter().any(|c| wants(c));
    let (assign_outcomes, cmp_outcomes) = if lookups_needed {
        pex_obs::message!("running experiment 5.3 (field lookups)...");
        lookups::run(&projects, &cfg)
    } else {
        (Vec::new(), Vec::new())
    };
    if wants("fig15") {
        emit("fig15", lookups::render_fig15(&assign_outcomes));
    }
    if wants("fig16") {
        emit("fig16", lookups::render_fig16(&cmp_outcomes));
    }

    if wants("speed") {
        let rows = vec![
            speed::SpeedRow::new(
                "methods (best query)",
                method_outcomes.iter().map(|o| o.nanos),
            ),
            speed::SpeedRow::new("arguments", arg_outcomes.iter().map(|o| o.nanos)),
            speed::SpeedRow::new(
                "lookups",
                assign_outcomes
                    .iter()
                    .map(|o| o.nanos)
                    .chain(cmp_outcomes.iter().map(|o| o.nanos)),
            ),
        ];
        emit("speed", speed::render_speed(&rows));
    }

    if wants("baselines") {
        pex_obs::message!("running the Prospector-style baseline comparison...");
        let bl_cfg = ExperimentConfig {
            max_sites: cfg.max_sites.or(Some(60)),
            ..cfg.clone()
        };
        let outcomes = baselines::run(&projects, &bl_cfg);
        emit("baselines", baselines::render(&outcomes));
    }

    if command == "scaling" {
        pex_obs::message!("running the scaling study (Paint.NET profile)...");
        let points = scaling::run(&[0.01, 0.05, 0.15, 0.4], &cfg);
        emit("scaling", scaling::render(&points));
    }

    if wants("table2") {
        pex_obs::message!(
            "running experiment 5.4 (sensitivity, 15 configurations, {} sites/project)...",
            t2_max_sites
                .map(|n| n.to_string())
                .unwrap_or_else(|| "all".into())
        );
        let t2_cfg = ExperimentConfig {
            max_sites: t2_max_sites,
            ..cfg.clone()
        };
        let rows = sensitivity::run(&projects, &t2_cfg);
        emit("table2", sensitivity::render_table2(&rows));
    }

    // A combined report for `all --out DIR`.
    if command == "all" {
        if let Some(dir) = &out_dir {
            let mut report = String::from(
                "# pex evaluation report\n\nRegenerated tables and figures of\n\
                 'Type-Directed Completion of Partial Expressions' (PLDI 2012).\n",
            );
            report.push_str(&format!(
                "\nConfiguration: scale {}, limit {}, abstract types {}.\n",
                cfg.scale,
                cfg.limit,
                if cfg.use_abs { "on" } else { "off" }
            ));
            for (name, content) in sections.borrow().iter() {
                report.push_str(&format!("\n---\n\n## {name}\n\n```text\n{content}\n```\n"));
            }
            let path = dir.join("REPORT.md");
            io_or_exit(
                "write combined report",
                &path,
                std::fs::write(&path, report),
            );
            pex_obs::message!("wrote {}", path.display());
        }
    }

    finish(&command, &cfg, metrics_out.as_deref());
}

const HELP: &str = "\
pex-experiments -- regenerate the tables and figures of
'Type-Directed Completion of Partial Expressions' (PLDI 2012)

USAGE:
    pex-experiments <command> [flags]

COMMANDS:
    all | examples | table1 | fig9 | fig10 | fig11 | fig12 |
    fig13 | fig14 | fig15 | fig16 | table2 | speed | baselines
    scaling            query latency vs corpus scale (not part of `all`)
    serve-bench        load-test an in-process pex-serve worker pool and
                       report throughput + latency percentiles
    dump               write the generated projects as mini-C# source

FLAGS:
    --scale S          corpus scale relative to the paper (default 0.02)
    --limit N          rank search limit (default 100)
    --max-sites N      cap sites per project per experiment
    --t2-max-sites N   cap sites per project for Table 2 (default 12)
    --no-abs           disable abstract-type inference
    --three-args       also measure 3-argument subsets (fig10 extra column)
    --threads N        replay worker threads (1 = sequential; default: all
                       cores, or RAYON_NUM_THREADS when set)
    --deadline-ms N    per-query wall-clock deadline; overrunning queries
                       stop with a Deadline outcome and their sites count
                       as truncated (a separate column), not as not-found
    --time-limit-s N   whole-run time limit: after N seconds the shared
                       cancel token trips, in-flight queries stop at the
                       next budget poll, and the run reports what finished
    --out DIR          also write each artefact to DIR/<name>.txt
    --metrics-out FILE write the observability registry as JSON: per-phase
                       latency histograms (p50/p90/p99/max), cache hit
                       rates, ranking-term evaluation counts
    --trace FILE       write tracing span events as JSON lines (one object
                       per completed span; stderr output is unchanged)

serve-bench flags (plus --threads for workers, --limit, --deadline-ms):
    --clients N        concurrent closed-loop clients (default 4)
    --qps Q            total target request rate; 0 = unpaced (default)
    --duration-s D     load-generation duration in seconds (default 3)
    --queue-cap N      server admission queue capacity
    --tenants N        fan the load across N registry tenants; tenant 0 is
                       the default tenant (no project field), tenants 1..N
                       target t1..t{N-1} via the protocol project field
    --open-loop        send on the --qps schedule regardless of responses
                       (arrival rate stays fixed under overload; requires
                       --qps > 0); results land under serve.multi_tenant
    --edit-rate N      make every N-th request per client an incremental
                       update command (0 = queries only); edits keep their
                       own per-tenant ledger, sent == applied + rejected
    --live-stats       scrape {\"cmd\":\"stats\"} mid-load and cross-check the
                       daemon's rolling-window percentiles against the
                       clients' own stopwatches (asserts p50/p90 agree)
    --bench-out FILE   merge the serve section into this JSON file
                       (default BENCH_results.json)

`all` and `speed` print a human-readable observability summary (latency
percentiles per phase, cache hit rates) to stderr when done.
";
