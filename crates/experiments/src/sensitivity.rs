//! Experiment 5.4 — sensitivity analysis of the ranking function
//! (Table 2): every experiment re-run under 15 ranking configurations,
//! reporting the proportion of correct answers in the top 20.

use pex_core::RankConfig;
use pex_model::ExprKindName;

use crate::harness::{ExperimentConfig, Project};
use crate::lookups::{AssignCase, CmpCase};
use crate::stats::{RankStats, TextTable};
use crate::{args, lookups, methods};

/// One row of Table 2 under every configuration.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Row group (Methods / Arguments / Assignments / Comparisons).
    pub group: &'static str,
    /// Row label within the group.
    pub label: &'static str,
    /// Number of queries in the row.
    pub count: usize,
    /// Top-20 proportion per configuration, in
    /// [`RankConfig::table2_variants`] order.
    pub values: Vec<f64>,
}

/// Runs Table 2: all experiments under each ranking-term configuration.
///
/// `base` supplies the scale/limit/sampling; its `rank` field is replaced
/// per column. This is the most expensive harness entry point — use
/// `max_sites` to bound it.
pub fn run(projects: &[Project], base: &ExperimentConfig) -> Vec<Table2Row> {
    let variants = RankConfig::table2_variants();
    let mut rows: Vec<Table2Row> = Vec::new();

    for (vi, (_, rank)) in variants.iter().enumerate() {
        let cfg = ExperimentConfig {
            rank: *rank,
            limit: base.limit.min(40),
            ..base.clone()
        };

        let method_outcomes = methods::run(projects, &cfg);
        let arg_outcomes = args::run(projects, &cfg);
        let (assign_outcomes, cmp_outcomes) = lookups::run(projects, &cfg);

        let mut push = |group: &'static str, label: &'static str, stats: RankStats| {
            if let Some(row) = rows
                .iter_mut()
                .find(|r| r.group == group && r.label == label)
            {
                debug_assert_eq!(row.values.len(), vi);
                row.values.push(stats.top(20));
            } else {
                rows.push(Table2Row {
                    group,
                    label,
                    count: stats.len(),
                    values: vec![stats.top(20)],
                });
            }
        };

        push(
            "Methods",
            "All",
            method_outcomes
                .iter()
                .map(|o| (o.best, o.truncated))
                .collect(),
        );
        push(
            "Methods",
            "Instance",
            method_outcomes
                .iter()
                .filter(|o| !o.is_static)
                .map(|o| (o.best, o.truncated))
                .collect(),
        );
        push(
            "Methods",
            "Static",
            method_outcomes
                .iter()
                .filter(|o| o.is_static)
                .map(|o| (o.best, o.truncated))
                .collect(),
        );

        let guessable: Vec<&args::ArgOutcome> = arg_outcomes
            .iter()
            .filter(|o| o.kind != ExprKindName::NotGuessable)
            .collect();
        push(
            "Arguments",
            "Normal",
            guessable.iter().map(|o| (o.rank, o.truncated)).collect(),
        );
        push(
            "Arguments",
            "No variables",
            guessable
                .iter()
                .filter(|o| !o.is_local)
                .map(|o| (o.rank, o.truncated))
                .collect(),
        );

        for (case, label) in [
            (AssignCase::Target, "Target"),
            (AssignCase::Source, "Source"),
            (AssignCase::Both, "Both"),
        ] {
            push(
                "Assignments",
                label,
                assign_outcomes
                    .iter()
                    .filter(|o| o.case == case)
                    .map(|o| (o.rank, o.truncated))
                    .collect(),
            );
        }
        for case in [
            CmpCase::Left,
            CmpCase::Right,
            CmpCase::Both,
            CmpCase::TwoLeft,
            CmpCase::TwoRight,
        ] {
            push(
                "Comparisons",
                case.label(),
                cmp_outcomes
                    .iter()
                    .filter(|o| o.case == case)
                    .map(|o| (o.rank, o.truncated))
                    .collect(),
            );
        }
    }
    rows
}

/// Renders Table 2 in the paper's layout (rows = experiments, columns =
/// configurations).
pub fn render_table2(rows: &[Table2Row]) -> String {
    let variants = RankConfig::table2_variants();
    let mut headers: Vec<String> = vec!["".into(), "Count".into()];
    headers.extend(variants.iter().map(|(name, _)| name.clone()));
    let mut table = TextTable::new(headers);
    let mut current_group = "";
    for row in rows {
        if row.group != current_group {
            current_group = row.group;
            let mut group_row = vec![format!("[{}]", row.group)];
            group_row.resize(2 + variants.len(), String::new());
            table.row(group_row);
        }
        let mut cells = vec![row.label.to_string(), row.count.to_string()];
        cells.extend(row.values.iter().map(|v| format!("{v:.2}")));
        table.row(cells);
    }
    format!(
        "Table 2. Ranking function term sensitivity (proportion of correct answers in top 20)\n\
         Columns: All = full ranking; -x = without term x; +x = only term x\n\
         (n=namespace, s=in-scope static, d=depth, m=matching name, t=type distance, a=abstract types)\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::load_projects;

    #[test]
    fn table2_has_all_rows_and_columns() {
        let projects = load_projects(0.002);
        let cfg = ExperimentConfig {
            limit: 20,
            max_sites: Some(3),
            ..Default::default()
        };
        let rows = run(&projects, &cfg);
        assert_eq!(
            rows.len(),
            13,
            "3 method + 2 argument + 3 assignment + 5 comparison rows"
        );
        for row in &rows {
            assert_eq!(row.values.len(), 15, "{}/{}", row.group, row.label);
            for v in &row.values {
                assert!((0.0..=1.0).contains(v));
            }
        }
        let rendered = render_table2(&rows);
        assert!(rendered.contains("[Methods]"));
        assert!(rendered.contains("2xRight"));
        assert!(rendered.contains("-at"));
    }
}
