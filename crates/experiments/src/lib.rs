//! # pex-experiments
//!
//! The evaluation harness: regenerates every table and figure of
//! *Type-Directed Completion of Partial Expressions* (PLDI 2012) against
//! the `pex` engine and the `pex-corpus` projects.
//!
//! | Paper artefact | Module | CLI subcommand |
//! |---|---|---|
//! | Table 1 | [`methods`] | `table1` |
//! | Figures 2-4 | [`figures`] | `examples` |
//! | Figure 9 | [`methods`] | `fig9` |
//! | Figure 10 | [`methods`] | `fig10` |
//! | Figure 11 | [`methods`] + [`intellisense`] | `fig11` |
//! | Figure 12 | [`methods`] | `fig12` |
//! | Figure 13 | [`args`] | `fig13` |
//! | Figure 14 | [`args`] | `fig14` |
//! | Figure 15 | [`lookups`] | `fig15` |
//! | Figure 16 | [`lookups`] | `fig16` |
//! | Table 2 | [`sensitivity`] | `table2` |
//! | §5.1-5.3 speed | [`speed`] | `speed` |
//! | §2.3/§6 baseline comparison (quantified) | [`baselines`] + [`prospector`] + [`insynth`] | `baselines` |
//!
//! The `pex-experiments` binary runs them (`all` for everything) at a
//! configurable corpus scale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod baselines;
pub mod extract;
pub mod figures;
pub mod harness;
pub mod insynth;
pub mod intellisense;
pub mod lookups;
pub mod methods;
pub mod obs_report;
pub mod prospector;
pub mod scaling;
pub mod sensitivity;
pub mod serve_bench;
pub mod speed;
pub mod stats;

pub use harness::{load_projects, ExperimentConfig, Project};
