//! Query-site extraction: the paper's methodology of taking existing
//! expressions out of a codebase and turning them into queries.
//!
//! "We performed experiments where our tool found expressions in mature
//! software projects, removed some information to make those expressions
//! into partial expressions, and ran our algorithm on those partial
//! expressions to see where the real expression ranks in the results."

use pex_model::{Body, Context, Database, Expr, MethodId};

/// A method-call occurrence in a body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The client method whose body contains the call.
    pub enclosing: MethodId,
    /// Statement index (the abstract-type cutoff point).
    pub stmt: usize,
    /// The called (intended) method.
    pub target: MethodId,
    /// Receiver-first argument expressions.
    pub args: Vec<Expr>,
}

/// An assignment statement occurrence.
#[derive(Debug, Clone)]
pub struct AssignSite {
    /// The client method whose body contains the assignment.
    pub enclosing: MethodId,
    /// Statement index.
    pub stmt: usize,
    /// The full assignment expression.
    pub expr: Expr,
}

/// A comparison statement occurrence.
#[derive(Debug, Clone)]
pub struct CmpSite {
    /// The client method whose body contains the comparison.
    pub enclosing: MethodId,
    /// Statement index.
    pub stmt: usize,
    /// The full comparison expression.
    pub expr: Expr,
}

/// Everything extracted from one database.
#[derive(Debug, Default)]
pub struct Extracted {
    /// All method calls (including nested ones).
    pub calls: Vec<CallSite>,
    /// All assignment statements.
    pub assigns: Vec<AssignSite>,
    /// All comparison statements.
    pub cmps: Vec<CmpSite>,
}

/// Walks every body in the database and collects query sites. Statements
/// nested in `if`/`while` blocks are visited too; their sites carry the
/// enclosing *top-level* statement index, which is the abstract-type
/// cutoff point.
pub fn extract(db: &Database) -> Extracted {
    let mut out = Extracted::default();
    for m in db.methods() {
        let Some(body) = db.method(m).body() else {
            continue;
        };
        for (si, stmt) in body.stmts.iter().enumerate() {
            for expr in stmt.exprs_recursive() {
                collect_calls(m, si, expr, &mut out.calls);
                match expr {
                    Expr::Assign(..) => out.assigns.push(AssignSite {
                        enclosing: m,
                        stmt: si,
                        expr: expr.clone(),
                    }),
                    Expr::Cmp(..) => out.cmps.push(CmpSite {
                        enclosing: m,
                        stmt: si,
                        expr: expr.clone(),
                    }),
                    _ => {}
                }
            }
        }
    }
    out
}

fn collect_calls(m: MethodId, si: usize, e: &Expr, out: &mut Vec<CallSite>) {
    if let Expr::Call(target, args) = e {
        out.push(CallSite {
            enclosing: m,
            stmt: si,
            target: *target,
            args: args.clone(),
        });
    }
    for child in e.children() {
        collect_calls(m, si, child, out);
    }
}

/// The context at a site (locals live before its statement).
pub fn site_context(db: &Database, enclosing: MethodId, stmt: usize) -> Context {
    let body = db.method(enclosing).body().expect("sites come from bodies");
    Context::at_statement(db, enclosing, body, stmt)
}

/// The body of a site's enclosing method.
pub fn site_body(db: &Database, enclosing: MethodId) -> &Body {
    db.method(enclosing).body().expect("sites come from bodies")
}

/// Number of trailing instance field-lookup links on an expression
/// (capped at `cap` for efficiency).
pub fn trailing_lookups(db: &Database, e: &Expr, cap: usize) -> usize {
    let mut n = 0;
    let mut cur = e;
    while n < cap {
        match cur {
            Expr::FieldAccess(base, f) if !db.field(*f).is_static() => {
                n += 1;
                cur = base;
            }
            _ => break,
        }
    }
    n
}

/// Removes `k` trailing field lookups, returning the remaining base (which
/// must still be a well-formed expression). Returns `None` if fewer than
/// `k` trailing lookups exist or the base would be a bare static-field root
/// stripped past its start.
pub fn strip_lookups(db: &Database, e: &Expr, k: usize) -> Option<Expr> {
    let mut cur = e.clone();
    for _ in 0..k {
        match cur {
            Expr::FieldAccess(base, f) if !db.field(f).is_static() => {
                cur = *base;
            }
            _ => return None,
        }
    }
    Some(cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;

    fn db() -> Database {
        compile(
            r#"
            namespace N {
                struct Point { int X; int Y; }
                class Line { N.Point P1; }
                class Util {
                    static int Add(int a, int b);
                }
                class Client {
                    N.Line Ln;
                    void M(N.Line ln, int k) {
                        Util.Add(k, Util.Add(k, k));
                        ln.P1.X = k;
                        ln.P1.X >= this.Ln.P1.Y;
                    }
                }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn extracts_nested_calls_and_statements() {
        let db = db();
        let ex = extract(&db);
        assert_eq!(ex.calls.len(), 2, "outer and nested Add");
        assert_eq!(ex.assigns.len(), 1);
        assert_eq!(ex.cmps.len(), 1);
        let ctx = site_context(&db, ex.calls[0].enclosing, ex.calls[0].stmt);
        assert_eq!(ctx.locals.len(), 2);
    }

    #[test]
    fn trailing_lookup_counting_and_stripping() {
        let db = db();
        let ex = extract(&db);
        let Expr::Assign(lhs, _) = &ex.assigns[0].expr else {
            panic!()
        };
        // lhs = ln.P1.X : two trailing lookups.
        assert_eq!(trailing_lookups(&db, lhs, 5), 2);
        let stripped = strip_lookups(&db, lhs, 1).unwrap();
        assert_eq!(trailing_lookups(&db, &stripped, 5), 1);
        let base = strip_lookups(&db, lhs, 2).unwrap();
        assert!(matches!(base, Expr::Local(_)));
        assert!(strip_lookups(&db, lhs, 3).is_none());
    }
}
