//! Rank statistics and plain-text table/figure rendering.

/// A collection of query outcomes: the 0-based rank of the correct answer,
/// or `None` when it was not found within the search limit.
///
/// Queries the engine could not finish (step budget, deadline, or
/// cancellation — see [`pex_core::QueryOutcome`]) are recorded as
/// **truncated**, not as "not found": a truncated query says nothing about
/// where the answer would have ranked, so folding it into the not-found
/// bucket would deflate every CDF. Truncated queries are excluded from the
/// `top(k)` denominator and reported separately.
#[derive(Debug, Clone, Default)]
pub struct RankStats {
    ranks: Vec<Option<usize>>,
    truncated: usize,
}

impl RankStats {
    /// Empty statistics.
    pub fn new() -> Self {
        RankStats::default()
    }

    /// Records one decided outcome (found at a rank, or exhaustively not
    /// found).
    pub fn push(&mut self, rank: Option<usize>) {
        self.ranks.push(rank);
    }

    /// Records one outcome with its truncation flag. A truncated outcome
    /// never carries a rank (a found answer is a decided outcome even if
    /// the query would have been cut short later).
    pub fn push_outcome(&mut self, rank: Option<usize>, truncated: bool) {
        if truncated && rank.is_none() {
            self.truncated += 1;
        } else {
            self.ranks.push(rank);
        }
    }

    /// Number of outcomes recorded, truncated ones included.
    pub fn len(&self) -> usize {
        self.ranks.len() + self.truncated
    }

    /// Number of queries the engine could not finish.
    pub fn truncated(&self) -> usize {
        self.truncated
    }

    /// Number of decided outcomes — the `top(k)` denominator.
    pub fn decided(&self) -> usize {
        self.ranks.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of outcomes with rank strictly below `k` (i.e. in the top
    /// `k`, 1-based).
    pub fn count_top(&self, k: usize) -> usize {
        self.ranks
            .iter()
            .filter(|r| r.is_some_and(|r| r < k))
            .count()
    }

    /// Proportion of *decided* outcomes with the correct answer in the top
    /// `k` (0 when empty).
    pub fn top(&self, k: usize) -> f64 {
        if self.ranks.is_empty() {
            0.0
        } else {
            self.count_top(k) as f64 / self.ranks.len() as f64
        }
    }

    /// CDF values at the given rank thresholds (1-based).
    pub fn cdf(&self, thresholds: &[usize]) -> Vec<f64> {
        thresholds.iter().map(|&k| self.top(k)).collect()
    }

    /// Iterates the raw decided outcomes.
    pub fn iter(&self) -> impl Iterator<Item = Option<usize>> + '_ {
        self.ranks.iter().copied()
    }
}

impl FromIterator<Option<usize>> for RankStats {
    fn from_iter<I: IntoIterator<Item = Option<usize>>>(iter: I) -> Self {
        RankStats {
            ranks: iter.into_iter().collect(),
            truncated: 0,
        }
    }
}

impl FromIterator<(Option<usize>, bool)> for RankStats {
    fn from_iter<I: IntoIterator<Item = (Option<usize>, bool)>>(iter: I) -> Self {
        let mut stats = RankStats::new();
        for (rank, truncated) in iter {
            stats.push_outcome(rank, truncated);
        }
        stats
    }
}

/// Value at percentile `p` of a sample, by the **nearest-rank** method:
/// the smallest value such that at least `p`% of the sample is ≤ it, i.e.
/// `sorted[ceil(p/100 · n) - 1]`.
///
/// Contract: `p` must be in `0.0..=100.0` (debug-asserted; release builds
/// clamp). `p = 0` returns the minimum, `p = 100` the maximum, and an
/// empty sample returns 0 — the caller-friendly convention for "no data"
/// in latency reports.
pub fn percentile(samples: &[u128], p: f64) -> u128 {
    debug_assert!(
        (0.0..=100.0).contains(&p),
        "percentile p must be in 0..=100, got {p}"
    );
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    if p <= 0.0 {
        return sorted[0];
    }
    let rank = ((p.min(100.0) / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Proportion of samples at or below a threshold.
pub fn proportion_under(samples: &[u128], threshold: u128) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().filter(|&&s| s <= threshold).count() as f64 / samples.len() as f64
}

/// A plain-text aligned table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                // Right-align numeric-looking cells, left-align text.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || matches!(c, '.' | '%' | '-' | '+' | '<' | '>'))
                    && !cell.is_empty();
                if numeric {
                    line.push_str(&format!("{cell:>w$}", w = widths[i]));
                } else {
                    line.push_str(&format!("{cell:<w$}", w = widths[i]));
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal ASCII bar for a proportion in `[0, 1]`.
pub fn bar(p: f64, width: usize) -> String {
    let filled = (p.clamp(0.0, 1.0) * width as f64).round() as usize;
    format!(
        "{}{}",
        "#".repeat(filled),
        ".".repeat(width.saturating_sub(filled))
    )
}

/// Formats a proportion as a percentage with one decimal.
pub fn pct(p: f64) -> String {
    format!("{:.1}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_stats_top_k() {
        let s: RankStats = [Some(0), Some(9), Some(10), Some(25), None]
            .into_iter()
            .collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.count_top(10), 2);
        assert_eq!(s.count_top(20), 3);
        assert!((s.top(10) - 0.4).abs() < 1e-9);
        assert_eq!(s.cdf(&[1, 10, 26]), vec![0.2, 0.4, 0.8]);
    }

    #[test]
    fn truncated_outcomes_leave_the_denominator() {
        let mut s = RankStats::new();
        s.push_outcome(Some(0), false);
        s.push_outcome(None, false); // exhausted: genuinely not found
        s.push_outcome(None, true); // deadline/step budget: undecided
        assert_eq!(s.len(), 3);
        assert_eq!(s.decided(), 2);
        assert_eq!(s.truncated(), 1);
        // top(k) is over decided outcomes only.
        assert!((s.top(10) - 0.5).abs() < 1e-9);
        // The pair-collector matches push_outcome.
        let t: RankStats = [(Some(0), false), (None, false), (None, true)]
            .into_iter()
            .collect();
        assert_eq!(t.truncated(), 1);
        assert!((t.top(10) - 0.5).abs() < 1e-9);
        // A found rank counts as decided even if flagged: the answer's
        // position is known regardless of where the search stopped.
        let mut u = RankStats::new();
        u.push_outcome(Some(3), true);
        assert_eq!(u.decided(), 1);
        assert_eq!(u.truncated(), 0);
        assert_eq!(u.len(), 1);
        assert!((u.top(10) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn len_is_decided_plus_truncated() {
        let s: RankStats = [
            (Some(0), false),
            (Some(5), true),
            (None, false),
            (None, true),
            (None, true),
        ]
        .into_iter()
        .collect();
        assert_eq!(s.decided(), 3);
        assert_eq!(s.truncated(), 2);
        assert_eq!(s.len(), s.decided() + s.truncated());
        // count_top(k) never sees the truncated bucket.
        assert_eq!(s.count_top(10), 2);
        assert!((s.top(10) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RankStats::new();
        assert!(s.is_empty());
        assert_eq!(s.top(10), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50.0), 50);
        assert_eq!(percentile(&xs, 99.0), 99);
        assert_eq!(percentile(&xs, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert!((proportion_under(&xs, 10) - 0.1).abs() < 1e-9);
    }

    #[test]
    fn percentile_edge_cases() {
        // p = 0 is the minimum by definition, not by underflow accident.
        let xs: Vec<u128> = (1..=100).collect();
        assert_eq!(percentile(&xs, 0.0), 1);
        // A single sample answers every percentile.
        assert_eq!(percentile(&[42], 0.0), 42);
        assert_eq!(percentile(&[42], 50.0), 42);
        assert_eq!(percentile(&[42], 100.0), 42);
        // Empty input is 0 at every percentile.
        assert_eq!(percentile(&[], 0.0), 0);
        assert_eq!(percentile(&[], 100.0), 0);
        // Nearest-rank on an even-sized sample: p50 of {10, 20} is the
        // first element (ceil(0.5 * 2) = rank 1), not an interpolation.
        assert_eq!(percentile(&[20, 10], 50.0), 10);
        assert_eq!(percentile(&[20, 10], 50.1), 20);
        // Unsorted input is handled; order does not matter.
        assert_eq!(percentile(&[5, 1, 9, 3], 100.0), 9);
    }

    #[test]
    #[should_panic(expected = "percentile p must be in 0..=100")]
    #[cfg(debug_assertions)]
    fn percentile_rejects_out_of_range_p() {
        percentile(&[1, 2, 3], 250.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Program", "# calls", "# top 10"]);
        t.row(vec!["Paint.NET", "3188", "2288"]);
        t.row(vec!["WiX", "13192", "11430"]);
        let s = t.render();
        assert!(s.contains("Paint.NET"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].starts_with('-'));
    }

    #[test]
    fn bars_and_percent() {
        assert_eq!(bar(0.5, 10), "#####.....");
        assert_eq!(bar(0.0, 4), "....");
        assert_eq!(pct(0.845), "84.5%");
    }
}
