//! Property test for the observability determinism contract: metric
//! counters (and gauges) aggregated during a parallel replay must be
//! identical to the sequential run's, regardless of worker count.
//!
//! Counter probes use relaxed `fetch_add`, which commutes, so totals are
//! schedule-independent as long as every site fires the same probes. The
//! one subtlety is the `candidates_for` memo: fills are counted inside the
//! `OnceLock` initialiser (exactly once per cell), so each side of the
//! comparison loads its own fresh corpus — sharing one corpus would let
//! the first run warm the memos and zero the second run's fill counts.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pex_experiments::{load_projects, methods, ExperimentConfig};

type Totals = (BTreeMap<String, u64>, BTreeMap<String, u64>);

/// Runs the methods experiment on a fresh corpus with `threads` workers
/// and returns the global registry's (counters, gauges) for just that run.
fn replay_totals(threads: usize, limit: usize, max_sites: usize) -> Totals {
    let projects = load_projects(0.002);
    let cfg = ExperimentConfig {
        limit,
        max_sites: Some(max_sites),
        threads: Some(threads),
        ..Default::default()
    };
    // Reset after loading so corpus construction doesn't leak into the
    // comparison; only the replay's own probes are counted.
    pex_obs::registry().reset();
    let _ = methods::run(&projects, &cfg);
    let snap = pex_obs::registry().snapshot();
    (snap.counters, snap.gauges)
}

proptest! {
    // Each case replays the corpus twice from scratch, so a handful of
    // cases over small site budgets keeps the suite fast. This file holds
    // a single #[test] on purpose: the registry is process-global, and a
    // second concurrent test in this binary would interleave its probes.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn counter_totals_independent_of_thread_count(
        limit in 10usize..30,
        max_sites in 2usize..5,
        workers in 2usize..6,
    ) {
        let (seq_counters, seq_gauges) = replay_totals(1, limit, max_sites);
        let (par_counters, par_gauges) = replay_totals(workers, limit, max_sites);
        // The run must have actually exercised the instrumented paths,
        // otherwise equality is vacuous.
        prop_assert!(
            seq_counters.get("replay.sites").copied().unwrap_or(0) > 0,
            "replay recorded no sites: {seq_counters:?}"
        );
        prop_assert!(seq_counters.get("engine.queries").copied().unwrap_or(0) > 0);
        prop_assert!(seq_counters.get("index.candidates.lookups").copied().unwrap_or(0) > 0);
        prop_assert_eq!(seq_counters, par_counters);
        prop_assert_eq!(seq_gauges, par_gauges);
    }
}
