//! Property tests for the parallel-replay determinism contract: running an
//! experiment with any worker count must produce exactly the rows the
//! sequential run produces, in the same order (timings excepted — they are
//! wall-clock measurements, not results).

use std::sync::OnceLock;

use proptest::prelude::*;

use pex_experiments::{load_projects, lookups, methods, ExperimentConfig, Project};

/// Shared tiny corpus; generating it once keeps the property cases fast.
fn projects() -> &'static [Project] {
    static PROJECTS: OnceLock<Vec<Project>> = OnceLock::new();
    PROJECTS.get_or_init(|| load_projects(0.003))
}

fn cfg(limit: usize, max_sites: usize, threads: Option<usize>) -> ExperimentConfig {
    ExperimentConfig {
        limit,
        max_sites: Some(max_sites),
        threads,
        ..Default::default()
    }
}

/// A [`methods::CallOutcome`] minus its wall-clock field.
type CallRow = (
    usize,
    bool,
    usize,
    Option<usize>,
    Option<usize>,
    Option<usize>,
    Option<usize>,
    Option<usize>,
);

fn call_rows(outcomes: &[methods::CallOutcome]) -> Vec<CallRow> {
    outcomes
        .iter()
        .map(|o| {
            (
                o.project,
                o.is_static,
                o.full_arity,
                o.best,
                o.best_1arg,
                o.best_3arg,
                o.best_ret,
                o.alpha,
            )
        })
        .collect()
}

fn assign_rows(v: &[lookups::AssignOutcome]) -> Vec<(usize, lookups::AssignCase, Option<usize>)> {
    v.iter().map(|o| (o.project, o.case, o.rank)).collect()
}

fn cmp_rows(v: &[lookups::CmpOutcome]) -> Vec<(usize, lookups::CmpCase, Option<usize>)> {
    v.iter().map(|o| (o.project, o.case, o.rank)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn parallel_methods_replay_equals_sequential(
        limit in 10usize..40,
        max_sites in 2usize..6,
        workers in 2usize..6,
    ) {
        let sequential = methods::run(projects(), &cfg(limit, max_sites, Some(1)));
        let parallel = methods::run(projects(), &cfg(limit, max_sites, Some(workers)));
        prop_assert_eq!(call_rows(&sequential), call_rows(&parallel));
        let auto = methods::run(projects(), &cfg(limit, max_sites, None));
        prop_assert_eq!(call_rows(&sequential), call_rows(&auto));
    }

    #[test]
    fn parallel_lookups_replay_equals_sequential(
        limit in 10usize..40,
        max_sites in 2usize..6,
        workers in 2usize..6,
    ) {
        let (sa, sc) = lookups::run(projects(), &cfg(limit, max_sites, Some(1)));
        let (pa, pc) = lookups::run(projects(), &cfg(limit, max_sites, Some(workers)));
        prop_assert_eq!(assign_rows(&sa), assign_rows(&pa));
        prop_assert_eq!(cmp_rows(&sc), cmp_rows(&pc));
    }
}
