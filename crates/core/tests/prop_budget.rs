//! Property tests for bounded query execution: outcome classification and
//! the truncation prefix guarantee, over randomly generated corpora.
//!
//! Two invariants matter downstream:
//!
//! 1. `outcome == Exhausted` **iff** the stream was fully drained — every
//!    other stop (caller limit, step budget, deadline, cancellation) must
//!    be classified as what it is, never as exhaustion.
//! 2. For *any* step budget, the emitted completions are exactly a prefix
//!    of the unbudgeted enumeration — truncation never reorders, duplicates
//!    or invents items, so rank CDFs over truncated queries stay sound for
//!    the ranks they did observe.

use proptest::prelude::*;

use pex_core::{
    CancelToken, CompleteOptions, Completer, MethodIndex, PartialExpr, QueryBudget, QueryOutcome,
    RankConfig,
};
use pex_corpus::{generate, ClientProfile, LibraryProfile};
use pex_model::{Context, Database, Expr, MethodId};

fn small_db(seed: u64) -> Database {
    let lib = LibraryProfile {
        types: 20,
        namespaces: 3,
        ..Default::default()
    };
    let client = ClientProfile {
        classes: 2,
        ..Default::default()
    };
    generate(&lib, &client, seed)
}

/// First call statement site in the corpus, with its context.
fn first_site(db: &Database) -> Option<(MethodId, usize, Vec<Expr>)> {
    for m in db.methods() {
        if let Some(body) = db.method(m).body() {
            for (si, stmt) in body.stmts.iter().enumerate() {
                if let Some(Expr::Call(_, args)) = stmt.expr() {
                    if !args.is_empty() {
                        return Some((m, si, args.clone()));
                    }
                }
            }
        }
    }
    None
}

fn completer_with<'a>(
    db: &'a Database,
    ctx: &'a Context,
    index: &'a MethodIndex,
    budget: QueryBudget,
) -> Completer<'a> {
    Completer::new(db, ctx, index, RankConfig::all(), None).with_options(CompleteOptions {
        budget,
        ..Default::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exhausted iff fully drained, for both unbudgeted and budgeted runs.
    #[test]
    fn exhausted_iff_fully_drained(seed in 0u64..300, max_steps in 1usize..200) {
        let db = small_db(seed);
        let Some((enclosing, stmt, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let query = PartialExpr::UnknownCall(vec![PartialExpr::Known(args[0].clone())]);

        // Unbudgeted drain: always Exhausted.
        let full = completer_with(&db, &ctx, &index, QueryBudget::default());
        let mut iter = full.completions(&query);
        let full_count = iter.by_ref().count();
        prop_assert_eq!(iter.outcome(), Some(QueryOutcome::Exhausted));

        // Budgeted drain: Exhausted exactly when every item still came out.
        let tiny = completer_with(
            &db,
            &ctx,
            &index,
            QueryBudget { max_steps, ..Default::default() },
        );
        let mut iter = tiny.completions(&query);
        let tiny_count = iter.by_ref().count();
        let outcome = iter.outcome().expect("finished iterators classify");
        match outcome {
            QueryOutcome::Exhausted => prop_assert_eq!(tiny_count, full_count),
            // The budget may trip on the very pull that would have observed
            // exhaustion, so StepBudget only guarantees a (possibly complete)
            // prefix — never extra items.
            QueryOutcome::StepBudget => prop_assert!(tiny_count <= full_count),
            other => prop_assert!(false, "unexpected outcome {:?}", other),
        }

        // A caller stop mid-stream is Limit, never Exhausted.
        if full_count > 1 {
            let mut iter = full.completions(&query);
            let _ = iter.next();
            drop(iter);
            let (_, outcome) = full.complete_with_outcome(&query, 1);
            prop_assert_eq!(outcome, QueryOutcome::Limit);
        }
    }

    /// For any step budget, the emitted sequence is a prefix of the
    /// unbudgeted enumeration: truncation cannot reorder results.
    #[test]
    fn budgeted_output_is_a_prefix_of_the_full_enumeration(
        seed in 0u64..300,
        max_steps in 1usize..400,
    ) {
        let db = small_db(seed);
        let Some((enclosing, stmt, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let query = PartialExpr::UnknownCall(vec![PartialExpr::Known(args[0].clone())]);

        let full = completer_with(&db, &ctx, &index, QueryBudget::default());
        let everything: Vec<String> = full
            .completions(&query)
            .map(|c| format!("{:?}", c.expr))
            .collect();

        let tiny = completer_with(
            &db,
            &ctx,
            &index,
            QueryBudget { max_steps, ..Default::default() },
        );
        let prefix: Vec<String> = tiny
            .completions(&query)
            .map(|c| format!("{:?}", c.expr))
            .collect();
        prop_assert!(prefix.len() <= everything.len());
        prop_assert_eq!(&prefix[..], &everything[..prefix.len()]);
    }

    /// A pre-cancelled token yields Cancelled with no output, regardless of
    /// corpus; an uncancelled token changes nothing.
    #[test]
    fn cancel_token_outcomes(seed in 0u64..100) {
        let db = small_db(seed);
        let Some((enclosing, stmt, _)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let query = PartialExpr::Hole;

        let token = CancelToken::new();
        let engine = completer_with(
            &db,
            &ctx,
            &index,
            QueryBudget { cancel: Some(token.clone()), ..Default::default() },
        );
        let baseline: Vec<String> = engine
            .completions(&query)
            .take(10)
            .map(|c| format!("{:?}", c.expr))
            .collect();

        token.cancel();
        let mut iter = engine.completions(&query);
        prop_assert!(iter.next().is_none());
        prop_assert_eq!(iter.outcome(), Some(QueryOutcome::Cancelled));

        // The uncancelled run was unaffected by the token being armed.
        let plain = completer_with(&db, &ctx, &index, QueryBudget::default());
        let expected: Vec<String> = plain
            .completions(&query)
            .take(10)
            .map(|c| format!("{:?}", c.expr))
            .collect();
        prop_assert_eq!(baseline, expected);
    }
}
