//! Fuzz-style property tests: the query parser must never panic — every
//! input either parses or returns a positioned error.

use proptest::prelude::*;

use pex_core::parse_partial;
use pex_corpus::builtin;
use pex_model::{Context, Database};

fn setup() -> (Database, Context) {
    let db = builtin::dynamic_geometry();
    let ctx = builtin::geometry_fig3_context(&db);
    (db, ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary strings: no panics, errors carry in-range offsets.
    #[test]
    fn parser_total_on_arbitrary_strings(input in ".{0,60}") {
        let (db, ctx) = setup();
        match parse_partial(&db, &ctx, &input) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.at <= input.chars().count()),
        }
    }

    /// Query-alphabet soup: strings built from the tokens the grammar
    /// actually uses, which exercise deeper parser paths.
    #[test]
    fn parser_total_on_query_alphabet(
        parts in proptest::collection::vec(
            proptest::sample::select(vec![
                "?", "0", "(", ")", "{", "}", ",", ".", ".?f", ".?*m", ".?m",
                ":=", "=", "<", ">=", "point", "this", "shapeStyle", "Distance",
                "DynamicGeometry", "Math", "InfinitePoint", "X", " ", "42", "1.5",
            ]),
            0..14,
        )
    ) {
        let (db, ctx) = setup();
        let input: String = parts.concat();
        match parse_partial(&db, &ctx, &input) {
            Ok(query) => {
                // Whatever parses must at least have a printable shape.
                prop_assert!(!query.shape().is_empty());
            }
            Err(e) => prop_assert!(e.at <= input.chars().count()),
        }
    }

    /// The mini-C# frontend is total too.
    #[test]
    fn minics_total_on_arbitrary_strings(input in ".{0,80}") {
        let _ = pex_model::minics::compile(&input);
    }

    /// ... and on keyword soup.
    #[test]
    fn minics_total_on_keyword_soup(
        parts in proptest::collection::vec(
            proptest::sample::select(vec![
                "namespace", "class", "struct", "interface", "enum", "static",
                "void", "var", "return", "this", "int", "string", "{", "}",
                "(", ")", ";", ",", ".", "=", "<", ">=", "N", "C", "x", " ",
                "[Comparable]", "private", "get", "set",
            ]),
            0..20,
        )
    ) {
        let input: String = parts.join(" ");
        let _ = pex_model::minics::compile(&input);
    }
}
