//! Property tests for the completion engine, run over randomly generated
//! corpora: every output must derive from its query (the Figure 6
//! reference semantics), type-check, carry the specification score, and
//! arrive in non-decreasing score order without duplicates. A brute-force
//! enumerator cross-checks completeness for single-lookup queries.

use proptest::prelude::*;

use pex_abstract::AbsTypes;
use pex_core::{
    derives, Completer, Completion, MethodIndex, PartialExpr, RankConfig, ReachIndex, SuffixKind,
};
use pex_corpus::{generate, ClientProfile, LibraryProfile};
use pex_model::{Context, Database, Expr, MethodId, Stmt, ValueTy};

fn small_db(seed: u64) -> Database {
    let lib = LibraryProfile {
        types: 25,
        namespaces: 4,
        ..Default::default()
    };
    let client = ClientProfile {
        classes: 2,
        ..Default::default()
    };
    generate(&lib, &client, seed)
}

/// First call statement site in the corpus, with its context.
fn first_site(db: &Database) -> Option<(MethodId, usize, MethodId, Vec<Expr>)> {
    for m in db.methods() {
        if let Some(body) = db.method(m).body() {
            for (si, stmt) in body.stmts.iter().enumerate() {
                if let Some(Expr::Call(target, args)) = stmt.expr() {
                    if !args.is_empty() {
                        return Some((m, si, *target, args.clone()));
                    }
                }
            }
        }
    }
    None
}

fn check_stream(
    db: &Database,
    ctx: &Context,
    engine: &Completer<'_>,
    query: &PartialExpr,
    take: usize,
) -> Result<Vec<Completion>, TestCaseError> {
    let completions: Vec<Completion> = engine.completions(query).take(take).collect();
    let ranker = engine.ranker();
    let mut last = 0u32;
    let mut seen = std::collections::HashSet::new();
    for c in &completions {
        prop_assert!(
            derives(db, ctx, query, &c.expr),
            "engine output must derive from the query: {} (query {})",
            engine.render(c),
            query.shape()
        );
        prop_assert!(db.expr_ty(&c.expr, ctx).is_ok(), "output must type-check");
        prop_assert!(c.score >= last, "scores must be non-decreasing");
        last = c.score;
        prop_assert_eq!(
            ranker.score(&c.expr),
            Some(c.score),
            "engine score must match the specification ranker"
        );
        prop_assert!(seen.insert(format!("{:?}", c.expr)), "no duplicates");
    }
    Ok(completions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engine_invariants_on_random_corpora(seed in 0u64..500) {
        let db = small_db(seed);
        let Some((enclosing, stmt, target, args)) = first_site(&db) else {
            return Ok(()); // degenerate corpus; nothing to check
        };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let abs = AbsTypes::for_query(&db, enclosing, stmt);
        let index = MethodIndex::build(&db);
        let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), Some(&abs));

        // Unknown-method query from the first argument.
        let q1 = PartialExpr::UnknownCall(vec![PartialExpr::Known(args[0].clone())]);
        let got = check_stream(&db, &ctx, &engine, &q1, 30)?;
        // The intended method must be somewhere findable (it is a real call).
        let rank = engine.rank_of(&q1, 400, |c| matches!(c.expr, Expr::Call(m, _) if m == target));
        prop_assert!(
            rank.rank.is_some(),
            "the real call must be enumerable (got {} items, outcome {:?})",
            got.len(),
            rank.outcome
        );

        // Argument-hole query for position 0.
        let mut hole_args: Vec<PartialExpr> =
            args.iter().map(|a| PartialExpr::Known(a.clone())).collect();
        hole_args[0] = PartialExpr::Hole;
        let q2 = PartialExpr::KnownCall { candidates: vec![target], args: hole_args };
        check_stream(&db, &ctx, &engine, &q2, 30)?;

        // Bare hole and a star-suffix query.
        check_stream(&db, &ctx, &engine, &PartialExpr::Hole, 30)?;
        let q3 = PartialExpr::suffix(PartialExpr::Known(args[0].clone()), SuffixKind::MethodStar);
        check_stream(&db, &ctx, &engine, &q3, 30)?;
    }

    /// For `.?f` (exactly zero or one field lookups) the completion set is
    /// small enough to enumerate by hand; the engine must produce exactly
    /// that set.
    #[test]
    fn single_lookup_completions_are_exhaustive(seed in 0u64..300) {
        let db = small_db(seed);
        let Some((enclosing, stmt, _, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);

        let base = args[0].clone();
        let Ok(ValueTy::Known(base_ty)) = db.expr_ty(&base, &ctx) else { return Ok(()) };
        let query = PartialExpr::suffix(PartialExpr::Known(base.clone()), SuffixKind::Field);

        // Brute force: the base itself plus each accessible instance field.
        let mut expected: Vec<String> = vec![format!("{base:?}")];
        for f in db.instance_fields(base_ty, ctx.enclosing_type) {
            expected.push(format!("{:?}", Expr::field(base.clone(), f)));
        }
        expected.sort();

        let mut got: Vec<String> = engine
            .completions(&query)
            .take(expected.len() + 10)
            .map(|c| format!("{:?}", c.expr))
            .collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// For `.?*f` with a small depth cap, the completion set must equal the
    /// brute-force enumeration of all field chains up to that length.
    #[test]
    fn star_closure_is_exhaustive_up_to_the_cap(seed in 0u64..200) {
        let db = small_db(seed);
        let Some((enclosing, stmt, _, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None).with_options(
            pex_core::CompleteOptions {
                max_depth: 2,
                ..Default::default()
            },
        );
        let base = args[0].clone();
        let Ok(ValueTy::Known(base_ty)) = db.expr_ty(&base, &ctx) else { return Ok(()) };
        let query =
            PartialExpr::suffix(PartialExpr::Known(base.clone()), SuffixKind::FieldStar);

        // Brute force: chains of 0..=2 instance-field links.
        let mut expected: Vec<String> = Vec::new();
        let mut frontier = vec![(base.clone(), base_ty)];
        expected.push(format!("{base:?}"));
        for _ in 0..2 {
            let mut next = Vec::new();
            for (e, t) in &frontier {
                for f in db.instance_fields(*t, ctx.enclosing_type) {
                    let fe = Expr::field(e.clone(), f);
                    expected.push(format!("{fe:?}"));
                    next.push((fe, db.field(f).ty()));
                }
            }
            frontier = next;
        }
        expected.sort();
        expected.dedup();

        let mut got: Vec<String> = engine
            .completions(&query)
            .take(expected.len() + 20)
            .map(|c| format!("{:?}", c.expr))
            .collect();
        got.sort();
        prop_assert_eq!(got, expected);
    }

    /// Completions are stable across identical runs (determinism).
    #[test]
    fn completion_order_is_deterministic(seed in 0u64..200) {
        let db = small_db(seed);
        let Some((enclosing, stmt, _, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
        let q = PartialExpr::UnknownCall(vec![PartialExpr::Known(args[0].clone())]);
        let a: Vec<String> = engine.completions(&q).take(25).map(|c| engine.render(&c)).collect();
        let b: Vec<String> = engine.completions(&q).take(25).map(|c| engine.render(&c)).collect();
        prop_assert_eq!(a, b);
    }

    /// Reachability pruning (the Section 4.2 index) is an optimisation:
    /// it must never change which completions come out, nor their order.
    #[test]
    fn reach_pruning_is_sound(seed in 0u64..200) {
        let db = small_db(seed);
        let Some((enclosing, stmt, target, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let reach = ReachIndex::build(&db);

        // Filtered chain queries are exactly where pruning bites: the
        // argument hole of a known call restricts chain types.
        let mut hole_args: Vec<PartialExpr> =
            args.iter().map(|a| PartialExpr::Known(a.clone())).collect();
        hole_args[0] = PartialExpr::Hole;
        let query = PartialExpr::KnownCall { candidates: vec![target], args: hole_args };

        let plain = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
        let pruned =
            Completer::new(&db, &ctx, &index, RankConfig::all(), None).with_reach(&reach);
        let a: Vec<String> =
            plain.completions(&query).take(40).map(|c| format!("{:?}", c.expr)).collect();
        let b: Vec<String> =
            pruned.completions(&query).take(40).map(|c| format!("{:?}", c.expr)).collect();
        prop_assert_eq!(a, b, "pruning must not change results");
    }

    /// Disabling ranking terms never changes the *set* of reachable
    /// completions for finite queries, only the order (type-incorrect
    /// candidates stay excluded regardless of configuration).
    #[test]
    fn rank_config_changes_order_not_membership(seed in 0u64..200) {
        let db = small_db(seed);
        let Some((enclosing, stmt, _, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let base = args[0].clone();
        let query = PartialExpr::suffix(PartialExpr::Known(base), SuffixKind::Field);

        let full = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
        let none = Completer::new(&db, &ctx, &index, RankConfig::none(), None);
        let mut a: Vec<String> =
            full.completions(&query).take(100).map(|c| format!("{:?}", c.expr)).collect();
        let mut b: Vec<String> =
            none.completions(&query).take(100).map(|c| format!("{:?}", c.expr)).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b);
    }
}

/// A non-proptest sanity check that the corpus used above actually contains
/// sites (so the properties are not vacuous).
#[test]
fn random_corpora_have_sites() {
    let mut with_sites = 0;
    for seed in 0..10 {
        if first_site(&small_db(seed)).is_some() {
            with_sites += 1;
        }
    }
    assert!(
        with_sites >= 8,
        "only {with_sites}/10 corpora had call sites"
    );
}

/// Statements other than calls exist too — used by the lookup experiments.
/// Scans a band of seeds so the check does not depend on any one PRNG
/// stream producing a particular statement mix.
#[test]
fn random_corpora_have_assignments_and_comparisons() {
    let mut assigns = 0;
    let mut cmps = 0;
    for seed in 0..10 {
        let db = small_db(seed);
        for m in db.methods() {
            if let Some(body) = db.method(m).body() {
                for stmt in &body.stmts {
                    match stmt {
                        Stmt::Expr(Expr::Assign(..)) => assigns += 1,
                        Stmt::Expr(Expr::Cmp(..)) => cmps += 1,
                        _ => {}
                    }
                }
            }
        }
    }
    assert!(assigns > 0);
    assert!(cmps > 0);
}
