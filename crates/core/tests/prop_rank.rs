//! Property tests for the ranking function over generated corpora:
//! additivity (the score under any configuration is the sum of its enabled
//! terms' solo scores), monotonicity (removing a term never raises a
//! score), and breakdown consistency.

use proptest::prelude::*;

use pex_abstract::AbsTypes;
use pex_core::{RankConfig, RankTerm, Ranker};
use pex_corpus::{generate, ClientProfile, LibraryProfile};
use pex_model::{Context, Database, Expr, MethodId};

fn small_db(seed: u64) -> Database {
    let lib = LibraryProfile {
        types: 25,
        namespaces: 4,
        ..Default::default()
    };
    let client = ClientProfile {
        classes: 2,
        ..Default::default()
    };
    generate(&lib, &client, seed)
}

fn sites(db: &Database) -> Vec<(MethodId, usize, Expr)> {
    let mut out = Vec::new();
    for m in db.methods() {
        if let Some(body) = db.method(m).body() {
            for (si, stmt) in body.stmts.iter().enumerate() {
                if let Some(e) = stmt.expr() {
                    out.push((m, si, e.clone()));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn scores_are_additive_over_terms(seed in 0u64..400) {
        let db = small_db(seed);
        for (m, si, expr) in sites(&db).into_iter().take(25) {
            let body = db.method(m).body().expect("sites come from bodies");
            let ctx = Context::at_statement(&db, m, body, si);
            let abs = AbsTypes::for_query(&db, m, si);
            let full = Ranker::new(&db, &ctx, Some(&abs), RankConfig::all());
            let Some(total) = full.score(&expr) else { continue };
            // Sum of solo terms equals the full score.
            let mut sum = 0;
            for term in RankTerm::ALL {
                let solo = Ranker::new(&db, &ctx, Some(&abs), RankConfig::only(&[term]));
                sum += solo.score(&expr).expect("typedness is config-independent");
            }
            prop_assert_eq!(sum, total, "additivity violated for {:?}", expr);
            // Complementarity: without(t) + only(t) == all.
            for term in RankTerm::ALL {
                let without =
                    Ranker::new(&db, &ctx, Some(&abs), RankConfig::without(&[term]));
                let solo = Ranker::new(&db, &ctx, Some(&abs), RankConfig::only(&[term]));
                prop_assert_eq!(
                    without.score(&expr).expect("typed") + solo.score(&expr).expect("typed"),
                    total
                );
            }
            // Breakdown agrees.
            let breakdown = full.explain(&expr).expect("typed");
            prop_assert_eq!(breakdown.total, total);
            let term_sum: u32 = breakdown.terms.iter().map(|(_, v)| *v).sum();
            prop_assert_eq!(term_sum, total);
        }
    }

    #[test]
    fn empty_config_scores_zero(seed in 0u64..200) {
        let db = small_db(seed);
        for (m, si, expr) in sites(&db).into_iter().take(15) {
            let body = db.method(m).body().expect("sites come from bodies");
            let ctx = Context::at_statement(&db, m, body, si);
            let none = Ranker::new(&db, &ctx, None, RankConfig::none());
            if let Some(score) = none.score(&expr) {
                prop_assert_eq!(score, 0, "no terms, no cost: {:?}", expr);
            }
        }
    }

    #[test]
    fn typedness_is_config_independent(seed in 0u64..200) {
        let db = small_db(seed);
        for (m, si, expr) in sites(&db).into_iter().take(15) {
            let body = db.method(m).body().expect("sites come from bodies");
            let ctx = Context::at_statement(&db, m, body, si);
            let all = Ranker::new(&db, &ctx, None, RankConfig::all());
            let none = Ranker::new(&db, &ctx, None, RankConfig::none());
            prop_assert_eq!(all.score(&expr).is_some(), none.score(&expr).is_some());
        }
    }
}
