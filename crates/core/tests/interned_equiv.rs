//! The interned enumeration pipeline is an optimisation, not a semantics
//! change: for every query it must produce exactly the rows the boxed
//! reference pipeline produces — same expressions, same scores, same
//! types, same order, same [`QueryOutcome`] — under any budget and from
//! any number of threads sharing one [`EngineCache`]. These properties pin
//! that equivalence over randomly generated corpora.

use proptest::prelude::*;

use pex_abstract::AbsTypes;
use pex_core::{
    CompleteOptions, Completer, CompletionIter, EngineCache, MethodIndex, PartialExpr, QueryBudget,
    QueryOutcome, RankConfig, ReachIndex, SuffixKind,
};
use pex_corpus::{generate, ClientProfile, LibraryProfile};
use pex_model::{CmpOp, Context, Database, Expr, MethodId, ValueTy};

fn small_db(seed: u64) -> Database {
    let lib = LibraryProfile {
        types: 25,
        namespaces: 4,
        ..Default::default()
    };
    let client = ClientProfile {
        classes: 2,
        ..Default::default()
    };
    generate(&lib, &client, seed)
}

/// First call statement site in the corpus, with its context.
fn first_site(db: &Database) -> Option<(MethodId, usize, MethodId, Vec<Expr>)> {
    for m in db.methods() {
        if let Some(body) = db.method(m).body() {
            for (si, stmt) in body.stmts.iter().enumerate() {
                if let Some(Expr::Call(target, args)) = stmt.expr() {
                    if !args.is_empty() {
                        return Some((m, si, *target, args.clone()));
                    }
                }
            }
        }
    }
    None
}

/// A spread of query shapes covering every expander: holes, both suffix
/// families, unknown and known calls, assignment, comparison, and the
/// parser's ambiguity union.
fn query_mix(target: MethodId, args: &[Expr]) -> Vec<PartialExpr> {
    let known0 = PartialExpr::Known(args[0].clone());
    let mut hole_args: Vec<PartialExpr> =
        args.iter().map(|a| PartialExpr::Known(a.clone())).collect();
    hole_args[0] = PartialExpr::Hole;
    vec![
        PartialExpr::Hole,
        PartialExpr::suffix(known0.clone(), SuffixKind::Field),
        PartialExpr::suffix(known0.clone(), SuffixKind::FieldStar),
        PartialExpr::suffix(known0.clone(), SuffixKind::MethodStar),
        PartialExpr::UnknownCall(vec![known0.clone()]),
        PartialExpr::KnownCall {
            candidates: vec![target],
            args: hole_args,
        },
        PartialExpr::Assign(Box::new(PartialExpr::Hole), Box::new(known0.clone())),
        PartialExpr::Cmp(
            CmpOp::Lt,
            Box::new(known0.clone()),
            Box::new(PartialExpr::Hole),
        ),
        PartialExpr::Alt(vec![
            PartialExpr::UnknownCall(vec![known0.clone()]),
            PartialExpr::suffix(known0, SuffixKind::Method),
        ]),
    ]
}

/// Drains up to `take` rows plus the final outcome into a comparable form.
/// Expressions are compared by debug rendering, which is total (doubles
/// compare by bit pattern in `ExprKey`, and debug text distinguishes them).
fn rows(mut iter: CompletionIter<'_>, take: usize) -> (Vec<(String, u32, ValueTy)>, QueryOutcome) {
    let mut out = Vec::new();
    while out.len() < take {
        match iter.next() {
            Some(c) => out.push((format!("{:?}", c.expr), c.score, c.ty)),
            None => break,
        }
    }
    let outcome = iter.outcome().unwrap_or(QueryOutcome::Limit);
    (out, outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Row-for-row parity on every query shape, unbudgeted.
    #[test]
    fn interned_matches_boxed_row_for_row(seed in 0u64..400) {
        let db = small_db(seed);
        let Some((enclosing, stmt, target, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let abs = AbsTypes::for_query(&db, enclosing, stmt);
        let index = MethodIndex::build(&db);
        let reach = ReachIndex::build(&db);
        let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), Some(&abs))
            .with_reach(&reach);

        for query in query_mix(target, &args) {
            let (boxed, boxed_out) = rows(engine.completions_boxed(&query), 60);
            let (interned, interned_out) = rows(engine.completions(&query), 60);
            prop_assert_eq!(&interned, &boxed, "rows diverged on query {}", query.shape());
            prop_assert_eq!(interned_out, boxed_out, "outcome diverged on query {}", query.shape());
        }
    }

    /// Parity holds under step budgets too: both pipelines charge the same
    /// work sequence, so they are cut off at exactly the same row with the
    /// same degraded outcome.
    #[test]
    fn interned_matches_boxed_under_budgets(seed in 0u64..200, max_steps in 1usize..400) {
        let db = small_db(seed);
        let Some((enclosing, stmt, target, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None)
            .with_options(CompleteOptions {
                budget: QueryBudget {
                    max_steps,
                    ..Default::default()
                },
                ..Default::default()
            });

        for query in query_mix(target, &args) {
            let (boxed, boxed_out) = rows(engine.completions_boxed(&query), 60);
            let (interned, interned_out) = rows(engine.completions(&query), 60);
            prop_assert_eq!(&interned, &boxed,
                "rows diverged on query {} with max_steps {}", query.shape(), max_steps);
            prop_assert_eq!(interned_out, boxed_out,
                "outcome diverged on query {} with max_steps {}", query.shape(), max_steps);
        }
    }

    /// Many threads sharing one [`EngineCache`] (the serve snapshot shape):
    /// concurrent interning must not change anyone's rows, and re-running a
    /// query against the warmed cache must reproduce the cold run.
    #[test]
    fn shared_cache_is_transparent_across_threads(seed in 0u64..100, threads in 1usize..5) {
        let db = small_db(seed);
        let Some((enclosing, stmt, target, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let cache = EngineCache::new();
        let queries = query_mix(target, &args);

        // Boxed reference rows, computed once up front.
        let reference = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
        let expected: Vec<_> = queries
            .iter()
            .map(|q| rows(reference.completions_boxed(q), 40))
            .collect();

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let (cache, queries, expected, db, ctx, index) =
                    (&cache, &queries, &expected, &db, &ctx, &index);
                handles.push(scope.spawn(move || {
                    let engine = Completer::new(db, ctx, index, RankConfig::all(), None)
                        .with_cache(cache);
                    // Stagger the starting query so threads intern
                    // different expressions concurrently.
                    for i in 0..queries.len() {
                        let k = (i + t) % queries.len();
                        let got = rows(engine.completions(&queries[k]), 40);
                        assert_eq!(got, expected[k], "thread {t} diverged on query {k}");
                    }
                }));
            }
            for h in handles {
                h.join().expect("equivalence thread panicked");
            }
        });

        // The cache is now fully warm; a fresh run must still agree.
        let warmed = Completer::new(&db, &ctx, &index, RankConfig::all(), None).with_cache(&cache);
        for (q, exp) in queries.iter().zip(&expected) {
            let got = rows(warmed.completions(q), 40);
            prop_assert_eq!(&got, exp, "warmed-cache run diverged on query {}", q.shape());
        }
    }
}
