//! The best-first pipeline is an optimisation, not a semantics change:
//! for a caller consuming at most `k` rows it must produce exactly the
//! rows the exhaustive pipeline produces — same expressions, same scores,
//! same tie order, same [`QueryOutcome`] — across query shapes, chain
//! depths, and step budgets. These properties pin that agreement over
//! randomly generated corpora.
//!
//! Budget note: the whole point of best-first is to do *less work* per
//! emitted row, so under a step budget the two pipelines trip at
//! different points of the same emission sequence. The honest contract,
//! asserted below, is: a non-degraded best-first run agrees with the
//! exhaustive top-k exactly; a degraded run's rows are an exact prefix of
//! the unbudgeted reference, classified as degraded.

use proptest::prelude::*;

use pex_abstract::AbsTypes;
use pex_core::{
    BestFirstIter, CompleteOptions, Completer, CompletionIter, EngineCache, MethodIndex,
    PartialExpr, QueryBudget, QueryOutcome, RankConfig, ReachIndex, SuffixKind,
};
use pex_corpus::{generate, ClientProfile, LibraryProfile};
use pex_model::{CmpOp, Context, Database, Expr, MethodId, ValueTy};

fn small_db(seed: u64) -> Database {
    let lib = LibraryProfile {
        types: 25,
        namespaces: 4,
        ..Default::default()
    };
    let client = ClientProfile {
        classes: 2,
        ..Default::default()
    };
    generate(&lib, &client, seed)
}

/// First call statement site in the corpus, with its context.
fn first_site(db: &Database) -> Option<(MethodId, usize, MethodId, Vec<Expr>)> {
    for m in db.methods() {
        if let Some(body) = db.method(m).body() {
            for (si, stmt) in body.stmts.iter().enumerate() {
                if let Some(Expr::Call(target, args)) = stmt.expr() {
                    if !args.is_empty() {
                        return Some((m, si, *target, args.clone()));
                    }
                }
            }
        }
    }
    None
}

/// Every query shape the engine compiles, so agreement is pinned both on
/// the chain-rooted shapes where pruning engages and on the product/merge
/// shapes where it must stay disengaged.
fn query_mix(target: MethodId, args: &[Expr]) -> Vec<PartialExpr> {
    let known0 = PartialExpr::Known(args[0].clone());
    let mut hole_args: Vec<PartialExpr> =
        args.iter().map(|a| PartialExpr::Known(a.clone())).collect();
    hole_args[0] = PartialExpr::Hole;
    vec![
        PartialExpr::Hole,
        PartialExpr::suffix(known0.clone(), SuffixKind::Field),
        PartialExpr::suffix(known0.clone(), SuffixKind::FieldStar),
        PartialExpr::suffix(known0.clone(), SuffixKind::MethodStar),
        // A hole-based suffix re-derives each chain through every
        // (base, appended-links) split, so dedup fires and the running
        // threshold must stay disabled — pinned here after a regression.
        PartialExpr::suffix(PartialExpr::Hole, SuffixKind::MethodStar),
        PartialExpr::suffix(PartialExpr::Hole, SuffixKind::FieldStar),
        PartialExpr::UnknownCall(vec![known0.clone()]),
        PartialExpr::KnownCall {
            candidates: vec![target],
            args: hole_args,
        },
        PartialExpr::Assign(Box::new(PartialExpr::Hole), Box::new(known0.clone())),
        PartialExpr::Cmp(
            CmpOp::Lt,
            Box::new(known0.clone()),
            Box::new(PartialExpr::Hole),
        ),
        PartialExpr::Alt(vec![
            PartialExpr::UnknownCall(vec![known0.clone()]),
            PartialExpr::suffix(known0, SuffixKind::Method),
        ]),
    ]
}

type Rows = Vec<(String, u32, ValueTy)>;

fn exhaustive_rows(mut iter: CompletionIter<'_>, take: usize) -> (Rows, QueryOutcome) {
    let mut out = Vec::new();
    while out.len() < take {
        match iter.next() {
            Some(c) => out.push((format!("{:?}", c.expr), c.score, c.ty)),
            None => break,
        }
    }
    let outcome = iter.outcome().unwrap_or(QueryOutcome::Limit);
    (out, outcome)
}

fn bestfirst_rows(mut iter: BestFirstIter<'_>, take: usize) -> (Rows, QueryOutcome) {
    let mut out = Vec::new();
    while out.len() < take {
        match iter.next() {
            Some(c) => out.push((format!("{:?}", c.expr), c.score, c.ty)),
            None => break,
        }
    }
    let outcome = iter.outcome().unwrap_or(QueryOutcome::Limit);
    (out, outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Row-for-row, tie-order, and outcome agreement of best-first top-k
    /// with the exhaustive pipeline, across every query shape, chain
    /// depths 1–4, result limits, and both filter modes.
    #[test]
    fn bestfirst_matches_exhaustive_top_k(seed in 0u64..300, k in 1usize..25) {
        let db = small_db(seed);
        let Some((enclosing, stmt, target, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let abs = AbsTypes::for_query(&db, enclosing, stmt);
        let index = MethodIndex::build(&db);
        let reach = ReachIndex::build(&db);
        let expected_ty = db.expr_ty(&args[0], &ctx).ok().and_then(|t| match t {
            ValueTy::Known(t) => Some(t),
            ValueTy::Wildcard => None,
        });

        for depth in 1usize..=4 {
            for expected in [None, expected_ty] {
                let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), Some(&abs))
                    .with_reach(&reach)
                    .with_options(CompleteOptions {
                        expected,
                        max_depth: depth,
                        ..Default::default()
                    });
                for query in query_mix(target, &args) {
                    let (reference, ref_out) = exhaustive_rows(engine.completions(&query), k);
                    let (bf, bf_out) =
                        bestfirst_rows(engine.completions_bestfirst(&query, k), k);
                    prop_assert_eq!(
                        &bf, &reference,
                        "rows diverged on {} depth {} expected {:?} k {}",
                        query.shape(), depth, expected, k
                    );
                    prop_assert_eq!(
                        bf_out, ref_out,
                        "outcome diverged on {} depth {} expected {:?} k {}",
                        query.shape(), depth, expected, k
                    );
                }
            }
        }
    }

    /// Budgeted agreement. Best-first spends fewer steps per row, so a
    /// fixed step budget cuts the two pipelines off at different points of
    /// the same sequence; what must hold is that a budgeted best-first run
    /// emits an exact prefix of the unbudgeted reference (never a wrong or
    /// reordered row), equals it entirely when the run was not degraded,
    /// and never emits fewer rows than the budgeted exhaustive run.
    #[test]
    fn budgeted_bestfirst_is_an_honest_prefix(seed in 0u64..150, max_steps in 1usize..400) {
        let db = small_db(seed);
        let Some((enclosing, stmt, target, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let reach = ReachIndex::build(&db);
        const K: usize = 15;

        let budgeted_options = CompleteOptions {
            budget: QueryBudget {
                max_steps,
                ..Default::default()
            },
            ..Default::default()
        };

        for query in query_mix(target, &args) {
            let unbudgeted = Completer::new(&db, &ctx, &index, RankConfig::all(), None)
                .with_reach(&reach);
            let (reference, _) = exhaustive_rows(unbudgeted.completions(&query), K);

            let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None)
                .with_reach(&reach)
                .with_options(budgeted_options.clone());
            let (exhaustive, _) = exhaustive_rows(engine.completions(&query), K);
            let (bf, bf_out) = bestfirst_rows(engine.completions_bestfirst(&query, K), K);

            prop_assert!(
                bf.len() <= reference.len() && bf[..] == reference[..bf.len()],
                "best-first rows are not a prefix of the reference on {} with max_steps {}",
                query.shape(), max_steps
            );
            prop_assert!(
                bf.len() >= exhaustive.len(),
                "best-first emitted fewer rows than exhaustive under the same budget on {} \
                 with max_steps {} ({} vs {})",
                query.shape(), max_steps, bf.len(), exhaustive.len()
            );
            if !bf_out.is_degraded() {
                prop_assert_eq!(
                    &bf, &reference,
                    "non-degraded best-first must match the full top-k on {} with max_steps {}",
                    query.shape(), max_steps
                );
            }
        }
    }

    /// Shared-cache transparency for the best-first path (the serve
    /// snapshot shape): interleaved warm-cache runs reproduce cold rows.
    #[test]
    fn bestfirst_shared_cache_is_transparent(seed in 0u64..60) {
        let db = small_db(seed);
        let Some((enclosing, stmt, target, args)) = first_site(&db) else { return Ok(()) };
        let body = db.method(enclosing).body().expect("site came from a body");
        let ctx = Context::at_statement(&db, enclosing, body, stmt);
        let index = MethodIndex::build(&db);
        let reach = ReachIndex::build(&db);
        let cache = EngineCache::new();
        let queries = query_mix(target, &args);

        let cold = Completer::new(&db, &ctx, &index, RankConfig::all(), None).with_reach(&reach);
        let expected: Vec<_> = queries
            .iter()
            .map(|q| bestfirst_rows(cold.completions_bestfirst(q, 20), 20))
            .collect();

        let warm = Completer::new(&db, &ctx, &index, RankConfig::all(), None)
            .with_reach(&reach)
            .with_cache(&cache);
        for round in 0..2 {
            for (q, exp) in queries.iter().zip(&expected) {
                let got = bestfirst_rows(warm.completions_bestfirst(q, 20), 20);
                prop_assert_eq!(
                    &got, exp,
                    "shared-cache best-first diverged on {} round {}", q.shape(), round
                );
            }
        }
    }
}

/// Deterministic guard that the pruning machinery actually engages on a
/// deep filtered chain query — so the equivalence above is exercising
/// best-first, not an accidentally-disabled fallback. The corpus is a
/// self-recursive chain type: `cv.Extra.V` and `cv.Extra.D.V` fill the
/// top-2 (setting the running threshold τ at their scores), after which
/// the strictly costlier `cv.Extra.D.D` prefix — whose admissible bound
/// exceeds τ — must be dropped at push time, before the second row is
/// even emitted.
#[test]
fn pruning_fires_on_deep_filtered_queries() {
    let db = pex_model::minics::compile(
        r#"
        namespace G {
            class Dummy {
                int V;
                G.Dummy D;
            }
            class Canvas {
                G.Dummy Extra;
            }
        }
        "#,
    )
    .unwrap();
    let int_ty = db.types().lookup_qualified("int").unwrap();
    let canvas = db.types().lookup_qualified("G.Canvas").unwrap();
    let ctx = Context::with_locals(
        None,
        vec![pex_model::Local {
            name: "cv".into(),
            ty: canvas,
        }],
    );
    let index = MethodIndex::build(&db);
    let reach = ReachIndex::build(&db);
    let engine = Completer::new(&db, &ctx, &index, RankConfig::all(), None)
        .with_reach(&reach)
        .with_options(CompleteOptions {
            expected: Some(int_ty),
            max_depth: 4,
            ..Default::default()
        });

    let before = pex_obs::registry()
        .counter("engine.bestfirst.pruned_bound")
        .get();
    let expanded_before = pex_obs::registry()
        .counter("engine.bestfirst.expanded")
        .get();
    let rows: Vec<_> = engine
        .completions_bestfirst(&PartialExpr::Hole, 2)
        .collect();
    assert_eq!(rows.len(), 2, "the filtered hole query fills the top-2");
    assert!(
        pex_obs::registry()
            .counter("engine.bestfirst.expanded")
            .get()
            > expanded_before,
        "best-first search must report expansions"
    );
    assert!(
        pex_obs::registry()
            .counter("engine.bestfirst.pruned_bound")
            .get()
            > before,
        "a deep filtered query must prune over-bound pushes"
    );
}
