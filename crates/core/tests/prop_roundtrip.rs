//! Render → parse round-trips: expressions extracted from generated
//! corpora, rendered in C# style, must re-resolve to the same expression
//! through the partial-expression parser.

use proptest::prelude::*;

use pex_core::{parse_partial, PartialExpr};
use pex_corpus::{generate, ClientProfile, LibraryProfile};
use pex_model::{CallStyle, Context, Database, Expr, MethodId};

fn small_db(seed: u64) -> Database {
    let lib = LibraryProfile {
        types: 25,
        namespaces: 4,
        ..Default::default()
    };
    let client = ClientProfile {
        classes: 2,
        ..Default::default()
    };
    generate(&lib, &client, seed)
}

/// Whether an expression survives rendering textually: opaque expressions
/// render as pseudo-code, the literal `0` re-parses as a hole, and string
/// escapes are not worth normalising here.
fn renderable(e: &Expr) -> bool {
    match e {
        Expr::Opaque { .. } | Expr::StrLit(_) | Expr::Null | Expr::Hole0 => false,
        Expr::IntLit(v) => *v != 0,
        Expr::DoubleLit(_) => false, // float formatting round-trips are a separate concern
        _ => e.children().iter().all(|c| renderable(c)),
    }
}

fn sites(db: &Database) -> Vec<(MethodId, usize, Expr)> {
    let mut out = Vec::new();
    for m in db.methods() {
        if let Some(body) = db.method(m).body() {
            for (si, stmt) in body.stmts.iter().enumerate() {
                if let Some(e) = stmt.expr() {
                    out.push((m, si, e.clone()));
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn corpus_expressions_round_trip_through_the_parser(seed in 0u64..400) {
        let db = small_db(seed);
        for (m, si, expr) in sites(&db).into_iter().take(30) {
            if !renderable(&expr) {
                continue;
            }
            let body = db.method(m).body().expect("sites come from bodies");
            let ctx = Context::at_statement(&db, m, body, si);
            let text = pex_model::render_expr(&db, &ctx, &expr, CallStyle::Receiver);
            let parsed = parse_partial(&db, &ctx, &text);
            let parsed = match parsed {
                Ok(p) => p,
                Err(e) => {
                    return Err(TestCaseError::fail(format!(
                        "rendered `{text}` failed to parse: {e}"
                    )))
                }
            };
            match parsed {
                PartialExpr::Known(e2) => prop_assert_eq!(
                    &e2, &expr,
                    "render/parse mismatch for `{}`", text
                ),
                // Overload ambiguity can keep the call partial; the original
                // method must then be among the candidates and the structure
                // must still derive the original.
                other => prop_assert!(
                    pex_core::derives(&db, &ctx, &other, &expr),
                    "ambiguous parse of `{}` must still derive the original",
                    text
                ),
            }
        }
    }
}
