//! Reference semantics: a checker for the paper's Figure 6 rewrite relation.
//!
//! [`derives`] decides whether a complete expression is a legal completion of
//! a partial expression in a context. The completion engine never calls
//! this — it produces completions constructively — but tests use it as the
//! specification: every engine output must derive from its query.

use pex_model::{Context, Database, Expr};

use super::PartialExpr;

/// Whether `e` is a completion of `pe` under the Figure 6 semantics
/// (including the final type-check, with `0` as a wildcard).
pub fn derives(db: &Database, ctx: &Context, pe: &PartialExpr, e: &Expr) -> bool {
    derives_structural(db, ctx, pe, e) && db.expr_ty(e, ctx).is_ok()
}

/// Structural derivability, without the final type-check.
pub(crate) fn derives_structural(db: &Database, ctx: &Context, pe: &PartialExpr, e: &Expr) -> bool {
    match pe {
        PartialExpr::Hole0 => matches!(e, Expr::Hole0),
        PartialExpr::Known(k) => k == e,
        // `?` is `v.?*m` for any live local (incl. `this`) or global.
        PartialExpr::Hole => is_chain(db, ctx, e),
        PartialExpr::Suffix(base, kind) => {
            // Peel 0..=limit trailing links off `e`, trying each split.
            let mut links = 0usize;
            let mut cur = e;
            loop {
                let within_limit = kind.is_star() || links <= 1;
                if within_limit && derives_structural(db, ctx, base, cur) {
                    return true;
                }
                match peel_link(db, cur) {
                    Some((inner, is_method)) => {
                        if is_method && !kind.allows_methods() {
                            // A method link is never allowed for `f` kinds.
                            return false;
                        }
                        links += 1;
                        if !kind.is_star() && links > 1 {
                            return false;
                        }
                        cur = inner;
                    }
                    None => return false,
                }
            }
        }
        PartialExpr::UnknownCall(qargs) => {
            let Expr::Call(m, full) = e else { return false };
            if full.len() != db.method(*m).full_arity() {
                return false;
            }
            assign_injective(db, ctx, qargs, full, &mut vec![false; full.len()], 0)
        }
        PartialExpr::KnownCall { candidates, args } => {
            let Expr::Call(m, full) = e else { return false };
            candidates.contains(m)
                && full.len() == args.len()
                && args
                    .iter()
                    .zip(full)
                    .all(|(q, a)| derives_structural(db, ctx, q, a))
        }
        PartialExpr::Assign(l, r) => {
            let Expr::Assign(el, er) = e else {
                return false;
            };
            derives_structural(db, ctx, l, el) && derives_structural(db, ctx, r, er)
        }
        PartialExpr::Cmp(op, l, r) => {
            let Expr::Cmp(eop, el, er) = e else {
                return false;
            };
            op == eop && derives_structural(db, ctx, l, el) && derives_structural(db, ctx, r, er)
        }
        PartialExpr::Alt(alts) => alts.iter().any(|a| derives_structural(db, ctx, a, e)),
    }
}

/// Recursive search for an injective placement of query args into call
/// positions; unused positions must hold `0`.
fn assign_injective(
    db: &Database,
    ctx: &Context,
    qargs: &[PartialExpr],
    full: &[Expr],
    used: &mut Vec<bool>,
    i: usize,
) -> bool {
    if i == qargs.len() {
        return full
            .iter()
            .zip(used.iter())
            .all(|(a, &u)| u || matches!(a, Expr::Hole0));
    }
    for (j, actual) in full.iter().enumerate() {
        if used[j] || !derives_structural(db, ctx, &qargs[i], actual) {
            continue;
        }
        used[j] = true;
        if assign_injective(db, ctx, qargs, full, used, i + 1) {
            used[j] = false;
            return true;
        }
        used[j] = false;
    }
    false
}

/// If `e` ends with a chain link (instance field lookup or zero-argument
/// instance call), returns the inner expression and whether the link is a
/// method call.
fn peel_link<'e>(db: &Database, e: &'e Expr) -> Option<(&'e Expr, bool)> {
    match e {
        Expr::FieldAccess(base, f) if !db.field(*f).is_static() => Some((base, false)),
        Expr::Call(m, args) if args.len() == 1 && db.method(*m).params().is_empty() => {
            Some((&args[0], true))
        }
        _ => None,
    }
}

/// Whether `e` is a `v.?*m`-shaped chain: a live local, `this`, or a global
/// (static field / zero-argument static call), followed by any number of
/// instance lookups / zero-argument calls.
fn is_chain(db: &Database, ctx: &Context, e: &Expr) -> bool {
    match e {
        Expr::Local(l) => l.index() < ctx.locals.len(),
        Expr::This => ctx.this_type().is_some(),
        Expr::StaticField(f) => db.field(*f).is_static(),
        Expr::FieldAccess(base, f) => !db.field(*f).is_static() && is_chain(db, ctx, base),
        Expr::Call(m, args) => {
            let md = db.method(*m);
            if !md.params().is_empty() {
                return false;
            }
            match (md.is_static(), args.len()) {
                (true, 0) => true,                         // global root
                (false, 1) => is_chain(db, ctx, &args[0]), // chain link
                _ => false,
            }
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_partial;
    use pex_model::minics::compile;
    use pex_model::{Context, Local};

    fn setup() -> (Database, Context) {
        let db = compile(
            r#"
            namespace Geo {
                struct Point { int X; int Y; }
                class Line {
                    Geo.Point P1;
                    Geo.Point P2;
                    Geo.Point Mid();
                    static double Distance(Geo.Point a, Geo.Point b);
                    static Geo.Line Unit;
                }
            }
            "#,
        )
        .unwrap();
        let point = db.types().lookup_qualified("Geo.Point").unwrap();
        let line = db.types().lookup_qualified("Geo.Line").unwrap();
        let ctx = Context::instance(
            line,
            vec![
                Local {
                    name: "p".into(),
                    ty: point,
                },
                Local {
                    name: "ln".into(),
                    ty: line,
                },
            ],
        );
        (db, ctx)
    }

    fn known(db: &Database, ctx: &Context, src: &str) -> Expr {
        match parse_partial(db, ctx, src).unwrap() {
            PartialExpr::Known(e) => e,
            other => panic!("expected complete expression, got {other:?}"),
        }
    }

    #[test]
    fn hole_derives_chains_only() {
        let (db, ctx) = setup();
        let pe = PartialExpr::Hole;
        for good in [
            "p",
            "this",
            "ln.P1",
            "this.P1.X",
            "ln.Mid()",
            "Geo.Line.Unit",
        ] {
            let e = known(&db, &ctx, good);
            assert!(derives(&db, &ctx, &pe, &e), "{good} should derive from ?");
        }
        assert!(!derives(&db, &ctx, &pe, &Expr::IntLit(3)));
        assert!(!derives(&db, &ctx, &pe, &Expr::Hole0));
        let dist = known(&db, &ctx, "Geo.Line.Distance(p, p)");
        assert!(
            !derives(&db, &ctx, &pe, &dist),
            "argful calls are not chains"
        );
    }

    #[test]
    fn suffix_limits_links_and_kinds() {
        let (db, ctx) = setup();
        let q_f = parse_partial(&db, &ctx, "ln.?f").unwrap();
        let q_fs = parse_partial(&db, &ctx, "ln.?*f").unwrap();
        let q_m = parse_partial(&db, &ctx, "ln.?m").unwrap();
        let q_ms = parse_partial(&db, &ctx, "ln.?*m").unwrap();

        let ln = known(&db, &ctx, "ln");
        let one = known(&db, &ctx, "ln.P1");
        let two = known(&db, &ctx, "ln.P1.X");
        let call = known(&db, &ctx, "ln.Mid()");
        let call_then_field = known(&db, &ctx, "ln.Mid().X");

        // Omission is always allowed.
        for q in [&q_f, &q_fs, &q_m, &q_ms] {
            assert!(derives(&db, &ctx, q, &ln));
        }
        assert!(derives(&db, &ctx, &q_f, &one));
        assert!(
            !derives(&db, &ctx, &q_f, &two),
            ".?f allows at most one link"
        );
        assert!(derives(&db, &ctx, &q_fs, &two));
        assert!(!derives(&db, &ctx, &q_f, &call), ".?f forbids method links");
        assert!(!derives(&db, &ctx, &q_fs, &call_then_field));
        assert!(derives(&db, &ctx, &q_m, &call));
        assert!(derives(&db, &ctx, &q_ms, &call_then_field));
        assert!(!derives(&db, &ctx, &q_m, &call_then_field), "one link only");
    }

    #[test]
    fn unknown_call_reorders_and_zero_fills() {
        let (db, ctx) = setup();
        let q = parse_partial(&db, &ctx, "?({p})").unwrap();
        let dist = db
            .methods()
            .find(|m| db.method(*m).name() == "Distance")
            .unwrap();
        let p = known(&db, &ctx, "p");
        // Distance(p, 0) and Distance(0, p) both derive.
        let c1 = Expr::Call(dist, vec![p.clone(), Expr::Hole0]);
        let c2 = Expr::Call(dist, vec![Expr::Hole0, p.clone()]);
        assert!(derives(&db, &ctx, &q, &c1));
        assert!(derives(&db, &ctx, &q, &c2));
        // Unused positions must be 0, args must be placed.
        let c3 = Expr::Call(dist, vec![p.clone(), p.clone()]);
        assert!(!derives(&db, &ctx, &q, &c3));
        let c4 = Expr::Call(dist, vec![Expr::Hole0, Expr::Hole0]);
        assert!(!derives(&db, &ctx, &q, &c4));
        // Two identical args need two distinct positions.
        let q2 = parse_partial(&db, &ctx, "?({p, p})").unwrap();
        assert!(derives(&db, &ctx, &q2, &c3));
        assert!(!derives(&db, &ctx, &q2, &c1));
    }

    #[test]
    fn known_call_is_positional() {
        let (db, ctx) = setup();
        let q = parse_partial(&db, &ctx, "Distance(p, ?)").unwrap();
        let dist = db
            .methods()
            .find(|m| db.method(*m).name() == "Distance")
            .unwrap();
        let p = known(&db, &ctx, "p");
        let mid = known(&db, &ctx, "ln.Mid()");
        assert!(derives(
            &db,
            &ctx,
            &q,
            &Expr::Call(dist, vec![p.clone(), mid.clone()])
        ));
        // The hole is in the second position; a literal cannot fill it.
        assert!(!derives(
            &db,
            &ctx,
            &q,
            &Expr::Call(dist, vec![p.clone(), Expr::IntLit(1)])
        ));
        // First position must be exactly `p`.
        assert!(!derives(
            &db,
            &ctx,
            &q,
            &Expr::Call(dist, vec![mid.clone(), p.clone()])
        ));
    }

    #[test]
    fn operators_check_types() {
        let (db, ctx) = setup();
        let q = parse_partial(&db, &ctx, "p.?*m >= this.?*m").unwrap();
        let good = known(&db, &ctx, "p.X >= this.P1.Y");
        assert!(derives(&db, &ctx, &q, &good));
        // Structurally fine but ill-typed: Point >= Point is not comparable.
        let bad = known(&db, &ctx, "p.X").clone();
        let p = known(&db, &ctx, "p");
        let cmp = Expr::cmp(pex_model::CmpOp::Ge, p.clone(), p);
        assert!(!derives(&db, &ctx, &q, &cmp));
        let _ = bad;
    }
}
