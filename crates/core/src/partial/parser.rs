//! Parser for the partial-expression surface syntax.
//!
//! The grammar is the paper's Figure 5(b) with the concrete spellings used
//! throughout the paper's examples:
//!
//! ```text
//! query    ::= operand ((':=' | '=') operand | cmpop operand)?
//! operand  ::= '?' '(' '{' operand,* '}' ')'        unknown-method call
//!            | postfix
//! postfix  ::= primary suffix*
//! suffix   ::= '.?f' | '.?*f' | '.?m' | '.?*m'
//!            | '.' ident | '.' ident '(' operand,* ')' | '(' operand,* ')'
//! primary  ::= '?' | '0' | literal | 'this' | ident
//! ```
//!
//! Known names are resolved against the query's [`Context`] and [`Database`]
//! with C#-style simple-name resolution (local → member of enclosing type →
//! type → namespace root).

use std::error::Error;
use std::fmt;

use pex_model::{CmpOp, Context, Database, Expr, MethodId, ValueTy};
use pex_types::{PrimKind, TypeId};

use super::{PartialExpr, SuffixKind};

/// A parse or resolution error, with a character offset into the query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 0-based character offset of the error.
    pub at: usize,
    /// Human-readable description.
    pub msg: String,
}

impl ParseError {
    fn new(at: usize, msg: impl Into<String>) -> Self {
        ParseError {
            at,
            msg: msg.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "at offset {}: {}", self.at, self.msg)
    }
}

impl Error for ParseError {}

/// Parses a partial-expression query in the given code context.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed syntax or on names that do not
/// resolve in the context.
pub fn parse_partial(db: &Database, ctx: &Context, query: &str) -> Result<PartialExpr, ParseError> {
    let toks = lex(query)?;
    let mut p = Parser {
        db,
        ctx,
        toks,
        pos: 0,
        depth: 0,
    };
    let pe = p.query()?;
    p.expect_eof()?;
    Ok(pe)
}

/// Nesting bound for recursive productions: queries are single expressions,
/// so anything deeper is adversarial input, rejected rather than risking a
/// stack overflow.
const MAX_DEPTH: usize = 128;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Double(f64),
    Str(String),
    Question,
    Star,
    Dot,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    AssignOp,
    Cmp(CmpOp),
    Eof,
}

fn lex(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        let at = i;
        match c {
            c if c.is_whitespace() => {
                i += 1;
                continue;
            }
            '?' => {
                out.push((Tok::Question, at));
                i += 1;
            }
            '*' => {
                out.push((Tok::Star, at));
                i += 1;
            }
            '.' => {
                out.push((Tok::Dot, at));
                i += 1;
            }
            '(' => {
                out.push((Tok::LParen, at));
                i += 1;
            }
            ')' => {
                out.push((Tok::RParen, at));
                i += 1;
            }
            '{' => {
                out.push((Tok::LBrace, at));
                i += 1;
            }
            '}' => {
                out.push((Tok::RBrace, at));
                i += 1;
            }
            ',' => {
                out.push((Tok::Comma, at));
                i += 1;
            }
            ':' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Tok::AssignOp, at));
                    i += 2;
                } else {
                    return Err(ParseError::new(at, "expected `:=`"));
                }
            }
            '=' => {
                out.push((Tok::AssignOp, at));
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Tok::Cmp(CmpOp::Le), at));
                    i += 2;
                } else {
                    out.push((Tok::Cmp(CmpOp::Lt), at));
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push((Tok::Cmp(CmpOp::Ge), at));
                    i += 2;
                } else {
                    out.push((Tok::Cmp(CmpOp::Gt), at));
                    i += 1;
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(ParseError::new(at, "unterminated string literal")),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                out.push((Tok::Str(s), at));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while chars.get(i).is_some_and(|c| c.is_ascii_digit()) {
                    i += 1;
                }
                let mut is_double = false;
                if chars.get(i) == Some(&'.')
                    && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                {
                    is_double = true;
                    i += 1;
                    while chars.get(i).is_some_and(|c| c.is_ascii_digit()) {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_double {
                    out.push((
                        Tok::Double(text.parse().map_err(|_| ParseError::new(at, "bad float"))?),
                        at,
                    ));
                } else {
                    out.push((
                        Tok::Int(
                            text.parse()
                                .map_err(|_| ParseError::new(at, "bad integer"))?,
                        ),
                        at,
                    ));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while chars
                    .get(i)
                    .is_some_and(|c| c.is_ascii_alphanumeric() || *c == '_')
                {
                    i += 1;
                }
                out.push((Tok::Ident(chars[start..i].iter().collect()), at));
            }
            other => {
                return Err(ParseError::new(
                    at,
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    out.push((Tok::Eof, chars.len()));
    Ok(out)
}

/// Intermediate state of a dotted chain during resolution.
enum St {
    Value(Expr),
    Type(TypeId),
    Ns(Vec<String>),
    Part(PartialExpr),
}

struct Parser<'a> {
    db: &'a Database,
    ctx: &'a Context,
    toks: Vec<(Tok, usize)>,
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn at(&self) -> usize {
        self.toks[self.pos].1
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(ParseError::new(self.at(), format!("expected {what}")))
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseError> {
        if self.peek() == &Tok::Eof {
            Ok(())
        } else {
            Err(ParseError::new(self.at(), "unexpected trailing input"))
        }
    }

    fn query(&mut self) -> Result<PartialExpr, ParseError> {
        let lhs = self.operand()?;
        match self.peek().clone() {
            Tok::AssignOp => {
                self.bump();
                let rhs = self.operand()?;
                if let (PartialExpr::Known(l), PartialExpr::Known(r)) = (&lhs, &rhs) {
                    return Ok(PartialExpr::Known(Expr::assign(l.clone(), r.clone())));
                }
                Ok(PartialExpr::assign(lhs, rhs))
            }
            Tok::Cmp(op) => {
                self.bump();
                let rhs = self.operand()?;
                if let (PartialExpr::Known(l), PartialExpr::Known(r)) = (&lhs, &rhs) {
                    return Ok(PartialExpr::Known(Expr::cmp(op, l.clone(), r.clone())));
                }
                Ok(PartialExpr::cmp(op, lhs, rhs))
            }
            _ => Ok(lhs),
        }
    }

    fn operand(&mut self) -> Result<PartialExpr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(ParseError::new(self.at(), "query is nested too deeply"));
        }
        let result = self.operand_inner();
        self.depth -= 1;
        result
    }

    fn operand_inner(&mut self) -> Result<PartialExpr, ParseError> {
        // `?({...})` unknown-method call vs bare `?` hole.
        if self.peek() == &Tok::Question
            && self.toks.get(self.pos + 1).map(|t| &t.0) == Some(&Tok::LParen)
        {
            self.bump(); // ?
            self.bump(); // (
            self.expect(&Tok::LBrace, "`{`")?;
            let mut args = Vec::new();
            if !self.eat(&Tok::RBrace) {
                loop {
                    args.push(self.operand()?);
                    if self.eat(&Tok::Comma) {
                        continue;
                    }
                    self.expect(&Tok::RBrace, "`}`")?;
                    break;
                }
            }
            self.expect(&Tok::RParen, "`)`")?;
            return Ok(PartialExpr::UnknownCall(args));
        }
        let st = self.postfix()?;
        self.finish(st)
    }

    fn finish(&mut self, st: St) -> Result<PartialExpr, ParseError> {
        match st {
            St::Value(e) => Ok(PartialExpr::Known(e)),
            St::Part(p) => Ok(p),
            St::Type(t) => Err(ParseError::new(
                self.at(),
                format!(
                    "`{}` is a type, not a value",
                    self.db.types().qualified_name(t)
                ),
            )),
            St::Ns(path) => Err(ParseError::new(
                self.at(),
                format!("`{}` is a namespace, not a value", path.join(".")),
            )),
        }
    }

    fn postfix(&mut self) -> Result<St, ParseError> {
        let mut st = self.primary()?;
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    st = self.suffix_after_dot(st)?;
                }
                Tok::LParen => {
                    // Call on a bare name is handled inside `primary`; a
                    // stray `(` on a value is an error.
                    return Err(ParseError::new(self.at(), "expression is not callable"));
                }
                _ => return Ok(st),
            }
        }
    }

    fn suffix_after_dot(&mut self, st: St) -> Result<St, ParseError> {
        let at = self.at();
        if self.eat(&Tok::Question) {
            // `.?f`, `.?*f`, `.?m`, `.?*m`
            let star = self.eat(&Tok::Star);
            let kind = match self.bump() {
                Tok::Ident(s) if s == "f" => {
                    if star {
                        SuffixKind::FieldStar
                    } else {
                        SuffixKind::Field
                    }
                }
                Tok::Ident(s) if s == "m" => {
                    if star {
                        SuffixKind::MethodStar
                    } else {
                        SuffixKind::Method
                    }
                }
                _ => return Err(ParseError::new(at, "expected `f` or `m` after `.?`")),
            };
            let base = match st {
                St::Value(e) => PartialExpr::Known(e),
                St::Part(p @ PartialExpr::Suffix(..)) => p,
                St::Part(_) => {
                    return Err(ParseError::new(
                        at,
                        "`.?` suffixes apply only to expressions and other `.?` suffixes",
                    ))
                }
                St::Type(_) | St::Ns(_) => {
                    return Err(ParseError::new(
                        at,
                        "`.?` suffixes apply only to expressions",
                    ))
                }
            };
            return Ok(St::Part(PartialExpr::suffix(base, kind)));
        }
        let name = match self.bump() {
            Tok::Ident(s) => s,
            _ => return Err(ParseError::new(at, "expected a member name after `.`")),
        };
        // A call?
        if self.peek() == &Tok::LParen {
            let args = self.call_args()?;
            return self.resolve_call(st, &name, args, at);
        }
        // Plain member access.
        match st {
            St::Value(e) => {
                let ty = self.value_type(&e, at)?;
                for owner in self.db.member_lookup_chain(ty) {
                    for &f in self.db.fields_of(owner) {
                        let fd = self.db.field(f);
                        if fd.name() == name
                            && !fd.is_static()
                            && self
                                .db
                                .accessible(fd.visibility(), owner, self.ctx.enclosing_type)
                        {
                            return Ok(St::Value(Expr::field(e, f)));
                        }
                    }
                }
                Err(ParseError::new(
                    at,
                    format!(
                        "type `{}` has no accessible instance field `{name}`",
                        self.db.types().qualified_name(ty)
                    ),
                ))
            }
            St::Type(t) => {
                for &f in self.db.fields_of(t) {
                    let fd = self.db.field(f);
                    if fd.name() == name
                        && fd.is_static()
                        && self
                            .db
                            .accessible(fd.visibility(), t, self.ctx.enclosing_type)
                    {
                        return Ok(St::Value(Expr::StaticField(f)));
                    }
                }
                Err(ParseError::new(
                    at,
                    format!(
                        "type `{}` has no accessible static field `{name}`",
                        self.db.types().qualified_name(t)
                    ),
                ))
            }
            St::Ns(mut path) => {
                if let Some(ns) = self.db.types().namespaces().lookup_dotted(&path.join(".")) {
                    if let Some(ty) = self.db.types().lookup(ns, &name) {
                        return Ok(St::Type(ty));
                    }
                }
                path.push(name);
                if self.is_ns_prefix(&path) {
                    return Ok(St::Ns(path));
                }
                Err(ParseError::new(
                    at,
                    format!("unknown namespace or type `{}`", path.join(".")),
                ))
            }
            St::Part(_) => Err(ParseError::new(
                at,
                "cannot access a named member of a hole; use `.?f` / `.?m`",
            )),
        }
    }

    fn call_args(&mut self) -> Result<Vec<PartialExpr>, ParseError> {
        self.expect(&Tok::LParen, "`(`")?;
        let mut args = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                args.push(self.operand()?);
                if self.eat(&Tok::Comma) {
                    continue;
                }
                self.expect(&Tok::RParen, "`)`")?;
                break;
            }
        }
        Ok(args)
    }

    /// Resolves `st.name(args)` to a known-method call (collapsing to a
    /// concrete expression when the call is unambiguous and hole-free).
    fn resolve_call(
        &mut self,
        st: St,
        name: &str,
        args: Vec<PartialExpr>,
        at: usize,
    ) -> Result<St, ParseError> {
        let (candidates, full_args): (Vec<MethodId>, Vec<PartialExpr>) = match st {
            St::Value(recv) => {
                let ty = self.value_type(&recv, at)?;
                let mut cands = Vec::new();
                for owner in self.db.member_lookup_chain(ty) {
                    for &m in self.db.methods_of(owner) {
                        let md = self.db.method(m);
                        if md.name() == name
                            && !md.is_static()
                            && self
                                .db
                                .accessible(md.visibility(), owner, self.ctx.enclosing_type)
                        {
                            cands.push(m);
                        }
                    }
                }
                let mut full = vec![PartialExpr::Known(recv)];
                full.extend(args);
                (cands, full)
            }
            St::Type(t) => {
                let mut cands = Vec::new();
                for owner in self.db.member_lookup_chain(t) {
                    for &m in self.db.methods_of(owner) {
                        let md = self.db.method(m);
                        if md.name() == name
                            && md.is_static()
                            && self
                                .db
                                .accessible(md.visibility(), owner, self.ctx.enclosing_type)
                        {
                            cands.push(m);
                        }
                    }
                }
                (cands, args)
            }
            St::Ns(path) => {
                return Err(ParseError::new(
                    at,
                    format!("cannot call a method on namespace `{}`", path.join(".")),
                ))
            }
            St::Part(_) => return Err(ParseError::new(at, "cannot call a named method on a hole")),
        };
        self.build_known_call(candidates, full_args, name, at)
    }

    fn build_known_call(
        &mut self,
        candidates: Vec<MethodId>,
        args: Vec<PartialExpr>,
        name: &str,
        at: usize,
    ) -> Result<St, ParseError> {
        // Keep only candidates whose arity matches the written argument list.
        let arity = args.len();
        let candidates: Vec<MethodId> = candidates
            .into_iter()
            .filter(|m| self.db.method(*m).full_arity() == arity)
            .collect();
        if candidates.is_empty() {
            return Err(ParseError::new(
                at,
                format!("no accessible method `{name}` takes {arity} argument(s)"),
            ));
        }
        // Collapse to a concrete expression when hole-free and unambiguous.
        let all_known = args.iter().all(|a| matches!(a, PartialExpr::Known(_)));
        if all_known {
            let exprs: Vec<Expr> = args
                .iter()
                .map(|a| match a {
                    PartialExpr::Known(e) => e.clone(),
                    _ => unreachable!("all_known"),
                })
                .collect();
            let mut best: Option<(u32, MethodId)> = None;
            let mut ambiguous = false;
            for &m in &candidates {
                let call = Expr::Call(m, exprs.clone());
                if self.db.expr_ty(&call, self.ctx).is_ok() {
                    let cost: u32 = exprs
                        .iter()
                        .zip(self.db.method(m).full_param_types())
                        .map(|(e, want)| match self.db.expr_ty(e, self.ctx) {
                            Ok(ValueTy::Known(t)) => {
                                self.db.types().type_distance(t, want).unwrap_or(0)
                            }
                            _ => 0,
                        })
                        .sum();
                    match best {
                        Some((b, _)) if cost < b => best = Some((cost, m)),
                        Some((b, _)) if cost == b => ambiguous = true,
                        None => best = Some((cost, m)),
                        _ => {}
                    }
                }
            }
            if let (Some((_, m)), false) = (best, ambiguous) {
                return Ok(St::Value(Expr::Call(m, exprs)));
            }
        }
        Ok(St::Part(PartialExpr::KnownCall { candidates, args }))
    }

    fn value_type(&self, e: &Expr, at: usize) -> Result<TypeId, ParseError> {
        match self.db.expr_ty(e, self.ctx) {
            Ok(ValueTy::Known(t)) => Ok(t),
            Ok(ValueTy::Wildcard) => {
                Err(ParseError::new(at, "cannot access members of `null`/`0`"))
            }
            Err(e) => Err(ParseError::new(at, e.to_string())),
        }
    }

    fn is_ns_prefix(&self, path: &[String]) -> bool {
        self.db.types().namespaces().iter().any(|id| {
            let segs = self.db.types().namespaces().segments(id);
            segs.len() >= path.len() && segs[..path.len()] == *path
        })
    }

    fn primary(&mut self) -> Result<St, ParseError> {
        let at = self.at();
        match self.bump() {
            Tok::Question => Ok(St::Part(PartialExpr::Hole)),
            Tok::Int(0) => Ok(St::Part(PartialExpr::Hole0)),
            Tok::Int(v) => Ok(St::Value(Expr::IntLit(v))),
            Tok::Double(v) => Ok(St::Value(Expr::DoubleLit(v))),
            Tok::Str(s) => Ok(St::Value(Expr::StrLit(s))),
            Tok::Ident(s) => match s.as_str() {
                "this" => {
                    if self.ctx.this_type().is_some() {
                        Ok(St::Value(Expr::This))
                    } else {
                        Err(ParseError::new(
                            at,
                            "`this` is not available in this context",
                        ))
                    }
                }
                "true" => Ok(St::Value(Expr::BoolLit(true))),
                "false" => Ok(St::Value(Expr::BoolLit(false))),
                "null" => Ok(St::Value(Expr::Null)),
                _ => {
                    // Bare call `Name(args)`?
                    if self.peek() == &Tok::LParen {
                        let args = self.call_args()?;
                        return self.resolve_bare_call(&s, args, at);
                    }
                    self.resolve_simple_name(&s, at)
                }
            },
            other => Err(ParseError::new(at, format!("unexpected token {other:?}"))),
        }
    }

    fn resolve_simple_name(&mut self, name: &str, at: usize) -> Result<St, ParseError> {
        if let Some((id, _)) = self.ctx.local_by_name(name) {
            return Ok(St::Value(Expr::Local(id)));
        }
        if let Some(enclosing) = self.ctx.enclosing_type {
            for owner in self.db.member_lookup_chain(enclosing) {
                for &f in self.db.fields_of(owner) {
                    let fd = self.db.field(f);
                    if fd.name() == name
                        && self.db.accessible(fd.visibility(), owner, Some(enclosing))
                    {
                        if fd.is_static() {
                            return Ok(St::Value(Expr::StaticField(f)));
                        } else if self.ctx.has_this {
                            return Ok(St::Value(Expr::field(Expr::This, f)));
                        }
                    }
                }
            }
        }
        if let Some(p) = PrimKind::from_keyword(name) {
            return Ok(St::Type(self.db.types().prim(p)));
        }
        if name == "object" {
            return Ok(St::Type(self.db.types().object()));
        }
        // A type in the enclosing namespace chain or anywhere by simple name.
        if let Some(t) = self.lookup_type_simple(name) {
            return Ok(St::Type(t));
        }
        let path = vec![name.to_owned()];
        if self.is_ns_prefix(&path) {
            return Ok(St::Ns(path));
        }
        Err(ParseError::new(at, format!("unknown name `{name}`")))
    }

    /// Finds a type by simple name: first in the enclosing type's namespace,
    /// then uniquely across the whole program (API-discovery spirit).
    fn lookup_type_simple(&self, name: &str) -> Option<TypeId> {
        if let Some(enclosing) = self.ctx.enclosing_type {
            let ns = self.db.types().get(enclosing).namespace();
            if let Some(t) = self.db.types().lookup(ns, name) {
                return Some(t);
            }
        }
        let mut found = None;
        for t in self.db.types().iter() {
            if self.db.types().get(t).name() == name {
                if found.is_some() {
                    return None; // ambiguous
                }
                found = Some(t);
            }
        }
        found
    }

    /// Resolves a bare call `Name(args)`.
    ///
    /// In scope, the name may denote instance methods of the enclosing type
    /// (receiver `this`) or statics (no receiver). Out of scope, the
    /// API-discovery fallback considers every public method with the name:
    /// statics take the arguments as written, instance methods get a `?`
    /// receiver hole prepended. When several interpretations are viable the
    /// query becomes their [`PartialExpr::Alt`] union.
    fn resolve_bare_call(
        &mut self,
        name: &str,
        args: Vec<PartialExpr>,
        at: usize,
    ) -> Result<St, ParseError> {
        let mut in_scope: Vec<MethodId> = Vec::new();
        if let Some(enclosing) = self.ctx.enclosing_type {
            for owner in self.db.member_lookup_chain(enclosing) {
                for &m in self.db.methods_of(owner) {
                    let md = self.db.method(m);
                    if md.name() == name
                        && self.db.accessible(md.visibility(), owner, Some(enclosing))
                        && (md.is_static() || self.ctx.has_this)
                    {
                        in_scope.push(m);
                    }
                }
            }
        }
        let (cands, receiver_hole) = if in_scope.is_empty() {
            // API-discovery fallback: any public method with this name.
            let global: Vec<MethodId> = self
                .db
                .methods()
                .filter(|m| {
                    let md = self.db.method(*m);
                    md.name() == name && md.visibility() == pex_model::Visibility::Public
                })
                .collect();
            if global.is_empty() {
                return Err(ParseError::new(at, format!("unknown method `{name}`")));
            }
            (global, PartialExpr::Hole)
        } else {
            (in_scope, PartialExpr::Known(Expr::This))
        };

        let inst: Vec<MethodId> = cands
            .iter()
            .copied()
            .filter(|m| !self.db.method(*m).is_static())
            .collect();
        let stat: Vec<MethodId> = cands
            .iter()
            .copied()
            .filter(|m| self.db.method(*m).is_static())
            .collect();
        let mut alts: Vec<St> = Vec::new();
        if !inst.is_empty() {
            let mut full = vec![receiver_hole];
            full.extend(args.clone());
            if let Ok(st) = self.build_known_call(inst, full, name, at) {
                alts.push(st);
            }
        }
        if !stat.is_empty() {
            if let Ok(st) = self.build_known_call(stat, args.clone(), name, at) {
                alts.push(st);
            }
        }
        match alts.pop() {
            None => Err(ParseError::new(
                at,
                format!(
                    "no accessible method `{name}` takes {} argument(s)",
                    args.len()
                ),
            )),
            Some(only) if alts.is_empty() => Ok(only),
            Some(last) => {
                alts.push(last);
                let parts: Vec<PartialExpr> = alts
                    .into_iter()
                    .map(|st| match st {
                        St::Value(e) => PartialExpr::Known(e),
                        St::Part(p) => p,
                        St::Type(_) | St::Ns(_) => unreachable!("calls resolve to values"),
                    })
                    .collect();
                Ok(St::Part(PartialExpr::Alt(parts)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;
    use pex_model::Local;

    fn setup() -> (Database, Context) {
        let db = compile(
            r#"
            namespace Geo {
                struct Point { int X; int Y; }
                class Shape {
                    Geo.Point Center;
                    static double Distance(Geo.Point a, Geo.Point b);
                    Geo.Point GetSample();
                }
            }
            "#,
        )
        .unwrap();
        let point = db.types().lookup_qualified("Geo.Point").unwrap();
        let shape = db.types().lookup_qualified("Geo.Shape").unwrap();
        let mut ctx = Context::instance(
            shape,
            vec![
                Local {
                    name: "point".into(),
                    ty: point,
                },
                Local {
                    name: "s".into(),
                    ty: shape,
                },
            ],
        );
        ctx.has_this = true;
        (db, ctx)
    }

    #[test]
    fn parses_unknown_call() {
        let (db, ctx) = setup();
        let q = parse_partial(&db, &ctx, "?({point, s})").unwrap();
        let PartialExpr::UnknownCall(args) = q else {
            panic!("wrong shape")
        };
        assert_eq!(args.len(), 2);
        assert!(matches!(args[0], PartialExpr::Known(Expr::Local(_))));
    }

    #[test]
    fn parses_known_call_with_hole() {
        let (db, ctx) = setup();
        let q = parse_partial(&db, &ctx, "Distance(point, ?)").unwrap();
        let PartialExpr::KnownCall { candidates, args } = q else {
            panic!("wrong shape: {q:?}")
        };
        assert_eq!(candidates.len(), 1);
        assert_eq!(args.len(), 2);
        assert!(matches!(args[1], PartialExpr::Hole));
    }

    #[test]
    fn parses_star_suffix_comparison() {
        let (db, ctx) = setup();
        let q = parse_partial(&db, &ctx, "point.?*m >= this.?*m").unwrap();
        assert_eq!(q.shape(), "e.?*m >= e.?*m");
        let q = parse_partial(&db, &ctx, "point.?f := s.?m.?m").unwrap();
        assert_eq!(q.shape(), "e.?f := e.?m.?m");
    }

    #[test]
    fn collapses_complete_calls() {
        let (db, ctx) = setup();
        let q = parse_partial(&db, &ctx, "Distance(point, this.Center)").unwrap();
        assert!(matches!(q, PartialExpr::Known(Expr::Call(..))), "{q:?}");
        // Chained member access through a collapsed zero-arg call.
        let q = parse_partial(&db, &ctx, "s.GetSample().X").unwrap();
        assert!(matches!(q, PartialExpr::Known(Expr::FieldAccess(..))));
    }

    #[test]
    fn resolves_members_and_types() {
        let (db, ctx) = setup();
        let q = parse_partial(&db, &ctx, "this.Center.X").unwrap();
        assert!(matches!(q, PartialExpr::Known(Expr::FieldAccess(..))));
        let q = parse_partial(&db, &ctx, "Geo.Shape.Distance(point, point)").unwrap();
        assert!(matches!(q, PartialExpr::Known(Expr::Call(..))));
        let q = parse_partial(&db, &ctx, "Center.?f").unwrap();
        assert_eq!(q.shape(), "e.?f");
    }

    #[test]
    fn rejects_bad_queries() {
        let (db, ctx) = setup();
        assert!(parse_partial(&db, &ctx, "unknownName").is_err());
        assert!(parse_partial(&db, &ctx, "point.?x").is_err());
        assert!(parse_partial(&db, &ctx, "point.NoSuchField").is_err());
        assert!(parse_partial(&db, &ctx, "Geo").is_err()); // namespace as value
        assert!(parse_partial(&db, &ctx, "?.Foo").is_err());
        assert!(parse_partial(&db, &ctx, "point ?").is_err());
        assert!(parse_partial(&db, &ctx, "NoSuchMethod(point)").is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_crashed() {
        let (db, ctx) = setup();
        let bomb = format!("{}point", "?({".repeat(400));
        let err = parse_partial(&db, &ctx, &bomb).unwrap_err();
        assert!(
            err.msg.contains("nested too deeply") || err.msg.contains("expected"),
            "{err}"
        );
    }

    #[test]
    fn zero_is_a_hole_other_ints_are_literals() {
        let (db, ctx) = setup();
        assert!(matches!(
            parse_partial(&db, &ctx, "0").unwrap(),
            PartialExpr::Hole0
        ));
        assert!(matches!(
            parse_partial(&db, &ctx, "3").unwrap(),
            PartialExpr::Known(Expr::IntLit(3))
        ));
    }
}
