//! The partial expression language (paper Figure 5(b)) and its semantics.

mod parser;
mod semantics;

pub use parser::{parse_partial, ParseError};
pub use semantics::derives;

use pex_model::{CmpOp, Expr, MethodId};

/// The four `.?` suffixes of the paper's `ea` production.
///
/// ```text
/// ea ::= e | ea.?f | ea.?*f | ea.?m | ea.?*m
/// ```
///
/// `f` completes as a single field (or property) lookup or nothing; `m`
/// additionally allows a zero-argument instance method call; the `*` forms
/// repeat as many times as needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuffixKind {
    /// `.?f` — at most one field lookup.
    Field,
    /// `.?*f` — any number of field lookups.
    FieldStar,
    /// `.?m` — at most one field lookup or zero-argument method call.
    Method,
    /// `.?*m` — any number of lookups/zero-argument calls.
    MethodStar,
}

impl SuffixKind {
    /// Whether the suffix repeats (`.?*` forms).
    pub fn is_star(self) -> bool {
        matches!(self, SuffixKind::FieldStar | SuffixKind::MethodStar)
    }

    /// Whether zero-argument method calls are allowed links.
    pub fn allows_methods(self) -> bool {
        matches!(self, SuffixKind::Method | SuffixKind::MethodStar)
    }

    /// Source spelling (`.?f`, `.?*f`, `.?m`, `.?*m`).
    pub fn spelling(self) -> &'static str {
        match self {
            SuffixKind::Field => ".?f",
            SuffixKind::FieldStar => ".?*f",
            SuffixKind::Method => ".?m",
            SuffixKind::MethodStar => ".?*m",
        }
    }
}

/// A partial expression: the query language of the completion engine.
///
/// Grammar (paper Figure 5(b), receiver folded into argument lists):
///
/// ```text
/// ee     ::= ea | ? | 0 | ccall | ee := ee | ee < ee
/// ea     ::= e | ea.?f | ea.?*f | ea.?m | ea.?*m
/// ccall  ::= ?({ee1, ..., een}) | methodName(ee1, ..., een)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PartialExpr {
    /// `?` — a completely unknown subexpression. Semantically `v.?*m` over
    /// every live local (including `this`) and global.
    Hole,
    /// `0` — deliberately unfilled; remains `0` in completions.
    Hole0,
    /// A complete expression used verbatim.
    Known(Expr),
    /// One of the `.?` suffixes applied to a partial base.
    Suffix(Box<PartialExpr>, SuffixKind),
    /// `?({ee1, ..., een})` — a call to an unknown method taking the given
    /// arguments in *some* argument positions (unordered; extra positions
    /// become `0`).
    UnknownCall(Vec<PartialExpr>),
    /// `methodName(ee1, ..., een)` — a call to a known method name with
    /// positional, possibly-partial arguments (the receiver, if any, is
    /// `args[0]`). `candidates` lists the overloads the name resolved to.
    KnownCall {
        /// Resolved candidate methods for the written name.
        candidates: Vec<MethodId>,
        /// Receiver-first argument list.
        args: Vec<PartialExpr>,
    },
    /// `ee := ee`
    Assign(Box<PartialExpr>, Box<PartialExpr>),
    /// `ee < ee` (any relational operator)
    Cmp(CmpOp, Box<PartialExpr>, Box<PartialExpr>),
    /// Ambiguous query interpretations, completed as their union. The
    /// parser produces this when a bare call like `Play(x)` could mean
    /// either a static `Play(x)` or an instance `?.Play(x)` on some
    /// receiver to be found.
    Alt(Vec<PartialExpr>),
}

impl PartialExpr {
    /// Convenience constructor for [`PartialExpr::Suffix`].
    pub fn suffix(base: PartialExpr, kind: SuffixKind) -> PartialExpr {
        PartialExpr::Suffix(Box::new(base), kind)
    }

    /// Convenience constructor for [`PartialExpr::Assign`].
    pub fn assign(lhs: PartialExpr, rhs: PartialExpr) -> PartialExpr {
        PartialExpr::Assign(Box::new(lhs), Box::new(rhs))
    }

    /// Convenience constructor for [`PartialExpr::Cmp`].
    pub fn cmp(op: CmpOp, lhs: PartialExpr, rhs: PartialExpr) -> PartialExpr {
        PartialExpr::Cmp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Whether the partial expression contains any hole (if not, its only
    /// completion is itself).
    pub fn has_holes(&self) -> bool {
        match self {
            PartialExpr::Hole | PartialExpr::Suffix(..) | PartialExpr::UnknownCall(_) => true,
            PartialExpr::Hole0 | PartialExpr::Known(_) => false,
            PartialExpr::KnownCall { candidates, args } => {
                candidates.len() > 1 || args.iter().any(PartialExpr::has_holes)
            }
            PartialExpr::Assign(l, r) | PartialExpr::Cmp(_, l, r) => l.has_holes() || r.has_holes(),
            PartialExpr::Alt(alts) => alts.iter().any(PartialExpr::has_holes),
        }
    }

    /// Re-opens the `0` holes of a completion as `?` holes: the paper's
    /// follow-up workflow — "the user may afterward decide to convert the
    /// `0` to `?`" — turning a result like `ResizeDocument(img, size, 0, 0)`
    /// into the query `ResizeDocument(img, size, ?, ?)`.
    ///
    /// Subtrees without `0` holes stay verbatim ([`PartialExpr::Known`]);
    /// calls regain a single-candidate [`PartialExpr::KnownCall`] so the
    /// engine fills only the reopened positions.
    pub fn reopen_holes(expr: &Expr) -> PartialExpr {
        fn contains_hole0(e: &Expr) -> bool {
            matches!(e, Expr::Hole0) || e.children().iter().any(|c| contains_hole0(c))
        }
        if !contains_hole0(expr) {
            return PartialExpr::Known(expr.clone());
        }
        match expr {
            Expr::Hole0 => PartialExpr::Hole,
            Expr::Call(m, args) => PartialExpr::KnownCall {
                candidates: vec![*m],
                args: args.iter().map(PartialExpr::reopen_holes).collect(),
            },
            Expr::Assign(l, r) => {
                PartialExpr::assign(PartialExpr::reopen_holes(l), PartialExpr::reopen_holes(r))
            }
            Expr::Cmp(op, l, r) => PartialExpr::cmp(
                *op,
                PartialExpr::reopen_holes(l),
                PartialExpr::reopen_holes(r),
            ),
            // `0` cannot occur under a lookup chain, but fall back safely.
            other => PartialExpr::Known(other.clone()),
        }
    }

    /// A source-ish rendering of the query shape (holes spelled as in the
    /// paper; known subexpressions as `_`-free placeholders by position).
    pub fn shape(&self) -> String {
        match self {
            PartialExpr::Hole => "?".into(),
            PartialExpr::Hole0 => "0".into(),
            PartialExpr::Known(_) => "e".into(),
            PartialExpr::Suffix(b, k) => format!("{}{}", b.shape(), k.spelling()),
            PartialExpr::UnknownCall(args) => {
                let inner: Vec<String> = args.iter().map(|a| a.shape()).collect();
                format!("?({{{}}})", inner.join(", "))
            }
            PartialExpr::KnownCall { args, .. } => {
                let inner: Vec<String> = args.iter().map(|a| a.shape()).collect();
                format!("m({})", inner.join(", "))
            }
            PartialExpr::Assign(l, r) => format!("{} := {}", l.shape(), r.shape()),
            PartialExpr::Cmp(op, l, r) => {
                format!("{} {} {}", l.shape(), op.symbol(), r.shape())
            }
            PartialExpr::Alt(alts) => {
                let inner: Vec<String> = alts.iter().map(|a| a.shape()).collect();
                format!("({})", inner.join(" | "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_kinds() {
        assert!(SuffixKind::FieldStar.is_star());
        assert!(!SuffixKind::Field.is_star());
        assert!(SuffixKind::Method.allows_methods());
        assert!(!SuffixKind::FieldStar.allows_methods());
        assert_eq!(SuffixKind::MethodStar.spelling(), ".?*m");
    }

    #[test]
    fn hole_detection() {
        assert!(PartialExpr::Hole.has_holes());
        assert!(!PartialExpr::Hole0.has_holes());
        assert!(!PartialExpr::Known(Expr::This).has_holes());
        assert!(PartialExpr::suffix(PartialExpr::Known(Expr::This), SuffixKind::Field).has_holes());
        let a = PartialExpr::assign(PartialExpr::Known(Expr::This), PartialExpr::Hole);
        assert!(a.has_holes());
    }

    #[test]
    fn reopening_holes() {
        use pex_model::{LocalId, MethodId};
        let call = Expr::Call(
            MethodId::from_index(0),
            vec![Expr::Local(LocalId(0)), Expr::Hole0, Expr::Hole0],
        );
        let q = PartialExpr::reopen_holes(&call);
        assert_eq!(q.shape(), "m(e, ?, ?)");
        // Hole-free expressions stay verbatim.
        let plain = Expr::Local(LocalId(0));
        assert_eq!(PartialExpr::reopen_holes(&plain), PartialExpr::Known(plain));
    }

    #[test]
    fn shapes_render() {
        let q = PartialExpr::cmp(
            pex_model::CmpOp::Ge,
            PartialExpr::suffix(PartialExpr::Known(Expr::This), SuffixKind::MethodStar),
            PartialExpr::Hole,
        );
        assert_eq!(q.shape(), "e.?*m >= ?");
        let u = PartialExpr::UnknownCall(vec![PartialExpr::Known(Expr::This), PartialExpr::Hole0]);
        assert_eq!(u.shape(), "?({e, 0})");
    }
}
