//! # pex-core
//!
//! The primary contribution of *Type-Directed Completion of Partial
//! Expressions* (Perelman, Gulwani, Ball, Grossman — PLDI 2012), in Rust.
//!
//! A **partial expression** is an expression with holes: `?` for an unknown
//! subexpression, `0` for a deliberately unfilled one, `.?f`/`.?*f`/`.?m`/
//! `.?*m` for missing field lookups (and zero-argument calls), and
//! `?({e1, ..., en})` for a call to an unknown method given an unordered set
//! of arguments. This crate provides:
//!
//! * [`PartialExpr`] and [`parse_partial`] — the query language of the
//!   paper's Figure 5(b) and a parser for its surface syntax;
//! * [`derives`] — a reference implementation of the Figure 6 semantics, a
//!   checker that a complete expression is a legal completion of a query;
//! * [`RankConfig`] / [`Ranker`] — the Figure 7 ranking function with
//!   per-term toggles (used by the paper's Table 2 sensitivity analysis);
//! * [`MethodIndex`] — the Figure 8 parameter-type → method index;
//! * [`Completer`] — the completion engine of Algorithm 1: a best-first,
//!   lazily expanded enumeration of well-typed completions in score order.
//!
//! ## Quickstart
//!
//! ```
//! use pex_core::{Completer, MethodIndex, RankConfig, parse_partial};
//! use pex_model::{minics, Context, Local};
//!
//! let db = minics::compile(r#"
//!     namespace Paint {
//!         class Document { }
//!         struct Size { }
//!         class CanvasSizeAction {
//!             static Paint.Document ResizeDocument(Paint.Document d, Paint.Size s);
//!         }
//!     }
//! "#).unwrap();
//! let doc = db.types().lookup_qualified("Paint.Document").unwrap();
//! let size = db.types().lookup_qualified("Paint.Size").unwrap();
//! let ctx = Context::with_locals(None, vec![
//!     Local { name: "img".into(), ty: doc },
//!     Local { name: "size".into(), ty: size },
//! ]);
//! let index = MethodIndex::build(&db);
//! let completer = Completer::new(&db, &ctx, &index, RankConfig::all(), None);
//! let query = parse_partial(&db, &ctx, "?({img, size})").unwrap();
//! let top = completer.complete(&query, 10);
//! assert!(completer.render(&top[0]).contains("ResizeDocument"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod partial;
pub mod rank;

pub use engine::{
    budget::{CancelToken, QueryBudget, QueryOutcome, RankResult},
    chains::{ChainLink, MAX_DEPTH_LIMIT},
    invalidate::{refresh_derived, InvalidationStats},
    BestFirstIter, CandidateScratch, CompleteOptions, Completer, Completion, CompletionIter,
    EngineCache, InvalidMaxDepth, MethodIndex, ReachIndex,
};
pub use partial::{derives, parse_partial, ParseError, PartialExpr, SuffixKind};
pub use rank::{RankConfig, RankTerm, Ranker, ScoreBound, ScoreBreakdown};
