//! Admissible lower bounds on completion scores for partial chains.
//!
//! Figure 7's score is a sum of non-negative terms, and a lookup chain
//! accrues its score incrementally: the root's score is fixed when the
//! root is chosen, and each appended member link adds exactly the ranker's
//! link cost. Every term a prefix has already paid is paid by every
//! completion extending it, so the accrued partial sum is a lower bound on
//! the final score — the invariant the engine's best-first frontier keys
//! on. [`ScoreBound`] packages that partial sum together with an optional
//! *admissible heuristic*: a proven minimum additional cost (e.g. link
//! cost × minimum links to a type passing the query's filter, from the
//! reachability index), which tightens the bound without ever overshooting.

/// An admissible lower bound on the final score of any completion that
/// extends a partial lookup chain.
///
/// Constructed at the chain root with [`ScoreBound::root`], advanced one
/// link at a time with [`ScoreBound::extend`], and optionally tightened
/// with [`ScoreBound::with_pending`]. The guarantee — checked by a
/// proptest in this module — is that [`ScoreBound::get`] never exceeds the
/// ranker's score of any completed chain growing from the prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreBound {
    /// Score already paid by the prefix itself.
    accrued: u32,
    /// Proven minimum still to pay before an admissible emission.
    pending: u32,
}

impl ScoreBound {
    /// Bound for a chain root whose own score is `score`.
    pub fn root(score: u32) -> Self {
        ScoreBound {
            accrued: score,
            pending: 0,
        }
    }

    /// Bound after appending one member link (cost from
    /// `Ranker::link_cost`). Any attached heuristic is cleared: it spoke
    /// about the previous state's type, not the new one.
    pub fn extend(self, link_cost: u32) -> Self {
        ScoreBound {
            accrued: self.accrued + link_cost,
            pending: 0,
        }
    }

    /// Attaches an admissible heuristic: a proven minimum *additional*
    /// cost every admissible completion of this prefix must still pay.
    pub fn with_pending(self, pending: u32) -> Self {
        ScoreBound { pending, ..self }
    }

    /// The score the prefix itself has accrued (heuristic excluded). This
    /// is the exact score of the prefix emitted as a completion.
    pub fn accrued(&self) -> u32 {
        self.accrued
    }

    /// The bound value: no completion extending this prefix scores lower.
    pub fn get(&self) -> u32 {
        self.accrued.saturating_add(self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::chains::ChainLink;
    use crate::engine::memo::{ChainMember, SuccessorMemo};
    use crate::rank::{RankConfig, Ranker};
    use pex_model::minics::compile;
    use pex_model::{Context, Database, Expr, Local, LocalId};
    use proptest::prelude::*;

    fn setup() -> (Database, Context) {
        let db = compile(
            r#"
            namespace G {
                struct Point { int X; int Y; }
                class Line {
                    G.Point P1;
                    G.Point P2;
                    double GetLength();
                }
                class Canvas {
                    G.Line Selected;
                    G.Line Hovered;
                    string Title;
                }
            }
            "#,
        )
        .unwrap();
        let canvas = db.types().lookup_qualified("G.Canvas").unwrap();
        let ctx = Context::with_locals(
            None,
            vec![Local {
                name: "cv".into(),
                ty: canvas,
            }],
        );
        (db, ctx)
    }

    #[test]
    fn bound_accrues_and_clears_heuristic() {
        let b = ScoreBound::root(3).with_pending(4);
        assert_eq!(b.accrued(), 3);
        assert_eq!(b.get(), 7);
        let next = b.extend(2);
        assert_eq!(next.accrued(), 5);
        assert_eq!(next.get(), 5, "extend clears the stale heuristic");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The contract the best-first frontier relies on: for a random
        /// chain grown link by link, every prefix's bound — bare or with a
        /// remaining-links heuristic attached — is ≤ the ranker's score of
        /// the full chain, and the final accrued value is exact.
        #[test]
        fn bound_never_exceeds_final_score(
            path in proptest::collection::vec(0usize..8, 0..6),
            depth_term in any::<bool>(),
        ) {
            let (db, ctx) = setup();
            let mut config = RankConfig::all();
            config.depth = depth_term;
            let ranker = Ranker::new(&db, &ctx, None, config);
            let memo = SuccessorMemo::default();

            let mut expr = Expr::Local(LocalId(0));
            let mut ty = ctx.locals[0].ty;
            let root_score = ranker.score(&expr).expect("locals score");
            let mut bounds = vec![ScoreBound::root(root_score)];
            for &pick in &path {
                let steps = memo.successors(&db, ty, ChainLink::FieldsAndMethods, None);
                if steps.is_empty() {
                    break;
                }
                let step = &steps[pick % steps.len()];
                expr = match step.member {
                    ChainMember::Field(f) => Expr::field(expr, f),
                    ChainMember::Call0(m) => Expr::Call(m, vec![expr]),
                };
                ty = step.ty;
                let prev = *bounds.last().unwrap();
                bounds.push(prev.extend(ranker.link_cost()));
            }

            let final_score = ranker.score(&expr).expect("chains type-check");
            for (i, b) in bounds.iter().enumerate() {
                prop_assert!(b.get() <= final_score);
                // A heuristic counting the links this chain actually still
                // appends (each costing link_cost) is admissible too.
                let remaining = (bounds.len() - 1 - i) as u32;
                let tightened = b.with_pending(remaining * ranker.link_cost());
                prop_assert!(tightened.get() <= final_score);
            }
            prop_assert_eq!(bounds.last().unwrap().accrued(), final_score);
        }
    }
}
