//! The ranking function of paper Figure 7, with per-term toggles.
//!
//! A completion's score is a **sum of non-negative integer terms** (lower is
//! better), so any partial sum is a lower bound — the property the engine's
//! best-first search relies on. The terms, reconstructed from Section 4.1
//! (see DESIGN.md for the reconstruction notes):
//!
//! * **type distance** — `td(type(arg), type(param))` summed over argument
//!   positions; for binary operators, the distance between the two operand
//!   types;
//! * **abstract types** — `+1` per argument whose inferred abstract type
//!   does not match the parameter's (undefined never matches);
//! * **depth** — `2` per member-access link introduced by the expression;
//! * **in-scope static** — `+1` unless the called method is a static method
//!   of the enclosing type (callable without qualification);
//! * **common namespace** — `3 − min(3, p)` where `p` is the common prefix
//!   of the namespaces of the non-primitive argument types and the declaring
//!   type (`p = 0` when fewer than two non-primitive arguments participate);
//! * **matching name** — `+3` on comparisons whose two sides do not end in
//!   lookups of the same name.
//!
//! Zero-argument calls (instance or static) are scored as lookups — depth
//! only — because the paper treats them as property sugar; the call-specific
//! terms apply to calls with declared parameters.

mod bound;

pub use bound::ScoreBound;

use pex_abstract::AbsTypes;
use pex_model::{ArenaRead, Context, Database, ENode, Expr, ExprArena, ExprId, MethodId, ValueTy};
use pex_types::TypeId;

/// The individually toggleable ranking terms (paper Table 2's columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RankTerm {
    /// `n` — common namespace.
    Namespace,
    /// `s` — in-scope static.
    InScopeStatic,
    /// `d` — depth.
    Depth,
    /// `m` — matching name.
    MatchingName,
    /// `t` — normal type distance.
    TypeDistance,
    /// `a` — abstract type distance.
    AbstractTypes,
}

impl RankTerm {
    /// All terms, in the paper's `n s d m t a` order.
    pub const ALL: [RankTerm; 6] = [
        RankTerm::Namespace,
        RankTerm::InScopeStatic,
        RankTerm::Depth,
        RankTerm::MatchingName,
        RankTerm::TypeDistance,
        RankTerm::AbstractTypes,
    ];

    /// Position of the term in [`RankTerm::ALL`] (the accumulator index
    /// used by the single-pass explain walk).
    pub fn index(self) -> usize {
        match self {
            RankTerm::Namespace => 0,
            RankTerm::InScopeStatic => 1,
            RankTerm::Depth => 2,
            RankTerm::MatchingName => 3,
            RankTerm::TypeDistance => 4,
            RankTerm::AbstractTypes => 5,
        }
    }

    /// The paper's one-letter code for the term.
    pub fn code(self) -> char {
        match self {
            RankTerm::Namespace => 'n',
            RankTerm::InScopeStatic => 's',
            RankTerm::Depth => 'd',
            RankTerm::MatchingName => 'm',
            RankTerm::TypeDistance => 't',
            RankTerm::AbstractTypes => 'a',
        }
    }
}

/// Which ranking terms are active. `Default` enables everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankConfig {
    /// Common-namespace term.
    pub namespace: bool,
    /// In-scope-static term.
    pub in_scope_static: bool,
    /// Depth (dots) term.
    pub depth: bool,
    /// Matching-name term for comparisons.
    pub matching_name: bool,
    /// Class-hierarchy type distance.
    pub type_distance: bool,
    /// Abstract-type mismatch term.
    pub abstract_types: bool,
}

impl Default for RankConfig {
    fn default() -> Self {
        RankConfig::all()
    }
}

impl RankConfig {
    /// Every term enabled (the paper's "All" configuration).
    pub fn all() -> Self {
        RankConfig {
            namespace: true,
            in_scope_static: true,
            depth: true,
            matching_name: true,
            type_distance: true,
            abstract_types: true,
        }
    }

    /// Every term disabled (scores everything 0; ordering is generation
    /// order — useful as a degenerate baseline).
    pub fn none() -> Self {
        RankConfig {
            namespace: false,
            in_scope_static: false,
            depth: false,
            matching_name: false,
            type_distance: false,
            abstract_types: false,
        }
    }

    /// Only the listed terms enabled (the paper's `+x` columns).
    pub fn only(terms: &[RankTerm]) -> Self {
        let mut cfg = RankConfig::none();
        for t in terms {
            cfg.set(*t, true);
        }
        cfg
    }

    /// All terms except the listed ones (the paper's `-x` columns).
    pub fn without(terms: &[RankTerm]) -> Self {
        let mut cfg = RankConfig::all();
        for t in terms {
            cfg.set(*t, false);
        }
        cfg
    }

    /// Enables or disables one term.
    pub fn set(&mut self, term: RankTerm, on: bool) {
        match term {
            RankTerm::Namespace => self.namespace = on,
            RankTerm::InScopeStatic => self.in_scope_static = on,
            RankTerm::Depth => self.depth = on,
            RankTerm::MatchingName => self.matching_name = on,
            RankTerm::TypeDistance => self.type_distance = on,
            RankTerm::AbstractTypes => self.abstract_types = on,
        }
    }

    /// Whether a term is enabled.
    pub fn enabled(&self, term: RankTerm) -> bool {
        match term {
            RankTerm::Namespace => self.namespace,
            RankTerm::InScopeStatic => self.in_scope_static,
            RankTerm::Depth => self.depth,
            RankTerm::MatchingName => self.matching_name,
            RankTerm::TypeDistance => self.type_distance,
            RankTerm::AbstractTypes => self.abstract_types,
        }
    }

    /// The 15 configurations of the paper's Table 2, with their column
    /// labels: `All`, `-n -s -d -m -t -a -at`, `+n +s +d +m +t +a +at`.
    pub fn table2_variants() -> Vec<(String, RankConfig)> {
        let mut out = vec![("All".to_owned(), RankConfig::all())];
        for t in RankTerm::ALL {
            out.push((format!("-{}", t.code()), RankConfig::without(&[t])));
        }
        out.push((
            "-at".to_owned(),
            RankConfig::without(&[RankTerm::AbstractTypes, RankTerm::TypeDistance]),
        ));
        for t in RankTerm::ALL {
            out.push((format!("+{}", t.code()), RankConfig::only(&[t])));
        }
        out.push((
            "+at".to_owned(),
            RankConfig::only(&[RankTerm::AbstractTypes, RankTerm::TypeDistance]),
        ));
        out
    }
}

/// A per-term decomposition of a completion's score.
///
/// The ranking function is a sum of independent non-negative terms, so the
/// decomposition is exact: the term values always sum to the score under
/// the corresponding configuration (a property test checks this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreBreakdown {
    /// `(term, contribution)` for every term, in [`RankTerm::ALL`] order.
    pub terms: [(RankTerm, u32); 6],
    /// The total score under the ranker's configuration.
    pub total: u32,
}

impl ScoreBreakdown {
    /// Builds a breakdown from per-term contributions in [`RankTerm::ALL`]
    /// order; `total` is their sum.
    fn from_contributions(acc: [u32; 6]) -> ScoreBreakdown {
        let mut terms = [(RankTerm::Namespace, 0u32); 6];
        let mut total = 0u32;
        for ((slot, term), value) in terms.iter_mut().zip(RankTerm::ALL).zip(acc) {
            *slot = (term, value);
            total += value;
        }
        ScoreBreakdown { terms, total }
    }

    /// Contribution of one term.
    ///
    /// # Panics
    ///
    /// Panics if `terms` does not contain every [`RankTerm`] variant — the
    /// ranker always constructs breakdowns in [`RankTerm::ALL`] order, so
    /// this only fires on a hand-built malformed value.
    pub fn term(&self, term: RankTerm) -> u32 {
        self.terms
            .iter()
            .find(|(t, _)| *t == term)
            .map(|(_, v)| *v)
            .expect("all terms present")
    }
}

/// Scores completed expressions (the specification the engine follows).
///
/// `abs` is optional: without a solution every abstract type is undefined,
/// which uniformly penalises all argument positions when the term is on.
#[derive(Clone, Copy)]
pub struct Ranker<'a> {
    /// The program database.
    pub db: &'a Database,
    /// The query context (locals, enclosing type).
    pub ctx: &'a Context,
    /// Abstract-type solution, if available.
    pub abs: Option<&'a AbsTypes<'a>>,
    /// Active terms.
    pub config: RankConfig,
}

impl<'a> std::fmt::Debug for Ranker<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ranker")
            .field("config", &self.config)
            .field("has_abs", &self.abs.is_some())
            .finish()
    }
}

impl<'a> Ranker<'a> {
    /// Creates a ranker.
    pub fn new(
        db: &'a Database,
        ctx: &'a Context,
        abs: Option<&'a AbsTypes<'a>>,
        config: RankConfig,
    ) -> Self {
        Ranker {
            db,
            ctx,
            abs,
            config,
        }
    }

    /// The cost of one member-access link.
    pub fn link_cost(&self) -> u32 {
        if self.config.depth {
            pex_obs::counter!("rank.term.depth.evals", 1);
            2
        } else {
            0
        }
    }

    /// Scores a completed expression. Returns `None` if the expression does
    /// not type-check in the context (type-incorrect completions are never
    /// produced, regardless of which terms are enabled).
    pub fn score(&self, e: &Expr) -> Option<u32> {
        pex_obs::counter!("rank.score.evals", 1);
        match e {
            Expr::Local(l) => {
                if l.index() < self.ctx.locals.len() {
                    Some(0)
                } else {
                    None
                }
            }
            Expr::This => self.ctx.this_type().map(|_| 0),
            Expr::IntLit(_)
            | Expr::DoubleLit(_)
            | Expr::BoolLit(_)
            | Expr::StrLit(_)
            | Expr::Null
            | Expr::Hole0
            | Expr::Opaque { .. } => Some(0),
            Expr::StaticField(_) => Some(self.link_cost()),
            Expr::FieldAccess(base, f) => {
                let base_score = self.score(base)?;
                let base_ty = self.expr_type(base)?;
                match base_ty {
                    ValueTy::Known(t)
                        if self
                            .db
                            .types()
                            .implicitly_convertible(t, self.db.field(*f).declaring()) => {}
                    ValueTy::Wildcard => {}
                    _ => return None,
                }
                Some(base_score + self.link_cost())
            }
            Expr::Call(m, args) => self.score_call(*m, args),
            Expr::Assign(l, r) => {
                let ls = self.score(l)?;
                let rs = self.score(r)?;
                let lt = self.expr_type(l)?;
                let rt = self.expr_type(r)?;
                let td = match (rt, lt) {
                    (ValueTy::Known(from), ValueTy::Known(to)) => {
                        self.db.types().type_distance(from, to)?
                    }
                    _ => 0,
                };
                let td_term = if self.config.type_distance {
                    pex_obs::counter!("rank.term.type_distance.evals", 1);
                    td
                } else {
                    0
                };
                let abs_term = self.pair_abs_term(l, r);
                Some(ls + rs + td_term + abs_term)
            }
            Expr::Cmp(_, l, r) => {
                let ls = self.score(l)?;
                let rs = self.score(r)?;
                let lt = self.expr_type(l)?;
                let rt = self.expr_type(r)?;
                let td = match (lt, rt) {
                    (ValueTy::Known(a), ValueTy::Known(b)) => {
                        self.db.types().comparable_pair(a, b)?.distance
                    }
                    _ => 0,
                };
                let td_term = if self.config.type_distance {
                    pex_obs::counter!("rank.term.type_distance.evals", 1);
                    td
                } else {
                    0
                };
                let abs_term = self.pair_abs_term(l, r);
                let name_term = if self.config.matching_name {
                    pex_obs::counter!("rank.term.matching_name.evals", 1);
                    if self.same_trailing_name(l, r) {
                        0
                    } else {
                        3
                    }
                } else {
                    0
                };
                Some(ls + rs + td_term + abs_term + name_term)
            }
        }
    }

    fn score_call(&self, m: MethodId, args: &[Expr]) -> Option<u32> {
        let md = self.db.method(m);
        if args.len() != md.full_arity() {
            return None;
        }
        // Zero-argument calls are lookups: depth cost only.
        if md.params().is_empty() {
            let base = match args.first() {
                Some(recv) => {
                    let s = self.score(recv)?;
                    match self.expr_type(recv)? {
                        ValueTy::Known(t)
                            if self.db.types().implicitly_convertible(t, md.declaring()) => {}
                        ValueTy::Wildcard => {}
                        _ => return None,
                    }
                    s
                }
                None => 0,
            };
            return Some(base + self.link_cost());
        }
        let param_tys = md.full_param_types();
        let mut total = 0u32;
        for (i, (arg, want)) in args.iter().zip(&param_tys).enumerate() {
            total += self.score(arg)?;
            match self.expr_type(arg)? {
                ValueTy::Known(t) => {
                    let d = self.db.types().type_distance(t, *want)?;
                    if self.config.type_distance {
                        pex_obs::counter!("rank.term.type_distance.evals", 1);
                        total += d;
                    }
                }
                ValueTy::Wildcard => {}
            }
            if self.config.abstract_types {
                pex_obs::counter!("rank.term.abstract_types.evals", 1);
                if !self.arg_abs_matches(m, i, arg) {
                    total += 1;
                }
            }
        }
        if self.config.in_scope_static {
            pex_obs::counter!("rank.term.in_scope_static.evals", 1);
            if !(md.is_static() && self.static_in_scope(m)) {
                total += 1;
            }
        }
        if self.config.namespace {
            pex_obs::counter!("rank.term.namespace.evals", 1);
            total += self.namespace_term(m, args, &param_tys);
        }
        Some(total)
    }

    /// The common-namespace term: `3 - min(3, p)`.
    fn namespace_term(&self, m: MethodId, args: &[Expr], _param_tys: &[TypeId]) -> u32 {
        let mut arg_ns = Vec::new();
        for arg in args {
            if let Ok(ValueTy::Known(t)) = self.db.expr_ty(arg, self.ctx) {
                let def = self.db.types().get(t);
                if !def.is_primitive() && t != self.db.types().object() {
                    arg_ns.push(def.namespace());
                }
            }
        }
        let sim = if arg_ns.len() <= 1 {
            0
        } else {
            let decl_ns = self
                .db
                .types()
                .get(self.db.method(m).declaring())
                .namespace();
            arg_ns.push(decl_ns);
            self.db.types().namespaces().common_prefix_len(arg_ns)
        };
        3 - (sim.min(3) as u32)
    }

    /// Whether `m` is a static method callable without qualification from
    /// the context (declared on the enclosing type or a supertype of it).
    fn static_in_scope(&self, m: MethodId) -> bool {
        let Some(enclosing) = self.ctx.enclosing_type else {
            return false;
        };
        let declaring = self.db.method(m).declaring();
        self.db.member_lookup_chain(enclosing).contains(&declaring)
    }

    fn arg_abs_matches(&self, m: MethodId, i: usize, arg: &Expr) -> bool {
        let Some(abs) = self.abs else { return false };
        let a = abs.expr_class(self.ctx.enclosing_method, arg);
        let p = abs.param_class(m, i);
        AbsTypes::matches(a, p)
    }

    fn pair_abs_term(&self, l: &Expr, r: &Expr) -> u32 {
        if !self.config.abstract_types {
            return 0;
        }
        pex_obs::counter!("rank.term.abstract_types.evals", 1);
        let matched = self.abs.is_some_and(|abs| {
            AbsTypes::matches(
                abs.expr_class(self.ctx.enclosing_method, l),
                abs.expr_class(self.ctx.enclosing_method, r),
            )
        });
        u32::from(!matched)
    }

    /// Whether both sides end in a member (or local) of the same name.
    fn same_trailing_name(&self, l: &Expr, r: &Expr) -> bool {
        match (self.trailing_name(l), self.trailing_name(r)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    fn trailing_name<'s>(&'s self, e: &'s Expr) -> Option<&'s str> {
        match e {
            Expr::StaticField(f) | Expr::FieldAccess(_, f) => Some(self.db.field(*f).name()),
            Expr::Call(m, _) => Some(self.db.method(*m).name()),
            Expr::Local(l) => self.ctx.locals.get(l.index()).map(|loc| loc.name.as_str()),
            _ => None,
        }
    }

    fn expr_type(&self, e: &Expr) -> Option<ValueTy> {
        self.db.expr_ty(e, self.ctx).ok()
    }

    /// Decomposes an expression's score into per-term contributions.
    ///
    /// Exploits the ranking function's additivity: each term's contribution
    /// is the expression's score under a configuration enabling only that
    /// term. Terms disabled in this ranker's configuration report 0 and are
    /// excluded from `total`. Returns `None` if the expression is ill-typed.
    pub fn explain(&self, e: &Expr) -> Option<ScoreBreakdown> {
        let mut terms = [(RankTerm::Namespace, 0u32); 6];
        let mut total = 0u32;
        for (slot, term) in terms.iter_mut().zip(RankTerm::ALL) {
            let value = if self.config.enabled(term) {
                let solo = Ranker::new(self.db, self.ctx, self.abs, RankConfig::only(&[term]));
                solo.score(e)?
            } else {
                0
            };
            *slot = (term, value);
            total += value;
        }
        debug_assert_eq!(self.score(e), Some(total), "terms must be additive");
        Some(ScoreBreakdown { terms, total })
    }

    // ---- interned twins -------------------------------------------------
    //
    // These mirror the boxed scoring arms exactly — same arithmetic, same
    // early `None`s, same obs counter bumps — so the interned enumeration
    // path produces identical scores without materializing trees. The
    // row-for-row equivalence proptest pins the pair together.

    /// Scores an interned expression; same contract and same result as
    /// [`Ranker::score`] on the materialized tree.
    pub fn score_interned(&self, arena: &ExprArena, id: ExprId) -> Option<u32> {
        let r = arena.read();
        self.score_node(&r, id)
    }

    fn score_node(&self, r: &ArenaRead<'_>, id: ExprId) -> Option<u32> {
        pex_obs::counter!("rank.score.evals", 1);
        match r.node(id) {
            ENode::Local(l) => {
                if l.index() < self.ctx.locals.len() {
                    Some(0)
                } else {
                    None
                }
            }
            ENode::This => self.ctx.this_type().map(|_| 0),
            ENode::IntLit(_)
            | ENode::DoubleBits(_)
            | ENode::BoolLit(_)
            | ENode::StrLit(_)
            | ENode::Null
            | ENode::Hole0
            | ENode::Opaque { .. } => Some(0),
            ENode::StaticField(_) => Some(self.link_cost()),
            ENode::FieldAccess(base, f) => {
                let (base, f) = (*base, *f);
                let base_score = self.score_node(r, base)?;
                let base_ty = self.node_type(r, base)?;
                match base_ty {
                    ValueTy::Known(t)
                        if self
                            .db
                            .types()
                            .implicitly_convertible(t, self.db.field(f).declaring()) => {}
                    ValueTy::Wildcard => {}
                    _ => return None,
                }
                Some(base_score + self.link_cost())
            }
            ENode::Call(m, args) => self.score_call_node(r, *m, args),
            ENode::Assign(l, rhs) => {
                let (l, rhs) = (*l, *rhs);
                let ls = self.score_node(r, l)?;
                let rs = self.score_node(r, rhs)?;
                let lt = self.node_type(r, l)?;
                let rt = self.node_type(r, rhs)?;
                let td = match (rt, lt) {
                    (ValueTy::Known(from), ValueTy::Known(to)) => {
                        self.db.types().type_distance(from, to)?
                    }
                    _ => 0,
                };
                let td_term = if self.config.type_distance {
                    pex_obs::counter!("rank.term.type_distance.evals", 1);
                    td
                } else {
                    0
                };
                let abs_term = self.pair_abs_term_node(r, l, rhs);
                Some(ls + rs + td_term + abs_term)
            }
            ENode::Cmp(_, l, rhs) => {
                let (l, rhs) = (*l, *rhs);
                let ls = self.score_node(r, l)?;
                let rs = self.score_node(r, rhs)?;
                let lt = self.node_type(r, l)?;
                let rt = self.node_type(r, rhs)?;
                let td = match (lt, rt) {
                    (ValueTy::Known(a), ValueTy::Known(b)) => {
                        self.db.types().comparable_pair(a, b)?.distance
                    }
                    _ => 0,
                };
                let td_term = if self.config.type_distance {
                    pex_obs::counter!("rank.term.type_distance.evals", 1);
                    td
                } else {
                    0
                };
                let abs_term = self.pair_abs_term_node(r, l, rhs);
                let name_term = if self.config.matching_name {
                    pex_obs::counter!("rank.term.matching_name.evals", 1);
                    if self.same_trailing_name_node(r, l, rhs) {
                        0
                    } else {
                        3
                    }
                } else {
                    0
                };
                Some(ls + rs + td_term + abs_term + name_term)
            }
        }
    }

    fn score_call_node(&self, r: &ArenaRead<'_>, m: MethodId, args: &[ExprId]) -> Option<u32> {
        let md = self.db.method(m);
        if args.len() != md.full_arity() {
            return None;
        }
        // Zero-argument calls are lookups: depth cost only.
        if md.params().is_empty() {
            let base = match args.first() {
                Some(&recv) => {
                    let s = self.score_node(r, recv)?;
                    match self.node_type(r, recv)? {
                        ValueTy::Known(t)
                            if self.db.types().implicitly_convertible(t, md.declaring()) => {}
                        ValueTy::Wildcard => {}
                        _ => return None,
                    }
                    s
                }
                None => 0,
            };
            return Some(base + self.link_cost());
        }
        let param_tys = md.full_param_types();
        let mut total = 0u32;
        for (i, (&arg, want)) in args.iter().zip(&param_tys).enumerate() {
            total += self.score_node(r, arg)?;
            match self.node_type(r, arg)? {
                ValueTy::Known(t) => {
                    let d = self.db.types().type_distance(t, *want)?;
                    if self.config.type_distance {
                        pex_obs::counter!("rank.term.type_distance.evals", 1);
                        total += d;
                    }
                }
                ValueTy::Wildcard => {}
            }
            if self.config.abstract_types {
                pex_obs::counter!("rank.term.abstract_types.evals", 1);
                if !self.arg_abs_matches_node(r, m, i, arg) {
                    total += 1;
                }
            }
        }
        if self.config.in_scope_static {
            pex_obs::counter!("rank.term.in_scope_static.evals", 1);
            if !(md.is_static() && self.static_in_scope(m)) {
                total += 1;
            }
        }
        if self.config.namespace {
            pex_obs::counter!("rank.term.namespace.evals", 1);
            total += self.namespace_term_node(r, m, args);
        }
        Some(total)
    }

    fn namespace_term_node(&self, r: &ArenaRead<'_>, m: MethodId, args: &[ExprId]) -> u32 {
        let mut arg_ns = Vec::new();
        for &arg in args {
            if let Ok(ValueTy::Known(t)) = self.db.expr_ty_interned(r, arg, self.ctx) {
                let def = self.db.types().get(t);
                if !def.is_primitive() && t != self.db.types().object() {
                    arg_ns.push(def.namespace());
                }
            }
        }
        let sim = if arg_ns.len() <= 1 {
            0
        } else {
            let decl_ns = self
                .db
                .types()
                .get(self.db.method(m).declaring())
                .namespace();
            arg_ns.push(decl_ns);
            self.db.types().namespaces().common_prefix_len(arg_ns)
        };
        3 - (sim.min(3) as u32)
    }

    fn arg_abs_matches_node(&self, r: &ArenaRead<'_>, m: MethodId, i: usize, arg: ExprId) -> bool {
        let Some(abs) = self.abs else { return false };
        let a = abs.expr_class_interned(self.ctx.enclosing_method, r, arg);
        let p = abs.param_class(m, i);
        AbsTypes::matches(a, p)
    }

    fn pair_abs_term_node(&self, r: &ArenaRead<'_>, l: ExprId, rhs: ExprId) -> u32 {
        if !self.config.abstract_types {
            return 0;
        }
        pex_obs::counter!("rank.term.abstract_types.evals", 1);
        self.pair_abs_mismatch_node(r, l, rhs)
    }

    /// The ungated abstract-type pair penalty (0 or 1), shared by the
    /// scoring and explain walks.
    fn pair_abs_mismatch_node(&self, r: &ArenaRead<'_>, l: ExprId, rhs: ExprId) -> u32 {
        let matched = self.abs.is_some_and(|abs| {
            AbsTypes::matches(
                abs.expr_class_interned(self.ctx.enclosing_method, r, l),
                abs.expr_class_interned(self.ctx.enclosing_method, r, rhs),
            )
        });
        u32::from(!matched)
    }

    fn same_trailing_name_node(&self, r: &ArenaRead<'_>, l: ExprId, rhs: ExprId) -> bool {
        match (
            self.trailing_name_node(r, l),
            self.trailing_name_node(r, rhs),
        ) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    fn trailing_name_node<'s>(&'s self, r: &'s ArenaRead<'_>, id: ExprId) -> Option<&'s str> {
        match r.node(id) {
            ENode::StaticField(f) | ENode::FieldAccess(_, f) => Some(self.db.field(*f).name()),
            ENode::Call(m, _) => Some(self.db.method(*m).name()),
            ENode::Local(l) => self.ctx.locals.get(l.index()).map(|loc| loc.name.as_str()),
            _ => None,
        }
    }

    fn node_type(&self, r: &ArenaRead<'_>, id: ExprId) -> Option<ValueTy> {
        self.db.expr_ty_interned(r, id, self.ctx).ok()
    }

    // ---- single-pass explain -------------------------------------------
    //
    // `explain_interned` decomposes a score into per-term contributions in
    // ONE scoring-shaped walk over the interned nodes: the arms below
    // mirror `score_node`/`score_call_node` exactly — same arithmetic,
    // same early `None`s, same config gating — but write each term's share
    // into a per-term accumulator instead of one running total. Because
    // the ranking function is a sum of independent terms, the accumulator
    // entries always sum to the score (debug-asserted here; the serve
    // layer additionally asserts integer equality per response). Unlike
    // the boxed [`Ranker::explain`], no per-term solo re-scores are run,
    // and no `rank.term.*.evals` counters are bumped — explain is a
    // post-search decomposition, not a scoring eval.

    /// Decomposes an interned expression's score into per-term
    /// contributions in a single walk (no per-term re-scoring). Terms
    /// disabled in this ranker's configuration report 0 and are excluded
    /// from `total`, so `total` equals [`Ranker::score_interned`] exactly.
    /// Returns `None` if the expression is ill-typed.
    pub fn explain_interned(&self, arena: &ExprArena, id: ExprId) -> Option<ScoreBreakdown> {
        let r = arena.read();
        let mut acc = [0u32; 6];
        self.explain_node(&r, id, &mut acc)?;
        let breakdown = ScoreBreakdown::from_contributions(acc);
        debug_assert_eq!(
            self.score_node(&r, id),
            Some(breakdown.total),
            "explain walk must reproduce the score"
        );
        Some(breakdown)
    }

    fn explain_link(&self, acc: &mut [u32; 6]) {
        if self.config.depth {
            acc[RankTerm::Depth.index()] += 2;
        }
    }

    fn explain_node(&self, r: &ArenaRead<'_>, id: ExprId, acc: &mut [u32; 6]) -> Option<()> {
        match r.node(id) {
            ENode::Local(l) => {
                if l.index() < self.ctx.locals.len() {
                    Some(())
                } else {
                    None
                }
            }
            ENode::This => self.ctx.this_type().map(|_| ()),
            ENode::IntLit(_)
            | ENode::DoubleBits(_)
            | ENode::BoolLit(_)
            | ENode::StrLit(_)
            | ENode::Null
            | ENode::Hole0
            | ENode::Opaque { .. } => Some(()),
            ENode::StaticField(_) => {
                self.explain_link(acc);
                Some(())
            }
            ENode::FieldAccess(base, f) => {
                let (base, f) = (*base, *f);
                self.explain_node(r, base, acc)?;
                match self.node_type(r, base)? {
                    ValueTy::Known(t)
                        if self
                            .db
                            .types()
                            .implicitly_convertible(t, self.db.field(f).declaring()) => {}
                    ValueTy::Wildcard => {}
                    _ => return None,
                }
                self.explain_link(acc);
                Some(())
            }
            ENode::Call(m, args) => self.explain_call_node(r, *m, args, acc),
            ENode::Assign(l, rhs) => {
                let (l, rhs) = (*l, *rhs);
                self.explain_node(r, l, acc)?;
                self.explain_node(r, rhs, acc)?;
                let lt = self.node_type(r, l)?;
                let rt = self.node_type(r, rhs)?;
                let td = match (rt, lt) {
                    (ValueTy::Known(from), ValueTy::Known(to)) => {
                        self.db.types().type_distance(from, to)?
                    }
                    _ => 0,
                };
                if self.config.type_distance {
                    acc[RankTerm::TypeDistance.index()] += td;
                }
                if self.config.abstract_types {
                    acc[RankTerm::AbstractTypes.index()] += self.pair_abs_mismatch_node(r, l, rhs);
                }
                Some(())
            }
            ENode::Cmp(_, l, rhs) => {
                let (l, rhs) = (*l, *rhs);
                self.explain_node(r, l, acc)?;
                self.explain_node(r, rhs, acc)?;
                let lt = self.node_type(r, l)?;
                let rt = self.node_type(r, rhs)?;
                let td = match (lt, rt) {
                    (ValueTy::Known(a), ValueTy::Known(b)) => {
                        self.db.types().comparable_pair(a, b)?.distance
                    }
                    _ => 0,
                };
                if self.config.type_distance {
                    acc[RankTerm::TypeDistance.index()] += td;
                }
                if self.config.abstract_types {
                    acc[RankTerm::AbstractTypes.index()] += self.pair_abs_mismatch_node(r, l, rhs);
                }
                if self.config.matching_name && !self.same_trailing_name_node(r, l, rhs) {
                    acc[RankTerm::MatchingName.index()] += 3;
                }
                Some(())
            }
        }
    }

    fn explain_call_node(
        &self,
        r: &ArenaRead<'_>,
        m: MethodId,
        args: &[ExprId],
        acc: &mut [u32; 6],
    ) -> Option<()> {
        let md = self.db.method(m);
        if args.len() != md.full_arity() {
            return None;
        }
        // Zero-argument calls are lookups: depth cost only.
        if md.params().is_empty() {
            if let Some(&recv) = args.first() {
                self.explain_node(r, recv, acc)?;
                match self.node_type(r, recv)? {
                    ValueTy::Known(t)
                        if self.db.types().implicitly_convertible(t, md.declaring()) => {}
                    ValueTy::Wildcard => {}
                    _ => return None,
                }
            }
            self.explain_link(acc);
            return Some(());
        }
        let param_tys = md.full_param_types();
        for (i, (&arg, want)) in args.iter().zip(&param_tys).enumerate() {
            self.explain_node(r, arg, acc)?;
            match self.node_type(r, arg)? {
                ValueTy::Known(t) => {
                    let d = self.db.types().type_distance(t, *want)?;
                    if self.config.type_distance {
                        acc[RankTerm::TypeDistance.index()] += d;
                    }
                }
                ValueTy::Wildcard => {}
            }
            if self.config.abstract_types && !self.arg_abs_matches_node(r, m, i, arg) {
                acc[RankTerm::AbstractTypes.index()] += 1;
            }
        }
        if self.config.in_scope_static && !(md.is_static() && self.static_in_scope(m)) {
            acc[RankTerm::InScopeStatic.index()] += 1;
        }
        if self.config.namespace {
            acc[RankTerm::Namespace.index()] += self.namespace_term_node(r, m, args);
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;
    use pex_model::{CmpOp, Local};

    fn setup() -> (Database, Context) {
        let db = compile(
            r#"
            namespace Geo {
                struct Point { int X; int Y; }
                class Line {
                    Geo.Point P1;
                    Geo.Point Mid();
                    static double Distance(Geo.Point a, Geo.Point b);
                }
                class Other {
                    static double Far(Geo.Point a, Geo.Point b);
                }
            }
            namespace App.Deep.Nested {
                class Client {
                    static void Use(Geo.Point p) { }
                }
            }
            "#,
        )
        .unwrap();
        let point = db.types().lookup_qualified("Geo.Point").unwrap();
        let line = db.types().lookup_qualified("Geo.Line").unwrap();
        let ctx = Context::instance(
            line,
            vec![
                Local {
                    name: "p".into(),
                    ty: point,
                },
                Local {
                    name: "ln".into(),
                    ty: line,
                },
            ],
        );
        (db, ctx)
    }

    fn e(db: &Database, ctx: &Context, src: &str) -> Expr {
        match crate::parse_partial(db, ctx, src).unwrap() {
            crate::PartialExpr::Known(e) => e,
            other => panic!("not complete: {other:?}"),
        }
    }

    #[test]
    fn depth_counts_links_times_two() {
        let (db, ctx) = setup();
        let r = Ranker::new(&db, &ctx, None, RankConfig::only(&[RankTerm::Depth]));
        assert_eq!(r.score(&e(&db, &ctx, "p")), Some(0));
        assert_eq!(r.score(&e(&db, &ctx, "ln.P1")), Some(2));
        assert_eq!(r.score(&e(&db, &ctx, "ln.P1.X")), Some(4));
        assert_eq!(
            r.score(&e(&db, &ctx, "ln.Mid()")),
            Some(2),
            "zero-arg call = lookup"
        );
        assert_eq!(r.score(&e(&db, &ctx, "ln.Mid().Y")), Some(4));
        let off = Ranker::new(&db, &ctx, None, RankConfig::none());
        assert_eq!(off.score(&e(&db, &ctx, "ln.P1.X")), Some(0));
    }

    #[test]
    fn type_distance_on_call_args() {
        let (db, ctx) = setup();
        // Use(p): param type Point, arg Point -> td 0.
        let r = Ranker::new(&db, &ctx, None, RankConfig::only(&[RankTerm::TypeDistance]));
        let call = e(&db, &ctx, "App.Deep.Nested.Client.Use(p)");
        assert_eq!(r.score(&call), Some(0));
        // Distance(p, ln.P1): args score includes the lookup? depth off -> 0.
        let call2 = e(&db, &ctx, "Geo.Line.Distance(p, ln.P1)");
        assert_eq!(r.score(&call2), Some(0));
    }

    #[test]
    fn in_scope_static_term() {
        let (db, ctx) = setup();
        let r = Ranker::new(
            &db,
            &ctx,
            None,
            RankConfig::only(&[RankTerm::InScopeStatic]),
        );
        // Distance is a static of the enclosing type Line: no penalty.
        assert_eq!(r.score(&e(&db, &ctx, "Geo.Line.Distance(p, p)")), Some(0));
        // Far is a static of another type: +1.
        assert_eq!(r.score(&e(&db, &ctx, "Geo.Other.Far(p, p)")), Some(1));
    }

    #[test]
    fn namespace_term_prefers_cohesive_calls() {
        let (db, ctx) = setup();
        let r = Ranker::new(&db, &ctx, None, RankConfig::only(&[RankTerm::Namespace]));
        // Two non-primitive args in Geo, method in Geo: prefix len 1 -> 3-1=2.
        assert_eq!(r.score(&e(&db, &ctx, "Geo.Line.Distance(p, p)")), Some(2));
        // Single non-primitive argument: sim forced to 0 -> term 3.
        assert_eq!(
            r.score(&e(&db, &ctx, "App.Deep.Nested.Client.Use(p)")),
            Some(3)
        );
    }

    #[test]
    fn matching_name_term_on_comparisons() {
        let (db, ctx) = setup();
        let r = Ranker::new(&db, &ctx, None, RankConfig::only(&[RankTerm::MatchingName]));
        let same = e(&db, &ctx, "p.X >= ln.P1.X");
        let diff = e(&db, &ctx, "p.X >= ln.P1.Y");
        assert_eq!(r.score(&same), Some(0));
        assert_eq!(r.score(&diff), Some(3));
        // Locals compare by name too.
        let pp = Expr::cmp(CmpOp::Lt, e(&db, &ctx, "p.X"), e(&db, &ctx, "p.X"));
        assert_eq!(r.score(&pp), Some(0));
    }

    #[test]
    fn ill_typed_scores_none_even_with_terms_off() {
        let (db, ctx) = setup();
        let r = Ranker::new(&db, &ctx, None, RankConfig::none());
        // Point >= Point is not comparable.
        let p = e(&db, &ctx, "p");
        let bad = Expr::cmp(CmpOp::Ge, p.clone(), p);
        assert_eq!(r.score(&bad), None);
    }

    #[test]
    fn wildcard_holes_cost_abs_mismatch_only() {
        let (db, ctx) = setup();
        let dist = db
            .methods()
            .find(|m| db.method(*m).name() == "Distance")
            .unwrap();
        let call = Expr::Call(dist, vec![e(&db, &ctx, "p"), Expr::Hole0]);
        let r_t = Ranker::new(&db, &ctx, None, RankConfig::only(&[RankTerm::TypeDistance]));
        assert_eq!(r_t.score(&call), Some(0), "0-holes add no type distance");
        let r_a = Ranker::new(
            &db,
            &ctx,
            None,
            RankConfig::only(&[RankTerm::AbstractTypes]),
        );
        // No abs solution provided: every position mismatches -> +2.
        assert_eq!(r_a.score(&call), Some(2));
    }

    #[test]
    fn explain_interned_matches_boxed_explain_and_sums_to_the_score() {
        let (db, ctx) = setup();
        let arena = pex_model::ExprArena::default();
        let exprs = [
            "p",
            "ln.P1.X",
            "ln.Mid().Y",
            "Geo.Line.Distance(p, ln.P1)",
            "Geo.Other.Far(p, p)",
            "App.Deep.Nested.Client.Use(p)",
            "p.X >= ln.P1.X",
            "p.X >= ln.P1.Y",
        ];
        let configs = [
            RankConfig::all(),
            RankConfig::none(),
            RankConfig::only(&[RankTerm::Depth, RankTerm::Namespace]),
            RankConfig::without(&[RankTerm::TypeDistance]),
        ];
        for config in configs {
            let ranker = Ranker::new(&db, &ctx, None, config);
            for src in exprs {
                let expr = e(&db, &ctx, src);
                let id = arena.intern_expr(&expr);
                let interned = ranker.explain_interned(&arena, id).unwrap();
                let boxed = ranker.explain(&expr).unwrap();
                assert_eq!(interned, boxed, "{src} under {config:?}");
                assert_eq!(
                    Some(interned.total),
                    ranker.score_interned(&arena, id),
                    "{src}: terms must sum to the score"
                );
                let sum: u32 = interned.terms.iter().map(|&(_, v)| v).sum();
                assert_eq!(sum, interned.total, "{src}: total is the term sum");
                for (term, v) in interned.terms {
                    assert!(
                        config.enabled(term) || v == 0,
                        "{src}: disabled term {term:?} must report 0"
                    );
                }
            }
        }
        // Ill-typed expressions explain to None, like score.
        let ranker = Ranker::new(&db, &ctx, None, RankConfig::all());
        let p = e(&db, &ctx, "p");
        let bad = Expr::cmp(CmpOp::Ge, p.clone(), p);
        let id = arena.intern_expr(&bad);
        assert_eq!(ranker.explain_interned(&arena, id), None);
    }

    #[test]
    fn table2_has_fifteen_variants() {
        let variants = RankConfig::table2_variants();
        assert_eq!(variants.len(), 15);
        assert_eq!(variants[0].0, "All");
        assert!(variants.iter().any(|(n, _)| n == "-at"));
        assert!(variants.iter().any(|(n, _)| n == "+at"));
        let minus_d = variants.iter().find(|(n, _)| n == "-d").unwrap();
        assert!(!minus_d.1.depth);
        assert!(minus_d.1.namespace);
        let plus_m = variants.iter().find(|(n, _)| n == "+m").unwrap();
        assert!(plus_m.1.matching_name);
        assert!(!plus_m.1.depth);
    }
}
