//! The type-reachability index the paper proposes but does not implement
//! (Section 4.2):
//!
//! > "queries for multiple field lookups could also be made more efficient
//! > using an index that indicates for each type which types are reachable
//! > by a `.?*f` or `.?*m` query \[and\] how many lookups are needed."
//!
//! [`ReachIndex`] precomputes, for every type and both link kinds, the
//! minimum number of lookups to every reachable type. During a filtered
//! chain search the engine can then prune a state whose type cannot reach
//! any admissible type within the remaining link budget.
//!
//! The index is a **sound over-approximation**: it includes private members
//! regardless of context, so it never prunes a state the search could
//! still complete — pruning changes performance, never results (a property
//! tested in `tests/prop_engine.rs` and enforced by the ablation bench).

use std::collections::HashMap;

use pex_model::Database;
use pex_types::wire::{Reader, WireError, WireResult, Writer};
use pex_types::TypeId;

use super::chains::{ChainLink, TypeFilter};

/// Per-type minimum-lookup reachability, for both link kinds.
#[derive(Debug, Clone)]
pub struct ReachIndex {
    fields: Vec<HashMap<TypeId, u32>>,
    fields_and_methods: Vec<HashMap<TypeId, u32>>,
}

impl ReachIndex {
    /// Builds the index over every type in the database.
    pub fn build(db: &Database) -> Self {
        let n = db.types().len();
        let mut field_edges: Vec<Vec<TypeId>> = vec![Vec::new(); n];
        let mut method_edges: Vec<Vec<TypeId>> = vec![Vec::new(); n];
        for ty in db.types().iter() {
            for owner in db.member_lookup_chain(ty) {
                for &f in db.fields_of(owner) {
                    let fd = db.field(f);
                    if !fd.is_static() {
                        field_edges[ty.index()].push(fd.ty());
                    }
                }
                for &m in db.methods_of(owner) {
                    let md = db.method(m);
                    if !md.is_static()
                        && md.params().is_empty()
                        && md.return_type() != db.types().void_ty()
                    {
                        method_edges[ty.index()].push(md.return_type());
                    }
                }
            }
        }
        let bfs = |extra: Option<&Vec<Vec<TypeId>>>| -> Vec<HashMap<TypeId, u32>> {
            (0..n)
                .map(|start| {
                    let mut dist: HashMap<TypeId, u32> = HashMap::new();
                    let start_ty = TypeId::from_index(start);
                    dist.insert(start_ty, 0);
                    let mut queue = std::collections::VecDeque::new();
                    queue.push_back(start_ty);
                    while let Some(t) = queue.pop_front() {
                        let d = dist[&t];
                        let push = |next: TypeId, dist_map: &mut HashMap<TypeId, u32>,
                                        queue: &mut std::collections::VecDeque<TypeId>| {
                            if let std::collections::hash_map::Entry::Vacant(slot) =
                                dist_map.entry(next)
                            {
                                slot.insert(d + 1);
                                queue.push_back(next);
                            }
                        };
                        for &next in &field_edges[t.index()] {
                            push(next, &mut dist, &mut queue);
                        }
                        if let Some(method_edges) = extra {
                            for &next in &method_edges[t.index()] {
                                push(next, &mut dist, &mut queue);
                            }
                        }
                    }
                    dist
                })
                .collect()
        };
        ReachIndex {
            fields: bfs(None),
            fields_and_methods: bfs(Some(&method_edges)),
        }
    }

    /// Serializes the index for the persistent snapshot. Entries of each
    /// per-type map are written in type-id order so identical indexes
    /// serialize to identical bytes.
    pub fn encode_snapshot(&self, w: &mut Writer) {
        let encode_maps = |maps: &[HashMap<TypeId, u32>], w: &mut Writer| {
            w.put_len(maps.len());
            for map in maps {
                let mut entries: Vec<(&TypeId, &u32)> = map.iter().collect();
                entries.sort_unstable_by_key(|(ty, _)| **ty);
                w.put_len(entries.len());
                for (ty, d) in entries {
                    w.put_u32(ty.index() as u32);
                    w.put_u32(*d);
                }
            }
        };
        encode_maps(&self.fields, w);
        encode_maps(&self.fields_and_methods, w);
    }

    /// Decodes an index written by [`ReachIndex::encode_snapshot`] for a
    /// table of `n_types` types, bounds-checking every id.
    pub fn decode_snapshot(r: &mut Reader<'_>, n_types: usize) -> WireResult<Self> {
        let mut decode_maps = |what: &str| -> WireResult<Vec<HashMap<TypeId, u32>>> {
            let n = r.get_len(what)?;
            if n != n_types {
                return Err(WireError::new(format!(
                    "{what}: covers {n} types but the table holds {n_types}"
                )));
            }
            let mut maps = Vec::with_capacity(n);
            for _ in 0..n {
                let entries = r.get_len("reachability entry count")?;
                let mut map = HashMap::with_capacity(entries);
                for _ in 0..entries {
                    let ty = TypeId::from_index(r.get_id(n_types, "reachable type")?);
                    let d = r.get_u32("lookup distance")?;
                    if map.insert(ty, d).is_some() {
                        return Err(WireError::new(format!(
                            "duplicate reachability entry for type {}",
                            ty.index()
                        )));
                    }
                }
                maps.push(map);
            }
            Ok(maps)
        };
        let fields = decode_maps("field reachability map count")?;
        let fields_and_methods = decode_maps("field+method reachability map count")?;
        Ok(ReachIndex {
            fields,
            fields_and_methods,
        })
    }

    /// Minimum lookups from `from` to `to` with the given link kind, if
    /// reachable at all (`Some(0)` when `from == to`).
    pub fn min_lookups(&self, kind: ChainLink, from: TypeId, to: TypeId) -> Option<u32> {
        self.map(kind, from).get(&to).copied()
    }

    /// All types reachable from `from` with their minimum lookup counts.
    pub fn reachable(&self, kind: ChainLink, from: TypeId) -> &HashMap<TypeId, u32> {
        self.map(kind, from)
    }

    fn map(&self, kind: ChainLink, from: TypeId) -> &HashMap<TypeId, u32> {
        match kind {
            ChainLink::Fields => &self.fields[from.index()],
            ChainLink::FieldsAndMethods => &self.fields_and_methods[from.index()],
        }
    }

    /// Builds the pruning table for one `(filter, link kind)` pair:
    /// `admissible` is the set of types whose values pass the filter, and
    /// `dist` the per-type minimum lookups to any of them. The table
    /// depends only on the database — never on the query's root
    /// expressions or scores — so [`ReachMemo`] shares it across queries.
    pub(crate) fn pruner(
        &self,
        db: &Database,
        kind: ChainLink,
        filter: &TypeFilter,
    ) -> Option<ReachPruner> {
        if filter.is_any() {
            return None; // nothing to prune against
        }
        let mut admissible = vec![false; db.types().len()];
        for ty in db.types().iter() {
            if filter.admits(db, ty) {
                admissible[ty.index()] = true;
            }
        }
        let dist = (0..db.types().len())
            .map(|i| {
                self.reachable(kind, TypeId::from_index(i))
                    .iter()
                    .filter(|(t, _)| admissible[t.index()])
                    .map(|(_, d)| *d)
                    .min()
                    .unwrap_or(DIST_UNREACHABLE)
            })
            .collect();
        Some(ReachPruner { admissible, dist })
    }
}

/// [`ReachPruner::min_links`]'s sentinel: no admissible type is reachable
/// from this one at all. Larger than any real remaining-link budget, so a
/// plain `≤ remaining` comparison also rejects unreachable types.
pub(crate) const DIST_UNREACHABLE: u32 = u32::MAX;

/// A pruning oracle for one `(filter, link kind)` pair (see
/// [`ReachIndex::pruner`]): every probe is an O(1) table lookup.
#[derive(Debug)]
pub(crate) struct ReachPruner {
    admissible: Vec<bool>,
    dist: Vec<u32>,
}

impl ReachPruner {
    /// Whether values of `ty` pass the query's filter directly (zero
    /// further lookups) — the precomputed `filter.admits` verdict.
    pub(crate) fn is_admissible(&self, ty: TypeId) -> bool {
        self.admissible[ty.index()]
    }

    /// Minimum number of links from `ty` to *any* admissible type, or
    /// [`DIST_UNREACHABLE`]. Because the index stores shortest distances,
    /// every admissible completion growing from a `ty` state appends at
    /// least this many links — which makes `link_cost × min_links` an
    /// admissible A* heuristic for the best-first search, and
    /// `min_links ≤ remaining links` the viability test for enqueueing a
    /// chain state.
    pub(crate) fn min_links(&self, ty: TypeId) -> u32 {
        self.dist[ty.index()]
    }

    /// [`ReachPruner::min_links`] as an option (`None` = unreachable).
    #[cfg(test)]
    pub(crate) fn min_to_admissible(&self, ty: TypeId) -> Option<u32> {
        match self.min_links(ty) {
            DIST_UNREACHABLE => None,
            d => Some(d),
        }
    }
}

/// Canonical identity of a [`TypeFilter`] for memo keys. `Any` filters
/// never build a pruner, so only the narrowing variants appear.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum FilterKey {
    OneOf(Vec<TypeId>),
    Ordered,
}

impl FilterKey {
    fn of(filter: &TypeFilter) -> Option<Self> {
        match filter {
            TypeFilter::Any => None,
            TypeFilter::OneOf(tys) => {
                let mut tys = tys.clone();
                tys.sort_unstable();
                tys.dedup();
                Some(FilterKey::OneOf(tys))
            }
            TypeFilter::Ordered => Some(FilterKey::Ordered),
        }
    }
}

/// Cross-query memo of pruning tables per `(link kind, filter)` — the
/// reach-index sibling of [`super::memo::SuccessorMemo`], living in
/// [`super::EngineCache`]. Query streams over the same expected type (the
/// common case for a serve snapshot answering a hot completion site)
/// share one table instead of re-deriving `filter.admits` for every type
/// and re-scanning reachable sets per query.
#[derive(Debug, Default)]
pub(crate) struct ReachMemo {
    entries: std::sync::RwLock<
        std::collections::HashMap<(ChainLink, FilterKey), std::sync::Arc<ReachPruner>>,
    >,
}

impl ReachMemo {
    /// The shared pruning table for this `(kind, filter)` — built on first
    /// request, an `Arc` clone thereafter. `None` for unfiltered queries.
    pub(crate) fn pruner(
        &self,
        index: &ReachIndex,
        db: &Database,
        kind: ChainLink,
        filter: &TypeFilter,
    ) -> Option<std::sync::Arc<ReachPruner>> {
        let key = (kind, FilterKey::of(filter)?);
        if let Some(hit) = self.entries.read().expect("reach memo lock").get(&key) {
            pex_obs::counter!("engine.reach.memo.hits", 1);
            return Some(std::sync::Arc::clone(hit));
        }
        let table = std::sync::Arc::new(index.pruner(db, kind, filter)?);
        pex_obs::counter!("engine.reach.memo.fills", 1);
        let mut entries = self.entries.write().expect("reach memo lock");
        Some(std::sync::Arc::clone(entries.entry(key).or_insert(table)))
    }

    /// Clones the memo for an incremental update that left reachability
    /// and conversions untouched — every pruner table stays valid, so the
    /// new snapshot shares the `Arc`s instead of re-deriving them.
    pub(crate) fn carry(&self) -> ReachMemo {
        ReachMemo {
            entries: std::sync::RwLock::new(self.entries.read().expect("reach memo lock").clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;

    fn db() -> Database {
        compile(
            r#"
            namespace N {
                struct Point { int X; }
                class Line {
                    N.Point P1;
                    double GetLength();
                }
                class Canvas {
                    N.Line Selected;
                }
                class Island { bool Flag; }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn min_lookups_follow_the_field_graph() {
        let db = db();
        let reach = ReachIndex::build(&db);
        let canvas = db.types().lookup_qualified("N.Canvas").unwrap();
        let line = db.types().lookup_qualified("N.Line").unwrap();
        let point = db.types().lookup_qualified("N.Point").unwrap();
        let int = db.types().int_ty();
        let double = db.types().double_ty();

        let k = ChainLink::Fields;
        assert_eq!(reach.min_lookups(k, canvas, canvas), Some(0));
        assert_eq!(reach.min_lookups(k, canvas, line), Some(1));
        assert_eq!(reach.min_lookups(k, canvas, point), Some(2));
        assert_eq!(reach.min_lookups(k, canvas, int), Some(3));
        // double is only reachable through GetLength(), a method link.
        assert_eq!(reach.min_lookups(k, canvas, double), None);
        assert_eq!(
            reach.min_lookups(ChainLink::FieldsAndMethods, canvas, double),
            Some(2)
        );
    }

    #[test]
    fn unreachable_types_are_absent() {
        let db = db();
        let reach = ReachIndex::build(&db);
        let canvas = db.types().lookup_qualified("N.Canvas").unwrap();
        let island = db.types().lookup_qualified("N.Island").unwrap();
        assert_eq!(
            reach.min_lookups(ChainLink::FieldsAndMethods, canvas, island),
            None
        );
        // But the island reaches its own bool field.
        assert_eq!(
            reach.min_lookups(ChainLink::Fields, island, db.types().bool_ty()),
            Some(1)
        );
    }

    #[test]
    fn pruner_respects_budget_and_admissibility() {
        let db = db();
        let reach = ReachIndex::build(&db);
        let canvas = db.types().lookup_qualified("N.Canvas").unwrap();
        let int = db.types().int_ty();
        let filter = TypeFilter::one_of(vec![int]);
        let pruner = reach
            .pruner(&db, ChainLink::Fields, &filter)
            .expect("filter is narrow");
        // The stream's viability test is `min_to_admissible ≤ remaining`:
        // a canvas state survives a 3-link budget but not a 2-link one.
        let d = pruner.min_to_admissible(canvas).expect("int is reachable");
        assert!(d <= 3, "int reachable in exactly 3");
        assert!(d > 2, "not within 2");
        // An unfiltered query has no pruner (nothing to prune against).
        assert!(reach
            .pruner(&db, ChainLink::Fields, &TypeFilter::any())
            .is_none());
    }

    #[test]
    fn min_to_admissible_is_the_shortest_admissible_distance() {
        let db = db();
        let reach = ReachIndex::build(&db);
        let canvas = db.types().lookup_qualified("N.Canvas").unwrap();
        let line = db.types().lookup_qualified("N.Line").unwrap();
        let island = db.types().lookup_qualified("N.Island").unwrap();
        let int = db.types().int_ty();
        let filter = TypeFilter::one_of(vec![int]);
        let pruner = reach
            .pruner(&db, ChainLink::Fields, &filter)
            .expect("filter is narrow");
        assert_eq!(pruner.min_to_admissible(canvas), Some(3));
        assert_eq!(pruner.min_to_admissible(line), Some(2));
        assert_eq!(pruner.min_to_admissible(int), Some(0));
        assert_eq!(pruner.min_to_admissible(island), None);
    }
}
