//! The type-reachability index the paper proposes but does not implement
//! (Section 4.2):
//!
//! > "queries for multiple field lookups could also be made more efficient
//! > using an index that indicates for each type which types are reachable
//! > by a `.?*f` or `.?*m` query \[and\] how many lookups are needed."
//!
//! [`ReachIndex`] precomputes, for every type and both link kinds, the
//! minimum number of lookups to every reachable type. During a filtered
//! chain search the engine can then prune a state whose type cannot reach
//! any admissible type within the remaining link budget.
//!
//! The index is a **sound over-approximation**: it includes private members
//! regardless of context, so it never prunes a state the search could
//! still complete — pruning changes performance, never results (a property
//! tested in `tests/prop_engine.rs` and enforced by the ablation bench).

use std::collections::HashMap;

use pex_model::Database;
use pex_types::TypeId;

use super::chains::{ChainLink, TypeFilter};

/// Per-type minimum-lookup reachability, for both link kinds.
#[derive(Debug, Clone)]
pub struct ReachIndex {
    fields: Vec<HashMap<TypeId, u32>>,
    fields_and_methods: Vec<HashMap<TypeId, u32>>,
}

impl ReachIndex {
    /// Builds the index over every type in the database.
    pub fn build(db: &Database) -> Self {
        let n = db.types().len();
        let mut field_edges: Vec<Vec<TypeId>> = vec![Vec::new(); n];
        let mut method_edges: Vec<Vec<TypeId>> = vec![Vec::new(); n];
        for ty in db.types().iter() {
            for owner in db.member_lookup_chain(ty) {
                for &f in db.fields_of(owner) {
                    let fd = db.field(f);
                    if !fd.is_static() {
                        field_edges[ty.index()].push(fd.ty());
                    }
                }
                for &m in db.methods_of(owner) {
                    let md = db.method(m);
                    if !md.is_static()
                        && md.params().is_empty()
                        && md.return_type() != db.types().void_ty()
                    {
                        method_edges[ty.index()].push(md.return_type());
                    }
                }
            }
        }
        let bfs = |extra: Option<&Vec<Vec<TypeId>>>| -> Vec<HashMap<TypeId, u32>> {
            (0..n)
                .map(|start| {
                    let mut dist: HashMap<TypeId, u32> = HashMap::new();
                    let start_ty = TypeId::from_index(start);
                    dist.insert(start_ty, 0);
                    let mut queue = std::collections::VecDeque::new();
                    queue.push_back(start_ty);
                    while let Some(t) = queue.pop_front() {
                        let d = dist[&t];
                        let push = |next: TypeId, dist_map: &mut HashMap<TypeId, u32>,
                                        queue: &mut std::collections::VecDeque<TypeId>| {
                            if let std::collections::hash_map::Entry::Vacant(slot) =
                                dist_map.entry(next)
                            {
                                slot.insert(d + 1);
                                queue.push_back(next);
                            }
                        };
                        for &next in &field_edges[t.index()] {
                            push(next, &mut dist, &mut queue);
                        }
                        if let Some(method_edges) = extra {
                            for &next in &method_edges[t.index()] {
                                push(next, &mut dist, &mut queue);
                            }
                        }
                    }
                    dist
                })
                .collect()
        };
        ReachIndex {
            fields: bfs(None),
            fields_and_methods: bfs(Some(&method_edges)),
        }
    }

    /// Minimum lookups from `from` to `to` with the given link kind, if
    /// reachable at all (`Some(0)` when `from == to`).
    pub fn min_lookups(&self, kind: ChainLink, from: TypeId, to: TypeId) -> Option<u32> {
        self.map(kind, from).get(&to).copied()
    }

    /// All types reachable from `from` with their minimum lookup counts.
    pub fn reachable(&self, kind: ChainLink, from: TypeId) -> &HashMap<TypeId, u32> {
        self.map(kind, from)
    }

    fn map(&self, kind: ChainLink, from: TypeId) -> &HashMap<TypeId, u32> {
        match kind {
            ChainLink::Fields => &self.fields[from.index()],
            ChainLink::FieldsAndMethods => &self.fields_and_methods[from.index()],
        }
    }

    /// Prepares a pruner for one filtered chain query: `admissible` is the
    /// set of types whose values pass the filter.
    pub(crate) fn pruner(
        &self,
        db: &Database,
        kind: ChainLink,
        filter: &TypeFilter,
    ) -> Option<ReachPruner<'_>> {
        if filter.is_any() {
            return None; // nothing to prune against
        }
        let mut admissible = vec![false; db.types().len()];
        for ty in db.types().iter() {
            if filter.admits(db, ty) {
                admissible[ty.index()] = true;
            }
        }
        Some(ReachPruner {
            index: self,
            kind,
            admissible,
        })
    }
}

/// A per-query pruning oracle (see [`ReachIndex::pruner`]).
pub(crate) struct ReachPruner<'a> {
    index: &'a ReachIndex,
    kind: ChainLink,
    admissible: Vec<bool>,
}

impl<'a> ReachPruner<'a> {
    /// Whether a chain state of type `ty` with `remaining` link budget can
    /// still produce an admissible completion.
    pub(crate) fn viable(&self, ty: TypeId, remaining: u32) -> bool {
        self.index
            .reachable(self.kind, ty)
            .iter()
            .any(|(t, d)| *d <= remaining && self.admissible[t.index()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;

    fn db() -> Database {
        compile(
            r#"
            namespace N {
                struct Point { int X; }
                class Line {
                    N.Point P1;
                    double GetLength();
                }
                class Canvas {
                    N.Line Selected;
                }
                class Island { bool Flag; }
            }
            "#,
        )
        .unwrap()
    }

    #[test]
    fn min_lookups_follow_the_field_graph() {
        let db = db();
        let reach = ReachIndex::build(&db);
        let canvas = db.types().lookup_qualified("N.Canvas").unwrap();
        let line = db.types().lookup_qualified("N.Line").unwrap();
        let point = db.types().lookup_qualified("N.Point").unwrap();
        let int = db.types().int_ty();
        let double = db.types().double_ty();

        let k = ChainLink::Fields;
        assert_eq!(reach.min_lookups(k, canvas, canvas), Some(0));
        assert_eq!(reach.min_lookups(k, canvas, line), Some(1));
        assert_eq!(reach.min_lookups(k, canvas, point), Some(2));
        assert_eq!(reach.min_lookups(k, canvas, int), Some(3));
        // double is only reachable through GetLength(), a method link.
        assert_eq!(reach.min_lookups(k, canvas, double), None);
        assert_eq!(
            reach.min_lookups(ChainLink::FieldsAndMethods, canvas, double),
            Some(2)
        );
    }

    #[test]
    fn unreachable_types_are_absent() {
        let db = db();
        let reach = ReachIndex::build(&db);
        let canvas = db.types().lookup_qualified("N.Canvas").unwrap();
        let island = db.types().lookup_qualified("N.Island").unwrap();
        assert_eq!(
            reach.min_lookups(ChainLink::FieldsAndMethods, canvas, island),
            None
        );
        // But the island reaches its own bool field.
        assert_eq!(
            reach.min_lookups(ChainLink::Fields, island, db.types().bool_ty()),
            Some(1)
        );
    }

    #[test]
    fn pruner_respects_budget_and_admissibility() {
        let db = db();
        let reach = ReachIndex::build(&db);
        let canvas = db.types().lookup_qualified("N.Canvas").unwrap();
        let int = db.types().int_ty();
        let filter = TypeFilter::one_of(vec![int]);
        let pruner = reach
            .pruner(&db, ChainLink::Fields, &filter)
            .expect("filter is narrow");
        assert!(pruner.viable(canvas, 3), "int reachable in exactly 3");
        assert!(!pruner.viable(canvas, 2), "not within 2");
        // An unfiltered query has no pruner (nothing to prune against).
        assert!(reach
            .pruner(&db, ChainLink::Fields, &TypeFilter::any())
            .is_none());
    }
}
