//! Surgical cache invalidation for incremental snapshot updates.
//!
//! [`refresh_derived`] takes the old and patched databases plus the
//! [`ModelDiff`] produced by `pex_model::minics::apply_update` and
//! rebuilds **only** the derived state the edit can actually have changed:
//!
//! - the [`ConversionIndex`] is partially
//!   rebuilt (rows whose target walk avoids the dirty types are reused)
//!   and only when a hierarchy edge moved at all;
//! - [`MethodIndex`] candidate-memo cells survive unless their
//!   conversion-target walk intersects the dirty parameter/type set;
//! - successor-memo entries survive unless
//!   the keyed type's member-lookup chain (in either database) touches a
//!   dirty type;
//! - the [`ReachIndex`] and its pruner memo are rebuilt only when the
//!   reachability edge universe changed (reach is transitive, so any edge
//!   edit may move distances arbitrarily far away — partial rebuild is
//!   not sound there);
//! - the hash-consing arena is carried over wholesale: positional ids are
//!   stable across updates, so every interned expression stays valid.
//!
//! A signature-identical body edit therefore invalidates nothing, and the
//! per-call [`InvalidationStats`] lets the protocol layer prove it (the
//! `engine.invalidate.*` counters are cumulative; the stats are per
//! update).

use std::collections::HashSet;

use pex_model::minics::ModelDiff;
use pex_model::Database;
use pex_types::{ConversionIndex, TypeId};

use super::{EngineCache, MethodIndex, ReachIndex};

/// What one incremental refresh actually threw away, per cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvalidationStats {
    /// Successor-memo entries dropped (chain expansion cache).
    pub chains: usize,
    /// Successor-memo entries carried over.
    pub chains_kept: usize,
    /// Candidate-memo cells dropped from the method index.
    pub candidates: usize,
    /// Candidate-memo cells carried over.
    pub candidates_kept: usize,
    /// Conversion-index rows recomputed (0 when the hierarchy is
    /// untouched and the memoized index survives the database clone).
    pub conversions: usize,
    /// Whether the reachability index and its pruner memo were rebuilt.
    pub reach_rebuilt: bool,
}

impl InvalidationStats {
    /// Total entries invalidated across every cache.
    pub fn total(&self) -> usize {
        self.chains + self.candidates + self.conversions + usize::from(self.reach_rebuilt)
    }
}

/// Rebuilds the derived indexes and engine caches for `new_db`, reusing
/// everything the [`ModelDiff`] proves untouched. Emits the cumulative
/// `engine.invalidate.{chains,candidates,conversions,reach}` counters.
///
/// `old_db` must be the database the caches were built against and
/// `new_db` the output of `apply_update` on it; positional ids are stable
/// between the two, which is what makes carrying entries across sound.
pub fn refresh_derived(
    old_db: &Database,
    new_db: &mut Database,
    old_index: &MethodIndex,
    old_reach: &ReachIndex,
    old_cache: &EngineCache,
    diff: &ModelDiff,
) -> (MethodIndex, ReachIndex, EngineCache, InvalidationStats) {
    let mut stats = InvalidationStats::default();

    // Conversion index first: the candidate retention test below walks
    // conversion targets on the new table. Hierarchy mutators cleared the
    // cloned table's memo, so rebuild partially from the old index;
    // otherwise the memoized index survived `Database::clone` untouched.
    if diff.hierarchy_changed {
        let old_conv = old_db.types().conversion_index();
        let (conv, recomputed) =
            ConversionIndex::rebuild_partial(new_db.types(), old_conv, &diff.dirty_types);
        new_db.types_mut().set_conversion_index(conv);
        stats.conversions = recomputed;
    }

    // Dirty set for member-shaped caches: types whose member surface or
    // supertype edges moved, plus every parameter type a signature change
    // added or removed from the index.
    let dirty: HashSet<TypeId> = diff
        .dirty_types
        .iter()
        .chain(diff.dirty_param_types.iter())
        .copied()
        .collect();

    let (index, cand_dropped, cand_kept) = old_index.rebuild_after_update(new_db, &dirty);
    stats.candidates = cand_dropped;
    stats.candidates_kept = cand_kept;

    // Reach is transitive: a single edge edit can move distances for types
    // arbitrarily far upstream, so the index and its pruner tables rebuild
    // wholesale — but only when the edge universe actually changed.
    let reach = if diff.reach_changed {
        stats.reach_rebuilt = true;
        ReachIndex::build(new_db)
    } else {
        old_reach.clone()
    };

    let (chains, chains_dropped, chains_kept) =
        old_cache.chains.retain_for_update(old_db, new_db, &dirty);
    stats.chains = chains_dropped;
    stats.chains_kept = chains_kept;

    // Pruner tables key on `(link kind, filter)` and bake in per-type
    // admissibility + distances: stale whenever reach or conversions
    // moved, carried otherwise.
    let reach_memo = if diff.reach_changed || diff.hierarchy_changed {
        super::reach::ReachMemo::default()
    } else {
        old_cache.reach.carry()
    };

    let cache = EngineCache {
        arena: old_cache.arena.clone(),
        chains,
        reach: reach_memo,
    };

    pex_obs::counter!("engine.invalidate.chains", stats.chains as u64);
    pex_obs::counter!("engine.invalidate.candidates", stats.candidates as u64);
    pex_obs::counter!("engine.invalidate.conversions", stats.conversions as u64);
    pex_obs::counter!("engine.invalidate.reach", u64::from(stats.reach_rebuilt));

    (index, reach, cache, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::{apply_update, compile};

    const BASE: &str = r#"
        namespace Geo {
            class Shape {
                double Scale;
                double GetArea() { return this.Scale; }
                int Rank() { return 1; }
            }
            class Circle : Geo.Shape {
                double Radius { get; set; }
                double GetArea() { return this.Radius; }
            }
            class Canvas {
                Geo.Circle Selected;
                void Clear();
            }
        }
    "#;

    fn warmed(db: &Database) -> (MethodIndex, ReachIndex, EngineCache) {
        let index = MethodIndex::build(db);
        let reach = ReachIndex::build(db);
        let cache = EngineCache::new();
        // Warm every per-type cell and successor entry so retention has
        // something to keep or drop.
        for ty in db.types().iter() {
            let _ = index.candidates_for_cached(db, ty);
            let _ = cache.chains.successors(
                db,
                ty,
                crate::engine::chains::ChainLink::FieldsAndMethods,
                None,
            );
        }
        (index, reach, cache)
    }

    #[test]
    fn body_edit_invalidates_nothing() {
        let db = compile(BASE).unwrap();
        let (index, reach, cache) = warmed(&db);
        let edited = BASE.replace("return 1;", "return 2;");
        let (mut new_db, diff) = apply_update(&db, &edited).unwrap();
        assert_eq!(diff.body_edited.len(), 1);
        let (new_index, _, _, stats) =
            refresh_derived(&db, &mut new_db, &index, &reach, &cache, &diff);
        assert_eq!(stats.chains, 0, "{stats:?}");
        assert_eq!(stats.candidates, 0, "{stats:?}");
        assert_eq!(stats.conversions, 0, "{stats:?}");
        assert!(!stats.reach_rebuilt);
        assert!(stats.candidates_kept > 0);
        // Carried cells still answer exactly like a fresh walk.
        for ty in new_db.types().iter() {
            assert_eq!(
                new_index.candidates_for_cached(&new_db, ty),
                new_index.candidates_for(&new_db, ty).as_slice()
            );
        }
    }

    #[test]
    fn signature_change_drops_only_affected_entries() {
        let db = compile(BASE).unwrap();
        let (index, reach, cache) = warmed(&db);
        // Change Rank's return type: Shape's member surface moves, and the
        // zero-arg return edge changes reachability.
        let edited = BASE.replace("int Rank() { return 1; }", "double Rank() { return 0.5; }");
        let (mut new_db, diff) = apply_update(&db, &edited).unwrap();
        assert_eq!(diff.signatures_changed, 1);
        let (new_index, new_reach, new_cache, stats) =
            refresh_derived(&db, &mut new_db, &index, &reach, &cache, &diff);
        assert!(stats.chains > 0, "Shape/Circle chain entries are stale");
        assert!(stats.chains_kept > 0, "unrelated types keep theirs");
        assert!(stats.reach_rebuilt);
        // Every surviving and rebuilt answer matches a cold rebuild.
        let cold_index = MethodIndex::build(&new_db);
        for ty in new_db.types().iter() {
            assert_eq!(
                new_index.candidates_for_cached(&new_db, ty),
                cold_index.candidates_for(&new_db, ty).as_slice(),
                "candidates diverge for {}",
                new_db.types().qualified_name(ty)
            );
            for other in new_db.types().iter() {
                assert_eq!(
                    new_reach.min_lookups(
                        crate::engine::chains::ChainLink::FieldsAndMethods,
                        ty,
                        other
                    ),
                    ReachIndex::build(&new_db).min_lookups(
                        crate::engine::chains::ChainLink::FieldsAndMethods,
                        ty,
                        other
                    )
                );
            }
            let fresh = new_cache.chains.successors(
                &new_db,
                ty,
                crate::engine::chains::ChainLink::FieldsAndMethods,
                None,
            );
            let cold = EngineCache::new().chains.successors(
                &new_db,
                ty,
                crate::engine::chains::ChainLink::FieldsAndMethods,
                None,
            );
            assert_eq!(fresh.as_ref(), cold.as_ref());
        }
    }

    #[test]
    fn hierarchy_change_partially_rebuilds_conversions() {
        let db = compile(BASE).unwrap();
        // Force the old conversion index so the partial rebuild has rows
        // to reuse.
        let _ = db.types().conversion_index();
        let (index, reach, cache) = warmed(&db);
        let edited = BASE.replace("class Circle : Geo.Shape {", "class Circle {");
        let (mut new_db, diff) = apply_update(&db, &edited).unwrap();
        assert!(diff.hierarchy_changed);
        let (_, _, _, stats) = refresh_derived(&db, &mut new_db, &index, &reach, &cache, &diff);
        assert!(stats.conversions > 0, "Circle's row was recomputed");
        assert!(
            stats.conversions < new_db.types().len(),
            "most rows were reused: {stats:?}"
        );
        // The installed index matches a cold build.
        let cold = ConversionIndex::build(new_db.types());
        for ty in new_db.types().iter() {
            assert_eq!(
                new_db.types().conversion_index().targets(ty),
                cold.targets(ty),
                "conversion row diverges for {}",
                new_db.types().qualified_name(ty)
            );
        }
    }
}
