//! Expansion of method-call queries: given one concrete choice of argument
//! completions (a combo), produce every type-correct, scored call.

use std::collections::HashSet;

use pex_model::{Expr, ExprKey, MethodId, ValueTy};

use crate::rank::Ranker;

use super::index::MethodIndex;
use super::stream::{Completion, ScoredStream};

/// Expands a `?({...})` combo: finds candidate methods via the index, places
/// the arguments injectively into argument positions (receiver included),
/// fills the rest with `0`, and scores each resulting call.
///
/// Candidate lists and counts come from the index's per-type memo
/// ([`MethodIndex::candidates_for_cached`]), so argument combos that repeat
/// a type — within one query or across queries against the same index —
/// never repeat the supertype walk.
pub(crate) fn expand_unknown_call(
    ranker: &Ranker<'_>,
    index: &MethodIndex,
    items: &[Completion],
) -> Vec<Completion> {
    let db = ranker.db;
    // Pick the argument whose index entry is smallest (paper Section 4.2).
    let mut best: Option<(usize, usize)> = None; // (arg position, count)
    for (i, item) in items.iter().enumerate() {
        if let ValueTy::Known(t) = item.ty {
            let count = index.candidate_count_cached(db, t);
            if best.map(|(_, c)| count < c).unwrap_or(true) {
                best = Some((i, count));
            }
        }
    }
    let candidates: &[MethodId] = match best {
        Some((i, _)) => match items[i].ty {
            ValueTy::Known(t) => index.candidates_for_cached(db, t),
            ValueTy::Wildcard => unreachable!("best is only set for known types"),
        },
        None => index.all_with_args(),
    };

    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for &m in candidates.iter() {
        let md = db.method(m);
        if !db.accessible(md.visibility(), md.declaring(), ranker.ctx.enclosing_type) {
            continue;
        }
        let param_tys = md.full_param_types();
        if param_tys.len() < items.len() {
            continue;
        }
        place(
            ranker,
            m,
            &param_tys,
            items,
            &mut vec![None; param_tys.len()],
            0,
            &mut seen,
            &mut out,
        );
    }
    out
}

/// Recursive injective placement of `items[i..]` into free positions.
#[allow(clippy::too_many_arguments)]
fn place(
    ranker: &Ranker<'_>,
    m: MethodId,
    param_tys: &[pex_types::TypeId],
    items: &[Completion],
    slots: &mut Vec<Option<usize>>, // slot j -> index into items
    i: usize,
    seen: &mut HashSet<ExprKey>,
    out: &mut Vec<Completion>,
) {
    let db = ranker.db;
    if i == items.len() {
        let args: Vec<Expr> = slots
            .iter()
            .map(|s| match s {
                Some(k) => items[*k].expr.clone(),
                None => Expr::Hole0,
            })
            .collect();
        let expr = Expr::Call(m, args);
        if !seen.insert(ExprKey(expr.clone())) {
            return;
        }
        if let Some(score) = ranker.score(&expr) {
            let ty = ValueTy::Known(db.method(m).return_type());
            out.push(Completion { expr, score, ty });
        }
        return;
    }
    for j in 0..param_tys.len() {
        if slots[j].is_some() {
            continue;
        }
        let fits = match items[i].ty {
            ValueTy::Wildcard => true,
            ValueTy::Known(t) => db.types().type_distance(t, param_tys[j]).is_some(),
        };
        if !fits {
            continue;
        }
        slots[j] = Some(i);
        place(ranker, m, param_tys, items, slots, i + 1, seen, out);
        slots[j] = None;
    }
}

/// Expands a known-method combo positionally over the candidate overloads.
pub(crate) fn expand_known_call(
    ranker: &Ranker<'_>,
    candidates: &[MethodId],
    items: &[Completion],
) -> Vec<Completion> {
    let db = ranker.db;
    let mut out = Vec::new();
    for &m in candidates {
        let md = db.method(m);
        if md.full_arity() != items.len() {
            continue;
        }
        if !db.accessible(md.visibility(), md.declaring(), ranker.ctx.enclosing_type) {
            continue;
        }
        let args: Vec<Expr> = items.iter().map(|c| c.expr.clone()).collect();
        let expr = Expr::Call(m, args);
        if let Some(score) = ranker.score(&expr) {
            out.push(Completion {
                expr,
                score,
                ty: ValueTy::Known(md.return_type()),
            });
        }
    }
    out
}

/// Expands an assignment combo (`[lhs, rhs]`).
pub(crate) fn expand_assign(ranker: &Ranker<'_>, items: &[Completion]) -> Vec<Completion> {
    debug_assert_eq!(items.len(), 2);
    let lhs = &items[0];
    if !matches!(
        lhs.expr,
        Expr::Local(_) | Expr::StaticField(_) | Expr::FieldAccess(..)
    ) {
        return Vec::new();
    }
    let expr = Expr::assign(items[0].expr.clone(), items[1].expr.clone());
    match ranker.score(&expr) {
        Some(score) => vec![Completion {
            expr,
            score,
            ty: lhs.ty,
        }],
        None => Vec::new(),
    }
}

/// Expands a comparison combo (`[lhs, rhs]`).
pub(crate) fn expand_cmp(
    ranker: &Ranker<'_>,
    op: pex_model::CmpOp,
    items: &[Completion],
) -> Vec<Completion> {
    debug_assert_eq!(items.len(), 2);
    let expr = Expr::cmp(op, items[0].expr.clone(), items[1].expr.clone());
    match ranker.score(&expr) {
        Some(score) => vec![Completion {
            expr,
            score,
            ty: ValueTy::Known(ranker.db.types().bool_ty()),
        }],
        None => Vec::new(),
    }
}

/// A stream filtered by a type predicate (bounds pass through unchanged —
/// filtering can only remove items, so lower bounds stay valid).
pub(crate) struct Filtered<'a> {
    pub(crate) inner: Box<dyn ScoredStream + 'a>,
    pub(crate) db: &'a pex_model::Database,
    pub(crate) filter: super::chains::TypeFilter,
}

impl<'a> ScoredStream for Filtered<'a> {
    fn bound(&mut self) -> Option<u32> {
        self.inner.bound()
    }

    fn next_item(&mut self) -> Option<Completion> {
        loop {
            let c = self.inner.next_item()?;
            if self.filter.passes(self.db, c.ty) {
                return Some(c);
            }
        }
    }
}
