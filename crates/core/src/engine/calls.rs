//! Expansion of method-call queries: given one concrete choice of argument
//! completions (a combo), produce every type-correct, scored call.
//!
//! Each expander exists in two forms that must stay row-for-row identical:
//! the boxed reference form over [`Expr`] trees (deduplicated by
//! [`ExprKey`]) and the interned hot form over arena ids (deduplicated by
//! [`ExprId`] — sound because id equality coincides with `ExprKey`
//! equality). The equivalence proptest in `tests/interned_equiv.rs` pins
//! the two together.

use std::collections::HashSet;

use pex_model::{ENode, Expr, ExprArena, ExprId, ExprKey, MethodId, ValueTy};

use crate::rank::Ranker;

use super::index::MethodIndex;
use super::stream::{Completion, IComp, ScoredStream};

/// Expands a `?({...})` combo: finds candidate methods via the index, places
/// the arguments injectively into argument positions (receiver included),
/// fills the rest with `0`, and scores each resulting call.
///
/// Candidate lists and counts come from the index's per-type memo
/// ([`MethodIndex::candidates_for_cached`]), so argument combos that repeat
/// a type — within one query or across queries against the same index —
/// never repeat the supertype walk.
pub(crate) fn expand_unknown_call(
    ranker: &Ranker<'_>,
    index: &MethodIndex,
    items: &[Completion],
) -> Vec<Completion> {
    let db = ranker.db;
    let candidates = match pick_candidates(ranker, index, items.iter().map(|c| c.ty)) {
        Some(c) => c,
        None => index.all_with_args(),
    };
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for &m in candidates.iter() {
        let md = db.method(m);
        if !db.accessible(md.visibility(), md.declaring(), ranker.ctx.enclosing_type) {
            continue;
        }
        let param_tys = md.full_param_types();
        if param_tys.len() < items.len() {
            continue;
        }
        place(
            ranker,
            m,
            &param_tys,
            items,
            &mut vec![None; param_tys.len()],
            0,
            &mut seen,
            &mut out,
        );
    }
    out
}

/// Picks the candidate list of the argument whose index entry is smallest
/// (paper Section 4.2); `None` when no argument has a known type.
fn pick_candidates<'i>(
    ranker: &Ranker<'_>,
    index: &'i MethodIndex,
    types: impl Iterator<Item = ValueTy>,
) -> Option<&'i [MethodId]> {
    let db = ranker.db;
    let mut best: Option<(pex_types::TypeId, usize)> = None;
    for ty in types {
        if let ValueTy::Known(t) = ty {
            let count = index.candidate_count_cached(db, t);
            if best.map(|(_, c)| count < c).unwrap_or(true) {
                best = Some((t, count));
            }
        }
    }
    best.map(|(t, _)| index.candidates_for_cached(db, t))
}

/// Recursive injective placement of `items[i..]` into free positions.
#[allow(clippy::too_many_arguments)]
fn place(
    ranker: &Ranker<'_>,
    m: MethodId,
    param_tys: &[pex_types::TypeId],
    items: &[Completion],
    slots: &mut Vec<Option<usize>>, // slot j -> index into items
    i: usize,
    seen: &mut HashSet<ExprKey>,
    out: &mut Vec<Completion>,
) {
    let db = ranker.db;
    if i == items.len() {
        let args: Vec<Expr> = slots
            .iter()
            .map(|s| match s {
                Some(k) => items[*k].expr.clone(),
                None => Expr::Hole0,
            })
            .collect();
        let expr = Expr::Call(m, args);
        if !seen.insert(ExprKey(expr.clone())) {
            return;
        }
        if let Some(score) = ranker.score(&expr) {
            let ty = ValueTy::Known(db.method(m).return_type());
            out.push(Completion { expr, score, ty });
        }
        return;
    }
    for j in 0..param_tys.len() {
        if slots[j].is_some() {
            continue;
        }
        let fits = match items[i].ty {
            ValueTy::Wildcard => true,
            ValueTy::Known(t) => db.types().type_distance(t, param_tys[j]).is_some(),
        };
        if !fits {
            continue;
        }
        slots[j] = Some(i);
        place(ranker, m, param_tys, items, slots, i + 1, seen, out);
        slots[j] = None;
    }
}

/// Interned twin of [`expand_unknown_call`]: same candidate choice, same
/// injective placement order, but every built call is one `intern` and the
/// dedup set holds `u32` ids instead of whole trees.
pub(crate) fn expand_unknown_call_interned(
    ranker: &Ranker<'_>,
    index: &MethodIndex,
    arena: &ExprArena,
    items: &[IComp],
) -> Vec<IComp> {
    let db = ranker.db;
    let candidates = match pick_candidates(ranker, index, items.iter().map(|c| c.ty)) {
        Some(c) => c,
        None => index.all_with_args(),
    };
    let mut out = Vec::new();
    let mut seen = HashSet::new();
    for &m in candidates.iter() {
        let md = db.method(m);
        if !db.accessible(md.visibility(), md.declaring(), ranker.ctx.enclosing_type) {
            continue;
        }
        let param_tys = md.full_param_types();
        if param_tys.len() < items.len() {
            continue;
        }
        place_interned(
            ranker,
            arena,
            m,
            &param_tys,
            items,
            &mut vec![None; param_tys.len()],
            0,
            &mut seen,
            &mut out,
        );
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn place_interned(
    ranker: &Ranker<'_>,
    arena: &ExprArena,
    m: MethodId,
    param_tys: &[pex_types::TypeId],
    items: &[IComp],
    slots: &mut Vec<Option<usize>>,
    i: usize,
    seen: &mut HashSet<ExprId>,
    out: &mut Vec<IComp>,
) {
    let db = ranker.db;
    if i == items.len() {
        let hole = arena.hole0();
        let args: Vec<ExprId> = slots
            .iter()
            .map(|s| match s {
                Some(k) => items[*k].expr,
                None => hole,
            })
            .collect();
        let expr = arena.call(m, &args);
        if !seen.insert(expr) {
            return;
        }
        if let Some(score) = ranker.score_interned(arena, expr) {
            let ty = ValueTy::Known(db.method(m).return_type());
            out.push(IComp { expr, score, ty });
        }
        return;
    }
    for j in 0..param_tys.len() {
        if slots[j].is_some() {
            continue;
        }
        let fits = match items[i].ty {
            ValueTy::Wildcard => true,
            ValueTy::Known(t) => db.types().type_distance(t, param_tys[j]).is_some(),
        };
        if !fits {
            continue;
        }
        slots[j] = Some(i);
        place_interned(ranker, arena, m, param_tys, items, slots, i + 1, seen, out);
        slots[j] = None;
    }
}

/// Expands a known-method combo positionally over the candidate overloads.
pub(crate) fn expand_known_call(
    ranker: &Ranker<'_>,
    candidates: &[MethodId],
    items: &[Completion],
) -> Vec<Completion> {
    let db = ranker.db;
    let mut out = Vec::new();
    for &m in candidates {
        let md = db.method(m);
        if md.full_arity() != items.len() {
            continue;
        }
        if !db.accessible(md.visibility(), md.declaring(), ranker.ctx.enclosing_type) {
            continue;
        }
        let args: Vec<Expr> = items.iter().map(|c| c.expr.clone()).collect();
        let expr = Expr::Call(m, args);
        if let Some(score) = ranker.score(&expr) {
            out.push(Completion {
                expr,
                score,
                ty: ValueTy::Known(md.return_type()),
            });
        }
    }
    out
}

/// Interned twin of [`expand_known_call`].
pub(crate) fn expand_known_call_interned(
    ranker: &Ranker<'_>,
    arena: &ExprArena,
    candidates: &[MethodId],
    items: &[IComp],
) -> Vec<IComp> {
    let db = ranker.db;
    let mut out = Vec::new();
    for &m in candidates {
        let md = db.method(m);
        if md.full_arity() != items.len() {
            continue;
        }
        if !db.accessible(md.visibility(), md.declaring(), ranker.ctx.enclosing_type) {
            continue;
        }
        let args: Vec<ExprId> = items.iter().map(|c| c.expr).collect();
        let expr = arena.call(m, &args);
        if let Some(score) = ranker.score_interned(arena, expr) {
            out.push(IComp {
                expr,
                score,
                ty: ValueTy::Known(md.return_type()),
            });
        }
    }
    out
}

/// Expands an assignment combo (`[lhs, rhs]`).
pub(crate) fn expand_assign(ranker: &Ranker<'_>, items: &[Completion]) -> Vec<Completion> {
    debug_assert_eq!(items.len(), 2);
    let lhs = &items[0];
    if !matches!(
        lhs.expr,
        Expr::Local(_) | Expr::StaticField(_) | Expr::FieldAccess(..)
    ) {
        return Vec::new();
    }
    let expr = Expr::assign(items[0].expr.clone(), items[1].expr.clone());
    match ranker.score(&expr) {
        Some(score) => vec![Completion {
            expr,
            score,
            ty: lhs.ty,
        }],
        None => Vec::new(),
    }
}

/// Interned twin of [`expand_assign`].
pub(crate) fn expand_assign_interned(
    ranker: &Ranker<'_>,
    arena: &ExprArena,
    items: &[IComp],
) -> Vec<IComp> {
    debug_assert_eq!(items.len(), 2);
    let lhs = &items[0];
    let lhs_ok = matches!(
        arena.read().node(lhs.expr),
        ENode::Local(_) | ENode::StaticField(_) | ENode::FieldAccess(..)
    );
    if !lhs_ok {
        return Vec::new();
    }
    let expr = arena.assign(items[0].expr, items[1].expr);
    match ranker.score_interned(arena, expr) {
        Some(score) => vec![IComp {
            expr,
            score,
            ty: lhs.ty,
        }],
        None => Vec::new(),
    }
}

/// Expands a comparison combo (`[lhs, rhs]`).
pub(crate) fn expand_cmp(
    ranker: &Ranker<'_>,
    op: pex_model::CmpOp,
    items: &[Completion],
) -> Vec<Completion> {
    debug_assert_eq!(items.len(), 2);
    let expr = Expr::cmp(op, items[0].expr.clone(), items[1].expr.clone());
    match ranker.score(&expr) {
        Some(score) => vec![Completion {
            expr,
            score,
            ty: ValueTy::Known(ranker.db.types().bool_ty()),
        }],
        None => Vec::new(),
    }
}

/// Interned twin of [`expand_cmp`].
pub(crate) fn expand_cmp_interned(
    ranker: &Ranker<'_>,
    arena: &ExprArena,
    op: pex_model::CmpOp,
    items: &[IComp],
) -> Vec<IComp> {
    debug_assert_eq!(items.len(), 2);
    let expr = arena.cmp(op, items[0].expr, items[1].expr);
    match ranker.score_interned(arena, expr) {
        Some(score) => vec![IComp {
            expr,
            score,
            ty: ValueTy::Known(ranker.db.types().bool_ty()),
        }],
        None => Vec::new(),
    }
}

/// A stream filtered by a type predicate (bounds pass through unchanged —
/// filtering can only remove items, so lower bounds stay valid).
pub(crate) struct Filtered<'a, E> {
    pub(crate) inner: Box<dyn ScoredStream<E> + 'a>,
    pub(crate) db: &'a pex_model::Database,
    pub(crate) filter: super::chains::TypeFilter,
}

impl<'a, E> ScoredStream<E> for Filtered<'a, E> {
    fn bound(&mut self) -> Option<u32> {
        self.inner.bound()
    }

    fn next_item(&mut self) -> Option<super::stream::Scored<E>> {
        loop {
            let c = self.inner.next_item()?;
            if self.filter.passes(self.db, c.ty) {
                return Some(c);
            }
        }
    }
}
