//! The method index of paper Figure 8: parameter type → methods.
//!
//! "An index is maintained that maps every type to a set of methods for
//! which at least one of the arguments may be of that type." To save memory
//! the paper stores methods under the *exact* parameter type and follows
//! supertype pointers at query time; [`MethodIndex::candidates_for`] does
//! the same walk via [`pex_types::TypeTable::conversion_targets`], so
//! progressively farther entries correspond to progressively worse type
//! distances.

use std::collections::HashMap;

use pex_model::{Database, MethodId};
use pex_types::TypeId;

/// Index from parameter type (receiver included) to declaring methods.
#[derive(Debug, Clone, Default)]
pub struct MethodIndex {
    by_param: HashMap<TypeId, Vec<MethodId>>,
    /// Methods with at least one argument position (receiver or declared
    /// parameter) — the fallback set when no argument type is known.
    with_args: Vec<MethodId>,
}

impl MethodIndex {
    /// Builds the index over every method in the database.
    pub fn build(db: &Database) -> Self {
        let mut by_param: HashMap<TypeId, Vec<MethodId>> = HashMap::new();
        let mut with_args = Vec::new();
        for m in db.methods() {
            let tys = db.method(m).full_param_types();
            if tys.is_empty() {
                continue;
            }
            with_args.push(m);
            let mut seen = Vec::new();
            for ty in tys {
                if !seen.contains(&ty) {
                    seen.push(ty);
                    by_param.entry(ty).or_default().push(m);
                }
            }
        }
        MethodIndex {
            by_param,
            with_args,
        }
    }

    /// Methods with a parameter of *exactly* this type.
    pub fn exact(&self, ty: TypeId) -> &[MethodId] {
        self.by_param.get(&ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Methods that can accept an argument of type `ty` in some position:
    /// the union of the exact entries of every implicit-conversion target of
    /// `ty`, ordered by type distance (near first) and deduplicated.
    pub fn candidates_for(&self, db: &Database, ty: TypeId) -> Vec<MethodId> {
        let mut out = Vec::new();
        let mut seen = vec![false; db.method_count()];
        for (target, _) in db.types().conversion_targets(ty) {
            for &m in self.exact(target) {
                if !std::mem::replace(&mut seen[m.index()], true) {
                    out.push(m);
                }
            }
        }
        out
    }

    /// Size of [`MethodIndex::candidates_for`] without materialising it.
    pub fn candidate_count(&self, db: &Database, ty: TypeId) -> usize {
        // Upper bound (duplicates across levels are rare enough for the
        // "pick the smallest set" heuristic).
        db.types()
            .conversion_targets(ty)
            .iter()
            .map(|&(t, _)| self.exact(t).len())
            .sum()
    }

    /// The fallback candidate set: every method with at least one argument
    /// position. Used when a query provides no typed argument at all.
    pub fn all_with_args(&self) -> &[MethodId] {
        &self.with_args
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;

    fn setup() -> Database {
        compile(
            r#"
            namespace G {
                class Animal { }
                class Dog : G.Animal { }
                class Kennel {
                    static void House(G.Dog d);
                    static void Admit(G.Animal a);
                    void Wash(G.Dog d);
                    static int Count();
                }
            }
            "#,
        )
        .unwrap()
    }

    fn find(db: &Database, name: &str) -> MethodId {
        db.methods().find(|m| db.method(*m).name() == name).unwrap()
    }

    #[test]
    fn exact_entries_respect_receivers() {
        let db = setup();
        let idx = MethodIndex::build(&db);
        let dog = db.types().lookup_qualified("G.Dog").unwrap();
        let kennel = db.types().lookup_qualified("G.Kennel").unwrap();
        let house = find(&db, "House");
        let wash = find(&db, "Wash");
        assert!(idx.exact(dog).contains(&house));
        assert!(idx.exact(dog).contains(&wash));
        // Wash is an instance method: its receiver type indexes it too.
        assert!(idx.exact(kennel).contains(&wash));
        // Count has no argument positions at all.
        let count = find(&db, "Count");
        assert!(!idx.all_with_args().contains(&count));
        assert!(!idx.exact(kennel).contains(&count));
    }

    #[test]
    fn candidates_walk_supertypes() {
        let db = setup();
        let idx = MethodIndex::build(&db);
        let dog = db.types().lookup_qualified("G.Dog").unwrap();
        let animal = db.types().lookup_qualified("G.Animal").unwrap();
        let house = find(&db, "House");
        let admit = find(&db, "Admit");
        let dog_cands = idx.candidates_for(&db, dog);
        assert!(dog_cands.contains(&house));
        assert!(dog_cands.contains(&admit), "a Dog fits Admit(Animal)");
        // Nearer entries first: House (exact) before Admit (distance 1).
        let hp = dog_cands.iter().position(|m| *m == house).unwrap();
        let ap = dog_cands.iter().position(|m| *m == admit).unwrap();
        assert!(hp < ap);
        // An Animal does not fit House(Dog).
        let animal_cands = idx.candidates_for(&db, animal);
        assert!(!animal_cands.contains(&house));
        assert!(animal_cands.contains(&admit));
        assert!(idx.candidate_count(&db, dog) >= dog_cands.len());
    }
}
