//! The method index of paper Figure 8: parameter type → methods.
//!
//! "An index is maintained that maps every type to a set of methods for
//! which at least one of the arguments may be of that type." To save memory
//! the paper stores methods under the *exact* parameter type and follows
//! supertype pointers at query time; [`MethodIndex::candidates_for`] does
//! the same walk via the memoized
//! [`pex_types::TypeTable::conversion_targets_ref`] lists, so progressively
//! farther entries correspond to progressively worse type distances.

use std::collections::HashMap;
use std::sync::OnceLock;

use pex_model::{Database, MethodId};
use pex_types::wire::{Reader, WireError, WireResult, Writer};
use pex_types::TypeId;

/// Reusable dedupe scratch for the candidate walks, hoisted out of the
/// per-call `vec![false; method_count]` allocation it replaces.
///
/// Marks are generation-stamped, so "clearing" between walks is a single
/// counter bump rather than an O(methods) reset. One scratch lives in each
/// completer's candidate cache; callers without one can rely on the
/// allocating convenience wrappers.
#[derive(Debug, Clone, Default)]
pub struct CandidateScratch {
    marks: Vec<u32>,
    stamp: u32,
}

impl CandidateScratch {
    /// A fresh scratch; grows to the database's method count on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new walk over `n` candidates, invalidating earlier marks.
    fn begin(&mut self, n: usize) {
        if self.marks.len() < n {
            self.marks.resize(n, 0);
        }
        self.stamp = self.stamp.wrapping_add(1);
        if self.stamp == 0 {
            // Stamp wrapped: old marks could alias, so reset once per 2^32.
            self.marks.fill(0);
            self.stamp = 1;
        }
    }

    /// Marks slot `i`, returning whether it was unmarked in this walk.
    fn mark(&mut self, i: usize) -> bool {
        if self.marks[i] == self.stamp {
            false
        } else {
            self.marks[i] = self.stamp;
            true
        }
    }
}

/// Index from parameter type (receiver included) to declaring methods.
#[derive(Debug, Clone, Default)]
pub struct MethodIndex {
    by_param: HashMap<TypeId, Vec<MethodId>>,
    /// Methods with at least one argument position (receiver or declared
    /// parameter) — the fallback set when no argument type is known.
    with_args: Vec<MethodId>,
    /// Per-type memo of the full deduplicated candidate list, filled on
    /// first lookup — the paper's "grouping computations by type"
    /// optimisation (Section 4.2) hoisted from per-query to per-index.
    /// `OnceLock` cells keep the index `Sync`, so parallel replay workers
    /// share fills instead of repeating them.
    memo: Vec<OnceLock<Box<[MethodId]>>>,
}

impl MethodIndex {
    /// Builds the index over every method in the database.
    pub fn build(db: &Database) -> Self {
        let mut by_param: HashMap<TypeId, Vec<MethodId>> = HashMap::new();
        let mut with_args = Vec::new();
        for m in db.methods() {
            let tys = db.method(m).full_param_types();
            if tys.is_empty() {
                continue;
            }
            with_args.push(m);
            let mut seen = Vec::new();
            for ty in tys {
                if !seen.contains(&ty) {
                    seen.push(ty);
                    by_param.entry(ty).or_default().push(m);
                }
            }
        }
        MethodIndex {
            by_param,
            with_args,
            memo: (0..db.types().len()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// Serializes the index — including every memoized per-type candidate
    /// list — for the persistent snapshot. A loaded snapshot therefore
    /// starts with the same memo contents a prewarmed boot would have,
    /// which is what lets `--load-snapshot` skip the prewarm pass.
    /// Hash-map entries are written in type-id order so identical indexes
    /// serialize to identical bytes.
    pub fn encode_snapshot(&self, w: &mut Writer) {
        let mut by_param: Vec<(&TypeId, &Vec<MethodId>)> = self.by_param.iter().collect();
        by_param.sort_unstable_by_key(|(ty, _)| **ty);
        w.put_len(by_param.len());
        for (ty, methods) in by_param {
            w.put_u32(ty.index() as u32);
            w.put_len(methods.len());
            for m in methods {
                w.put_u32(m.index() as u32);
            }
        }
        w.put_len(self.with_args.len());
        for m in &self.with_args {
            w.put_u32(m.index() as u32);
        }
        w.put_len(self.memo.len());
        for cell in &self.memo {
            match cell.get() {
                Some(list) => {
                    w.put_bool(true);
                    w.put_len(list.len());
                    for m in list.iter() {
                        w.put_u32(m.index() as u32);
                    }
                }
                None => w.put_bool(false),
            }
        }
    }

    /// Decodes an index written by [`MethodIndex::encode_snapshot`] for a
    /// database with `n_types` types and `n_methods` methods, restoring
    /// filled memo cells and bounds-checking every id.
    pub fn decode_snapshot(
        r: &mut Reader<'_>,
        n_types: usize,
        n_methods: usize,
    ) -> WireResult<Self> {
        let n_entries = r.get_len("method index entry count")?;
        let mut by_param = HashMap::with_capacity(n_entries);
        for _ in 0..n_entries {
            let ty = TypeId::from_index(r.get_id(n_types, "indexed parameter type")?);
            let n = r.get_len("indexed method count")?;
            let mut methods = Vec::with_capacity(n);
            for _ in 0..n {
                methods.push(MethodId::from_index(r.get_id(n_methods, "indexed method")?));
            }
            if by_param.insert(ty, methods).is_some() {
                return Err(WireError::new(format!(
                    "duplicate method index entry for type {}",
                    ty.index()
                )));
            }
        }
        let n_with_args = r.get_len("with-args method count")?;
        let mut with_args = Vec::with_capacity(n_with_args);
        for _ in 0..n_with_args {
            with_args.push(MethodId::from_index(
                r.get_id(n_methods, "with-args method")?,
            ));
        }
        let n_memo = r.get_len("candidate memo count")?;
        if n_memo != n_types {
            return Err(WireError::new(format!(
                "candidate memo covers {n_memo} types but the table holds {n_types}"
            )));
        }
        let mut memo = Vec::with_capacity(n_memo);
        for _ in 0..n_memo {
            let cell = OnceLock::new();
            if r.get_bool("memo cell presence flag")? {
                let n = r.get_len("memoized candidate count")?;
                let mut list = Vec::with_capacity(n);
                for _ in 0..n {
                    list.push(MethodId::from_index(
                        r.get_id(n_methods, "memoized candidate")?,
                    ));
                }
                let _ = cell.set(list.into_boxed_slice());
            }
            memo.push(cell);
        }
        Ok(MethodIndex {
            by_param,
            with_args,
            memo,
        })
    }

    /// Methods with a parameter of *exactly* this type.
    pub fn exact(&self, ty: TypeId) -> &[MethodId] {
        self.by_param.get(&ty).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Methods that can accept an argument of type `ty` in some position:
    /// the union of the exact entries of every implicit-conversion target of
    /// `ty`, ordered by type distance (near first) and deduplicated.
    ///
    /// Allocating convenience wrapper around
    /// [`MethodIndex::candidates_for_with`]; hot paths should hold a
    /// [`CandidateScratch`] and call that directly.
    pub fn candidates_for(&self, db: &Database, ty: TypeId) -> Vec<MethodId> {
        self.candidates_for_with(db, ty, &mut CandidateScratch::new())
    }

    /// [`MethodIndex::candidates_for`] with caller-provided dedupe scratch
    /// (no per-call allocation): the conversion-target list comes from the
    /// type table's memoized index and `scratch` replaces the visited
    /// bitmap.
    pub fn candidates_for_with(
        &self,
        db: &Database,
        ty: TypeId,
        scratch: &mut CandidateScratch,
    ) -> Vec<MethodId> {
        pex_obs::counter!("index.candidates.walks", 1);
        let mut out = Vec::new();
        scratch.begin(db.method_count());
        for &(target, _) in db.types().conversion_targets_ref(ty) {
            for &m in self.exact(target) {
                if scratch.mark(m.index()) {
                    out.push(m);
                }
            }
        }
        out
    }

    /// Exact size of [`MethodIndex::candidates_for`] without materialising
    /// the method list (same deduplicated walk, counting only). Used by the
    /// "pick the argument with the smallest candidate set" heuristic of
    /// paper Section 4.2, which therefore compares true set sizes.
    pub fn candidate_count(&self, db: &Database, ty: TypeId) -> usize {
        self.candidate_count_with(db, ty, &mut CandidateScratch::new())
    }

    /// [`MethodIndex::candidate_count`] with caller-provided scratch.
    pub fn candidate_count_with(
        &self,
        db: &Database,
        ty: TypeId,
        scratch: &mut CandidateScratch,
    ) -> usize {
        let mut n = 0;
        scratch.begin(db.method_count());
        for &(target, _) in db.types().conversion_targets_ref(ty) {
            for &m in self.exact(target) {
                if scratch.mark(m.index()) {
                    n += 1;
                }
            }
        }
        n
    }

    /// [`MethodIndex::candidates_for`], memoized per type for the lifetime
    /// of the index: the first lookup of each type performs the
    /// deduplicated supertype walk, every later lookup borrows the stored
    /// list. The engine's hot paths go through here, so repeated queries
    /// against one database pay the walk at most once per type.
    ///
    /// # Panics
    ///
    /// Panics if `ty` was declared after this index was built; the index is
    /// a snapshot and must be rebuilt when the database grows.
    pub fn candidates_for_cached(&self, db: &Database, ty: TypeId) -> &[MethodId] {
        pex_obs::counter!("index.candidates.lookups", 1);
        let cell = self
            .memo
            .get(ty.index())
            .expect("type declared after MethodIndex::build; rebuild the index");
        cell.get_or_init(|| {
            // Counted inside the init closure: `OnceLock` runs it exactly
            // once per cell even under racing parallel workers, so the
            // fill total equals the number of distinct types materialised
            // — deterministic for any thread count. Hits are derived as
            // lookups − fills.
            pex_obs::counter!("index.candidates.fills", 1);
            self.candidates_for(db, ty).into_boxed_slice()
        })
    }

    /// [`MethodIndex::candidates_for_cached`] without observability probes:
    /// the baseline for the obs-overhead benchmark (`speedups` measures the
    /// probed path against this with the registry enabled and disabled).
    /// Not for production call sites — use the instrumented twin.
    ///
    /// # Panics
    ///
    /// Panics if `ty` was declared after this index was built, exactly like
    /// the instrumented twin: the index is a snapshot and must be rebuilt
    /// when the database grows.
    pub fn candidates_for_cached_raw(&self, db: &Database, ty: TypeId) -> &[MethodId] {
        let cell = self
            .memo
            .get(ty.index())
            .expect("type declared after MethodIndex::build; rebuild the index");
        cell.get_or_init(|| self.candidates_for(db, ty).into_boxed_slice())
    }

    /// [`MethodIndex::candidate_count`] served from the per-type memo:
    /// exact (deduplicated) and O(1) after the first lookup of `ty`.
    pub fn candidate_count_cached(&self, db: &Database, ty: TypeId) -> usize {
        self.candidates_for_cached(db, ty).len()
    }

    /// The fallback candidate set: every method with at least one argument
    /// position. Used when a query provides no typed argument at all.
    pub fn all_with_args(&self) -> &[MethodId] {
        &self.with_args
    }

    /// Rebuilds the index over an incrementally patched database, carrying
    /// over every memoized candidate list the edit cannot have changed.
    ///
    /// The `by_param` and `with_args` tables rebuild wholesale (one linear
    /// pass over live methods); the expensive part — the per-type
    /// deduplicated supertype walks in `memo` — is retained for every type
    /// whose conversion-target list on the *new* table avoids `dirty`
    /// (dirty types ∪ dirty parameter types from the model diff): a cell's
    /// contents change only if some target's exact entry moved (that
    /// target is a dirty parameter type) or the target list itself moved
    /// (some type on the new list is dirty — hierarchy edits dirty the
    /// edited type, which stays on the walk). Returns
    /// `(index, cells dropped, cells kept)`.
    ///
    /// Requires the new table's conversion index to be installed already.
    pub fn rebuild_after_update(
        &self,
        new_db: &Database,
        dirty: &std::collections::HashSet<TypeId>,
    ) -> (MethodIndex, usize, usize) {
        let fresh = MethodIndex::build(new_db);
        let mut dropped = 0usize;
        let mut kept = 0usize;
        for (i, cell) in self.memo.iter().enumerate() {
            let Some(list) = cell.get() else { continue };
            if i >= fresh.memo.len() {
                dropped += 1;
                continue;
            }
            let ty = TypeId::from_index(i);
            let stale = new_db
                .types()
                .conversion_targets_ref(ty)
                .iter()
                .any(|&(target, _)| dirty.contains(&target));
            if stale {
                dropped += 1;
            } else {
                let _ = fresh.memo[i].set(list.clone());
                kept += 1;
            }
        }
        (fresh, dropped, kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pex_model::minics::compile;

    fn setup() -> Database {
        compile(
            r#"
            namespace G {
                class Animal { }
                class Dog : G.Animal { }
                class Kennel {
                    static void House(G.Dog d);
                    static void Admit(G.Animal a);
                    void Wash(G.Dog d);
                    static int Count();
                }
            }
            "#,
        )
        .unwrap()
    }

    fn find(db: &Database, name: &str) -> MethodId {
        db.methods().find(|m| db.method(*m).name() == name).unwrap()
    }

    #[test]
    fn exact_entries_respect_receivers() {
        let db = setup();
        let idx = MethodIndex::build(&db);
        let dog = db.types().lookup_qualified("G.Dog").unwrap();
        let kennel = db.types().lookup_qualified("G.Kennel").unwrap();
        let house = find(&db, "House");
        let wash = find(&db, "Wash");
        assert!(idx.exact(dog).contains(&house));
        assert!(idx.exact(dog).contains(&wash));
        // Wash is an instance method: its receiver type indexes it too.
        assert!(idx.exact(kennel).contains(&wash));
        // Count has no argument positions at all.
        let count = find(&db, "Count");
        assert!(!idx.all_with_args().contains(&count));
        assert!(!idx.exact(kennel).contains(&count));
    }

    #[test]
    fn candidates_walk_supertypes() {
        let db = setup();
        let idx = MethodIndex::build(&db);
        let dog = db.types().lookup_qualified("G.Dog").unwrap();
        let animal = db.types().lookup_qualified("G.Animal").unwrap();
        let house = find(&db, "House");
        let admit = find(&db, "Admit");
        let dog_cands = idx.candidates_for(&db, dog);
        assert!(dog_cands.contains(&house));
        assert!(dog_cands.contains(&admit), "a Dog fits Admit(Animal)");
        // Nearer entries first: House (exact) before Admit (distance 1).
        let hp = dog_cands.iter().position(|m| *m == house).unwrap();
        let ap = dog_cands.iter().position(|m| *m == admit).unwrap();
        assert!(hp < ap);
        // An Animal does not fit House(Dog).
        let animal_cands = idx.candidates_for(&db, animal);
        assert!(!animal_cands.contains(&house));
        assert!(animal_cands.contains(&admit));
        assert!(idx.candidate_count(&db, dog) >= dog_cands.len());
    }

    #[test]
    fn candidate_count_is_exact() {
        let db = setup();
        let idx = MethodIndex::build(&db);
        for ty in db.types().iter() {
            assert_eq!(
                idx.candidate_count(&db, ty),
                idx.candidates_for(&db, ty).len(),
                "count must equal the deduplicated candidate list for {ty:?}"
            );
        }
    }

    #[test]
    fn memoized_candidates_match_fresh_walk() {
        let db = setup();
        let idx = MethodIndex::build(&db);
        // Repeated memo reads (first fills, then hits) must equal the
        // uncached walk for every type.
        for _ in 0..2 {
            for ty in db.types().iter() {
                assert_eq!(
                    idx.candidates_for_cached(&db, ty),
                    idx.candidates_for(&db, ty).as_slice()
                );
                assert_eq!(
                    idx.candidate_count_cached(&db, ty),
                    idx.candidate_count(&db, ty)
                );
            }
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let db = setup();
        let idx = MethodIndex::build(&db);
        let mut scratch = CandidateScratch::new();
        // Walks interleaved through one scratch must match fresh walks.
        for _ in 0..3 {
            for ty in db.types().iter() {
                assert_eq!(
                    idx.candidates_for_with(&db, ty, &mut scratch),
                    idx.candidates_for(&db, ty)
                );
                assert_eq!(
                    idx.candidate_count_with(&db, ty, &mut scratch),
                    idx.candidate_count(&db, ty)
                );
            }
        }
    }
}
