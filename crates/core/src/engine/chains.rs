//! Completion of `.?` suffix holes and `?` holes: best-first search over
//! lookup chains.
//!
//! A chain grows from a root completion by appending instance field lookups
//! and (for `m` kinds) zero-argument instance calls; each link costs the
//! ranker's link cost. Roots arrive lazily from another stream, so nested
//! suffixes and `?`-holes (whose roots are every local and global) compose
//! uniformly. The search is a Dijkstra over (expression, type) states: the
//! heap pops states in score order, emitting those that pass the optional
//! type filter and expanding their successors.
//!
//! The stream is generic over how chain expressions are *built*
//! (`ChainGrow`): the boxed reference path clones `Expr` trees, the hot
//! path interns arena ids. Successor member lists come from the shared
//! `SuccessorMemo`, so repeated states of one type — within a query or
//! across serve requests — walk the member tables once.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use pex_model::{Context, Database, Expr, ExprArena, ExprId, FieldId, MethodId, ValueTy};
use pex_types::TypeId;

use super::budget::Budget;
use super::memo::{ChainMember, SuccessorMemo};
use super::reach::ReachPruner;
use super::stream::{Scored, ScoredStream};

/// What links a chain may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChainLink {
    /// Instance field/property lookups only (`.?f` kinds).
    Fields,
    /// Lookups plus zero-argument instance calls (`.?m` kinds).
    FieldsAndMethods,
}

/// Emission filter on a completion's static type.
///
/// `OneOf` is the argument-position filter (must convert to a wanted
/// type); `Ordered` is the binary-operator narrowing of paper Section 4.2
/// ("binary operators ... are relatively restrictive on which pairs of
/// types are valid"): only types that can participate in *some* comparison
/// pass, which prunes each operand stream before pairs are even formed.
#[derive(Debug, Clone, Default)]
pub(crate) enum TypeFilter {
    /// Everything passes.
    #[default]
    Any,
    /// The type must implicitly convert to one of these.
    OneOf(Vec<TypeId>),
    /// The type must be usable under a relational operator.
    Ordered,
}

impl TypeFilter {
    pub(crate) fn any() -> Self {
        TypeFilter::Any
    }

    pub(crate) fn one_of(tys: Vec<TypeId>) -> Self {
        TypeFilter::OneOf(tys)
    }

    pub(crate) fn is_any(&self) -> bool {
        matches!(self, TypeFilter::Any)
    }

    /// Whether a *known* type is admissible (used for pruning tables).
    pub(crate) fn admits(&self, db: &Database, t: TypeId) -> bool {
        match self {
            TypeFilter::Any => true,
            TypeFilter::OneOf(wanted) => wanted
                .iter()
                .any(|w| db.types().implicitly_convertible(t, *w)),
            TypeFilter::Ordered => {
                let def = db.types().get(t);
                match def.prim_kind() {
                    Some(pk) => pk.is_ordered(),
                    // A non-primitive is orderable if it, or anything it
                    // implicitly converts to, is marked comparable (a
                    // subtype of DateTime compares like a DateTime).
                    None => db
                        .types()
                        .conversion_targets_ref(t)
                        .iter()
                        .any(|&(u, _)| db.types().get(u).is_comparable()),
                }
            }
        }
    }

    pub(crate) fn passes(&self, db: &Database, ty: ValueTy) -> bool {
        match ty {
            ValueTy::Wildcard => true,
            ValueTy::Known(t) => self.admits(db, t),
        }
    }
}

/// How chain links become expressions: the one seam between the boxed and
/// interned enumeration paths.
pub(crate) trait ChainGrow<E> {
    /// `base.f`
    fn field(&self, base: &E, f: FieldId) -> E;
    /// `recv.m()`
    fn call0(&self, m: MethodId, recv: &E) -> E;
}

/// Builds boxed [`Expr`] trees (the reference path; clones the base).
pub(crate) struct BoxedGrow;

impl ChainGrow<Expr> for BoxedGrow {
    fn field(&self, base: &Expr, f: FieldId) -> Expr {
        Expr::field(base.clone(), f)
    }

    fn call0(&self, m: MethodId, recv: &Expr) -> Expr {
        Expr::Call(m, vec![recv.clone()])
    }
}

/// Interns arena nodes (the hot path; extending a chain copies a `u32`).
pub(crate) struct ArenaGrow<'x> {
    pub(crate) arena: &'x ExprArena,
}

impl<'x> ChainGrow<ExprId> for ArenaGrow<'x> {
    fn field(&self, base: &ExprId, f: FieldId) -> ExprId {
        self.arena.field(*base, f)
    }

    fn call0(&self, m: MethodId, recv: &ExprId) -> ExprId {
        self.arena.call(m, &[*recv])
    }
}

struct HeapState<E> {
    score: u32,
    seq: u64,
    links: usize,
    completion: Scored<E>,
}

impl<E> PartialEq for HeapState<E> {
    fn eq(&self, other: &Self) -> bool {
        (self.score, self.seq) == (other.score, other.seq)
    }
}
impl<E> Eq for HeapState<E> {}
impl<E> Ord for HeapState<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.score, self.seq).cmp(&(other.score, other.seq))
    }
}
impl<E> PartialOrd for HeapState<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The chain-closure stream. See module docs.
pub(crate) struct ChainStream<'a, E, G: ChainGrow<E>> {
    db: &'a Database,
    ctx: &'a Context,
    roots: Box<dyn ScoredStream<E> + 'a>,
    links: ChainLink,
    /// Maximum number of links appended to a root (`Some(1)` for non-star
    /// suffixes, `None` — bounded by `depth_cap` — for star suffixes).
    max_links: Option<usize>,
    /// Engine-wide safety bound on star-suffix chain length.
    depth_cap: usize,
    link_cost: u32,
    filter: TypeFilter,
    heap: BinaryHeap<Reverse<HeapState<E>>>,
    seq: u64,
    /// Optional reachability pruning (paper Section 4.2's proposed index):
    /// successors whose type cannot reach an admissible type within the
    /// remaining link budget are not enqueued.
    pruner: Option<ReachPruner<'a>>,
    /// The query's shared resource meter: one charge per heap pop, so a
    /// long filtered skip-run cannot outlive the query's budget between
    /// emitted items.
    budget: Budget,
    grow: G,
    memo: &'a SuccessorMemo,
}

impl<'a, E, G: ChainGrow<E>> ChainStream<'a, E, G> {
    #[allow(clippy::too_many_arguments)] // one-shot constructor mirroring the paper's knobs
    pub(crate) fn new(
        db: &'a Database,
        ctx: &'a Context,
        roots: Box<dyn ScoredStream<E> + 'a>,
        links: ChainLink,
        max_links: Option<usize>,
        depth_cap: usize,
        link_cost: u32,
        filter: TypeFilter,
        budget: Budget,
        grow: G,
        memo: &'a SuccessorMemo,
    ) -> Self {
        ChainStream {
            db,
            ctx,
            roots,
            links,
            max_links,
            depth_cap,
            link_cost,
            filter,
            heap: BinaryHeap::new(),
            seq: 0,
            pruner: None,
            budget,
            grow,
            memo,
        }
    }

    /// Enables reachability pruning for this stream.
    pub(crate) fn with_pruner(mut self, pruner: Option<ReachPruner<'a>>) -> Self {
        self.pruner = pruner;
        self
    }

    /// Whether a state of this type with `links` already used is worth
    /// keeping (it can still emit an admissible completion).
    fn viable(&self, ty: pex_types::TypeId, links: usize) -> bool {
        match &self.pruner {
            Some(pruner) => {
                let remaining = self.limit().saturating_sub(links) as u32;
                pruner.viable(ty, remaining)
            }
            None => true,
        }
    }

    fn push(&mut self, links: usize, completion: Scored<E>) {
        self.seq += 1;
        self.heap.push(Reverse(HeapState {
            score: completion.score,
            seq: self.seq,
            links,
            completion,
        }));
    }

    /// Moves roots into the heap while a pending root could be at least as
    /// cheap as the current heap top.
    fn absorb_roots(&mut self) {
        loop {
            let Some(rb) = self.roots.bound() else { return };
            let top = self.heap.peek().map(|Reverse(s)| s.score);
            if top.is_some_and(|t| t < rb) {
                return;
            }
            match self.roots.next_item() {
                Some(c) => {
                    let keep = match c.ty {
                        ValueTy::Known(t) => self.viable(t, 0),
                        ValueTy::Wildcard => true,
                    };
                    if keep {
                        self.push(0, c);
                    }
                }
                None => return,
            }
        }
    }

    fn limit(&self) -> usize {
        self.max_links.unwrap_or(self.depth_cap)
    }

    /// Expands one state's successors into the heap.
    fn expand(&mut self, links: usize, completion: &Scored<E>) {
        if links >= self.limit() {
            return;
        }
        let ValueTy::Known(ty) = completion.ty else {
            return;
        };
        let from = self.ctx.enclosing_type;
        let steps = self.memo.successors(self.db, ty, self.links, from);
        for step in steps.iter() {
            if !self.viable(step.ty, links + 1) {
                continue;
            }
            let expr = match step.member {
                ChainMember::Field(f) => self.grow.field(&completion.expr, f),
                ChainMember::Call0(m) => self.grow.call0(m, &completion.expr),
            };
            let c = Scored {
                expr,
                score: completion.score + self.link_cost,
                ty: ValueTy::Known(step.ty),
            };
            self.push(links + 1, c);
        }
    }
}

impl<'a, E, G: ChainGrow<E>> ScoredStream<E> for ChainStream<'a, E, G> {
    fn bound(&mut self) -> Option<u32> {
        let heap_bound = self.heap.peek().map(|Reverse(s)| s.score);
        let root_bound = self.roots.bound();
        match (heap_bound, root_bound) {
            (Some(h), Some(r)) => Some(h.min(r)),
            (Some(h), None) => Some(h),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        }
    }

    fn next_item(&mut self) -> Option<Scored<E>> {
        loop {
            if !self.budget.charge() {
                return None;
            }
            self.absorb_roots();
            let Reverse(state) = self.heap.pop()?;
            self.expand(state.links, &state.completion);
            if self.filter.passes(self.db, state.completion.ty) {
                return Some(state.completion);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::stream::{Completion, VecStream};
    use pex_model::minics::compile;
    use pex_model::Local;

    fn setup() -> (Database, Context) {
        let db = compile(
            r#"
            namespace G {
                struct Point { int X; int Y; }
                class Line {
                    G.Point P1;
                    G.Point P2;
                    double GetLength();
                }
            }
            "#,
        )
        .unwrap();
        let line = db.types().lookup_qualified("G.Line").unwrap();
        let ctx = Context::with_locals(
            None,
            vec![Local {
                name: "ln".into(),
                ty: line,
            }],
        );
        (db, ctx)
    }

    fn root(db: &Database, ctx: &Context) -> Completion {
        let ty = ctx.locals[0].ty;
        let _ = db;
        Completion {
            expr: Expr::Local(pex_model::LocalId(0)),
            score: 0,
            ty: ValueTy::Known(ty),
        }
    }

    fn renders(
        db: &Database,
        ctx: &Context,
        stream: &mut dyn ScoredStream<Expr>,
        n: usize,
    ) -> Vec<String> {
        let mut out = Vec::new();
        for _ in 0..n {
            match stream.next_item() {
                Some(c) => out.push(pex_model::render_expr(
                    db,
                    ctx,
                    &c.expr,
                    pex_model::CallStyle::Receiver,
                )),
                None => break,
            }
        }
        out
    }

    #[test]
    fn star_closure_explores_depth_in_score_order() {
        let (db, ctx) = setup();
        let memo = SuccessorMemo::default();
        let roots = Box::new(VecStream::new(vec![root(&db, &ctx)]));
        let mut s = ChainStream::new(
            &db,
            &ctx,
            roots,
            ChainLink::FieldsAndMethods,
            None,
            6,
            2,
            TypeFilter::any(),
            Budget::unlimited(),
            BoxedGrow,
            &memo,
        );
        let names = renders(&db, &ctx, &mut s, 10);
        assert_eq!(names[0], "ln");
        assert!(names.contains(&"ln.P1".to_string()));
        assert!(names.contains(&"ln.GetLength()".to_string()));
        assert!(names.contains(&"ln.P1.X".to_string()));
        // Score order: ln (0) first, then one-link (2), then two-link (4).
        let p1x = names.iter().position(|n| n == "ln.P1.X").unwrap();
        let p1 = names.iter().position(|n| n == "ln.P1").unwrap();
        assert!(p1 < p1x);
    }

    #[test]
    fn single_link_limit_and_field_only() {
        let (db, ctx) = setup();
        let memo = SuccessorMemo::default();
        let roots = Box::new(VecStream::new(vec![root(&db, &ctx)]));
        let mut s = ChainStream::new(
            &db,
            &ctx,
            roots,
            ChainLink::Fields,
            Some(1),
            6,
            2,
            TypeFilter::any(),
            Budget::unlimited(),
            BoxedGrow,
            &memo,
        );
        let names = renders(&db, &ctx, &mut s, 20);
        assert_eq!(names.len(), 3, "ln, ln.P1, ln.P2 only: {names:?}");
        assert!(!names.iter().any(|n| n.contains("GetLength")));
        assert!(!names
            .iter()
            .any(|n| n.contains('.') && n.matches('.').count() > 1));
    }

    #[test]
    fn type_filter_restricts_emissions_not_search() {
        let (db, ctx) = setup();
        let memo = SuccessorMemo::default();
        let int = db.types().int_ty();
        let roots = Box::new(VecStream::new(vec![root(&db, &ctx)]));
        let mut s = ChainStream::new(
            &db,
            &ctx,
            roots,
            ChainLink::Fields,
            None,
            6,
            2,
            TypeFilter::one_of(vec![int]),
            Budget::unlimited(),
            BoxedGrow,
            &memo,
        );
        let names = renders(&db, &ctx, &mut s, 20);
        // Only int-typed chains: the X/Y of P1 and P2.
        assert_eq!(names.len(), 4, "{names:?}");
        assert!(names.iter().all(|n| n.ends_with(".X") || n.ends_with(".Y")));
    }

    #[test]
    fn ordered_filter_admits_comparable_subtypes() {
        let db = pex_model::minics::compile(
            r#"
            namespace N {
                [Comparable] class Version { }
                class SemVer : N.Version { }
                class Plain { }
            }
            "#,
        )
        .unwrap();
        let version = db.types().lookup_qualified("N.Version").unwrap();
        let semver = db.types().lookup_qualified("N.SemVer").unwrap();
        let plain = db.types().lookup_qualified("N.Plain").unwrap();
        let f = TypeFilter::Ordered;
        assert!(f.admits(&db, version));
        assert!(
            f.admits(&db, semver),
            "subtypes of comparable types compare"
        );
        assert!(!f.admits(&db, plain));
        assert!(f.admits(&db, db.types().int_ty()));
        assert!(!f.admits(&db, db.types().bool_ty()));
        assert!(!f.admits(&db, db.types().string_ty()));
    }

    #[test]
    fn depth_cap_bounds_star_chains() {
        let (db, ctx) = setup();
        let memo = SuccessorMemo::default();
        // Point has no reference-typed fields, so chains die out anyway;
        // use cap 1 to check the cap itself.
        let roots = Box::new(VecStream::new(vec![root(&db, &ctx)]));
        let mut s = ChainStream::new(
            &db,
            &ctx,
            roots,
            ChainLink::FieldsAndMethods,
            None,
            1,
            2,
            TypeFilter::any(),
            Budget::unlimited(),
            BoxedGrow,
            &memo,
        );
        let names = renders(&db, &ctx, &mut s, 50);
        assert!(
            names.iter().all(|n| n.matches('.').count() <= 1),
            "{names:?}"
        );
    }

    #[test]
    fn arena_grow_matches_boxed_chains() {
        let (db, ctx) = setup();
        let memo = SuccessorMemo::default();
        let arena = ExprArena::new();
        let boxed_roots = Box::new(VecStream::new(vec![root(&db, &ctx)]));
        let mut boxed = ChainStream::new(
            &db,
            &ctx,
            boxed_roots,
            ChainLink::FieldsAndMethods,
            None,
            4,
            2,
            TypeFilter::any(),
            Budget::unlimited(),
            BoxedGrow,
            &memo,
        );
        let root_id = arena.local(pex_model::LocalId(0));
        let interned_roots = Box::new(VecStream::new(vec![Scored {
            expr: root_id,
            score: 0,
            ty: root(&db, &ctx).ty,
        }]));
        let mut interned = ChainStream::new(
            &db,
            &ctx,
            interned_roots,
            ChainLink::FieldsAndMethods,
            None,
            4,
            2,
            TypeFilter::any(),
            Budget::unlimited(),
            ArenaGrow { arena: &arena },
            &memo,
        );
        for _ in 0..40 {
            match (boxed.next_item(), interned.next_item()) {
                (Some(b), Some(i)) => {
                    assert_eq!(b.score, i.score);
                    assert_eq!(b.ty, i.ty);
                    assert_eq!(b.expr, arena.materialize(i.expr));
                }
                (None, None) => break,
                (b, i) => panic!("streams diverged: {b:?} vs {i:?}"),
            }
        }
    }
}
